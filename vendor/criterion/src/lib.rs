//! Offline stand-in for `criterion`, vendored so the workspace resolves
//! without network access. Implements the subset of the criterion API the
//! bench targets use and reports simple mean-of-N timings to stdout —
//! enough to compare relative stage costs, with none of the real crate's
//! statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new<P: fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Times closures (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { samples: self.samples, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total.checked_div(b.samples as u32).unwrap_or(Duration::ZERO);
        println!("{}/{}: mean {:?} over {} samples", self.name, id, mean, b.samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: 20, _parent: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
