//! No-op stand-in for `serde_derive`, vendored for offline builds.
//!
//! The derives expand to nothing; the sibling `serde` stub provides blanket
//! implementations of `Serialize`/`Deserialize`, so `#[derive(Serialize)]`
//! in downstream code keeps compiling without the real crates.io dependency.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
