//! Offline stand-in for `proptest`, vendored so the workspace resolves
//! without network access. Implements the subset of the proptest API this
//! repository's property tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` parameters),
//! - [`Strategy`] with `prop_map` and `boxed`, range and tuple strategies,
//! - [`prop_oneof!`], [`any`], `collection::vec`,
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike the real crate there is **no shrinking** and no persistence of
//! failing cases (`.proptest-regressions` files are ignored); a failing
//! case panics with the seed-derived inputs in the message. Case generation
//! is fully deterministic: the RNG is seeded from the hash of the test
//! function's name, so reruns explore the same inputs.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator deterministically from a test name and case
        /// number.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            self.0.gen_range(lo..hi)
        }

        pub fn gen_f64(&mut self) -> f64 {
            (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A source of random values of one type (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (what [`prop_oneof!`] builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range_u64(0, self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

    /// Types with a canonical strategy (subset of `proptest::arbitrary`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Samples a full 64-bit draw and maps it to the target type.
    pub struct FromBits<T>(fn(u64) -> T);

    impl<T> Strategy for FromBits<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng.next_u64())
        }
    }

    macro_rules! impl_arbitrary_from_bits {
        ($($t:ty => $f:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = FromBits<$t>;
                fn arbitrary() -> Self::Strategy {
                    FromBits($f)
                }
            }
        )*};
    }

    impl_arbitrary_from_bits!(
        bool => |b| b & 1 == 1,
        u8 => |b| b as u8,
        u16 => |b| b as u16,
        u32 => |b| b as u32,
        u64 => |b| b,
        usize => |b| b as usize,
        i8 => |b| b as i8,
        i16 => |b| b as i16,
        i32 => |b| b as i32,
        i64 => |b| b as i64,
        isize => |b| b as isize,
    );

    /// Canonical strategy for `T` (subset of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` values with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`] (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start
                + (rng.next_u64() as usize) % (self.size.end - self.size.start);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest default is 256; 64 keeps the deterministic
            // (non-shrinking) stand-in fast while still exploring broadly.
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use strategy::Strategy;

/// Defines property tests (subset of the real `proptest!` macro: supports an
/// optional `#![proptest_config(..)]` header and `ident in strategy`
/// parameters; no pattern destructuring, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategies = ($($strat,)+);
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::strategy::TestRng::for_case(stringify!($name), case);
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = &strategies;
                    $(let $arg = $crate::strategy::Strategy::sample($arg, &mut rng);)+
                    // Bodies may `return Ok(())` to skip a case, mirroring the
                    // real proptest's Result-returning test wrapper.
                    let outcome: ::std::result::Result<(), &'static str> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($args)*) $body)*
        }
    };
}

/// `assert!` that reports through the proptest harness (here: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips a case when its assumption fails. Without shrinking machinery we
/// simply skip the rest of the case body via early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in -10i64..10, n in 1usize..5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        fn mapped_tuples_compose(p in (0i64..100, 0i64..100).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..199).contains(&p));
        }

        fn oneof_and_vec(v in collection::vec(prop_oneof![0i64..5, 100i64..105], 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!((0..5).contains(&x) || (100..105).contains(&x));
            }
        }

        fn any_bool_is_generated(b in any::<bool>(), _x in 0u64..4) {
            let _ = b;
        }
    }
}
