//! Offline stand-in for `serde`, vendored so the workspace resolves without
//! network access. The container image has no crates.io registry cache, so
//! the real `serde` cannot be downloaded; this stub keeps the
//! `#[derive(Serialize, Deserialize)]` annotations in `info-geom` and
//! `info-model` compiling. Nothing in the workspace actually serializes
//! through serde (netlist IO is hand-rolled), so marker traits suffice.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
