//! Offline stand-in for `rand` 0.8, vendored so the workspace resolves
//! without network access. Implements exactly the API surface this
//! repository uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! good enough for test-input generation and benchmark circuits. It is NOT
//! the real `StdRng` (ChaCha12), so seeded streams differ from upstream
//! `rand`; every consumer in this repo only needs determinism, not
//! bit-compatibility.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        next_f64(self) < p
    }
}

fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `gen_range` can sample uniformly (subset of `rand::distributions`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges a uniform value can be drawn from. The single blanket impl per
/// range shape mirrors the real crate — required so integer-literal ranges
/// infer their type from the call site (`i64 + rng.gen_range(0..6_000)`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Generator types (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
