//! # info-rdl — via-based RDL routing for InFO packages
//!
//! A Rust implementation of *“Via-based Redistribution Layer Routing for
//! InFO Packages with Irregular Pad Structures”* (Wen, Cai, Hsu, Chang —
//! DAC 2020), complete with every substrate the paper depends on:
//!
//! - [`geom`] — exact integer X-architecture geometry (points, segments,
//!   rectangles, the octagonal tile shape).
//! - [`lp`] — a from-scratch sparse revised-simplex LP solver (the paper
//!   used Gurobi).
//! - [`model`] — the InFO package model: chips, irregular pads, nets,
//!   obstacles, layer stack, routes, vias, and a full DRC verifier.
//! - [`mpsc`] — Supowit's maximum-planar-subset-of-chords algorithm and
//!   the paper's weighted extension.
//! - [`tile`] — layout partitioning, the octagonal tile routing graph,
//!   and A\* search.
//! - [`router`] — the paper's five-stage flow ([`InfoRouter`]).
//! - [`baseline`] — the Lin-ext comparison router (no flexible vias).
//! - [`generators`] — synthetic dense1–dense5 benchmarks and the figure
//!   patterns.
//!
//! ## Quickstart
//!
//! ```
//! use info_rdl::geom::{Point, Rect};
//! use info_rdl::model::{DesignRules, PackageBuilder};
//! use info_rdl::{InfoRouter, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 0.5 mm × 0.5 mm die with one chip, one I/O pad, one bump pad.
//! let mut b = PackageBuilder::new(
//!     Rect::new(Point::new(0, 0), Point::new(500_000, 500_000)),
//!     DesignRules::default(),
//!     2, // wire layers
//! );
//! let chip = b.add_chip(Rect::new(Point::new(50_000, 50_000), Point::new(200_000, 200_000)));
//! let io = b.add_io_pad(chip, Point::new(120_000, 120_000))?;
//! let bump = b.add_bump_pad(Point::new(400_000, 400_000))?;
//! b.add_net(io, bump)?;
//! let package = b.build()?;
//!
//! let outcome = InfoRouter::new(RouterConfig::default()).route(&package);
//! assert!(outcome.stats.fully_routed());
//! # Ok(())
//! # }
//! ```

pub use info_baseline as baseline;
pub use info_gen as generators;
pub use info_geom as geom;
pub use info_lp as lp;
pub use info_model as model;
pub use info_mpsc as mpsc;
pub use info_router as router;
pub use info_telemetry as telemetry;
pub use info_tile as tile;

pub use info_baseline::{LinExtOutcome, LinExtRouter};
pub use info_router::{
    EcoChangeSet, EcoPlan, EcoStash, EcoStats, InfoRouter, NetStatus, RouteOutcome, RouterConfig,
    SearchOptions, SearchStats, WarmSpaceCache,
};
pub use info_telemetry::{NetSummary, TelemetryReport};
