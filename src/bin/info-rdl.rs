//! `info-rdl` — command-line front end for the router.
//!
//! Three subcommands:
//!
//! - `info-rdl route <netlist> [options]` — route one circuit and print a
//!   one-line JSON summary (layout hash, routability, per-net counts).
//!   The single-job reference path the serve smoke test compares against.
//! - `info-rdl eco <netlist> [edits] [options]` — full-route the base
//!   circuit, apply the requested net edits as an incremental delta
//!   re-route (`InfoRouter::reroute_delta`), and print both summaries
//!   plus the ECO telemetry.
//! - `info-rdl serve [options]` — run the JSON-lines job server on
//!   stdin/stdout, or on a unix socket with `--socket PATH`.
//!
//! The JSON job schema is documented in `README.md`.

use info_router::serve::{self, json::Json, ServeConfig};
use info_router::{CancelToken, Completion, EcoChangeSet, InfoRouter, RouteOutcome, RouterConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         info-rdl route <netlist-file> [--global-cells N] [--threads N] [--alt-landmarks N]\n                 \
         [--no-lp] [--no-concurrent] [--deadline-ms N] [--net-status]\n  \
         info-rdl eco <netlist-file> [--remove NET]... [--add PADA:PADB]...\n                 \
         [--re-pair NET:PADA:PADB]... [route options]\n  \
         info-rdl serve [--socket PATH] [--workers N] [--queue N] [--warm N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("route") => cmd_route(&args[1..]),
        Some("eco") => cmd_eco(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => usage(),
    }
}

/// Parses `--flag N` style options; returns None (after printing) on a
/// malformed value so callers can exit with a usage error.
fn parse_num(flag: &str, value: Option<&String>) -> Option<u64> {
    match value.and_then(|v| v.parse::<u64>().ok()) {
        Some(n) => Some(n),
        None => {
            eprintln!("error: {flag} requires a non-negative integer value");
            None
        }
    }
}

fn cmd_route(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut cfg = RouterConfig::default();
    let mut deadline = None;
    let mut net_status = false;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--global-cells" => match parse_num(a, it.next()) {
                Some(n) => cfg.global_cells = (n as usize).max(1),
                None => return usage(),
            },
            "--threads" => match parse_num(a, it.next()) {
                Some(n) => cfg.threads = (n as usize).max(1),
                None => return usage(),
            },
            "--alt-landmarks" => match parse_num(a, it.next()) {
                Some(n) => cfg.alt_landmarks = n as usize,
                None => return usage(),
            },
            "--deadline-ms" => match parse_num(a, it.next()) {
                Some(n) => deadline = Some(Duration::from_millis(n)),
                None => return usage(),
            },
            "--no-lp" => cfg.lp_enabled = false,
            "--no-concurrent" => cfg.concurrent_enabled = false,
            "--net-status" => net_status = true,
            _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
            other => {
                eprintln!("error: unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let package = match info_model::parse_package(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: netlist: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut router = InfoRouter::new(cfg);
    if let Some(d) = deadline {
        let token = CancelToken::new();
        token.arm_job_deadline(Some(d));
        router = router.with_cancel_token(token);
    }
    let out = router.route(&package);

    let mut members = vec![
        (
            "status".to_string(),
            Json::Str(
                match (out.cancelled, out.completion) {
                    (true, _) => "cancelled",
                    (false, Completion::Degraded) => "degraded",
                    (false, Completion::Full) => "done",
                }
                .to_string(),
            ),
        ),
        ("hash".to_string(), Json::Str(format!("{:016x}", out.layout.canonical_hash()))),
        ("routability_pct".to_string(), Json::Num(out.stats.routability_pct)),
        ("routed".to_string(), Json::Num(out.stats.routed_nets as f64)),
        ("failed".to_string(), Json::Num(out.failed.len() as f64)),
        ("runtime_s".to_string(), Json::Num(out.timings.total().as_secs_f64())),
    ];
    if net_status {
        let nets = out
            .net_status
            .iter()
            .map(|(id, st)| {
                Json::Obj(vec![
                    ("net".to_string(), Json::Num(id.0 as f64)),
                    ("status".to_string(), Json::Str(st.as_str().to_string())),
                ])
            })
            .collect();
        members.push(("nets".to_string(), Json::Arr(nets)));
    }
    println!("{}", Json::Obj(members));
    ExitCode::SUCCESS
}

/// One-line JSON summary members shared by `route` and `eco` output.
fn summary_members(out: &RouteOutcome) -> Vec<(String, Json)> {
    vec![
        (
            "status".to_string(),
            Json::Str(
                match (out.cancelled, out.completion) {
                    (true, _) => "cancelled",
                    (false, Completion::Degraded) => "degraded",
                    (false, Completion::Full) => "done",
                }
                .to_string(),
            ),
        ),
        ("hash".to_string(), Json::Str(format!("{:016x}", out.layout.canonical_hash()))),
        ("routability_pct".to_string(), Json::Num(out.stats.routability_pct)),
        ("routed".to_string(), Json::Num(out.stats.routed_nets as f64)),
        ("failed".to_string(), Json::Num(out.failed.len() as f64)),
        ("runtime_s".to_string(), Json::Num(out.timings.total().as_secs_f64())),
    ]
}

/// Splits `value` on ':' into exactly `arity` indices.
fn parse_indices(flag: &str, value: Option<&String>, arity: usize) -> Option<Vec<usize>> {
    let parts: Option<Vec<usize>> =
        value.map(|v| v.split(':').map(|p| p.parse::<usize>().ok()).collect())?;
    match parts {
        Some(p) if p.len() == arity => Some(p),
        _ => {
            eprintln!("error: {flag} requires {arity} ':'-separated non-negative integers");
            None
        }
    }
}

fn cmd_eco(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut cfg = RouterConfig::default();
    let mut changes = EcoChangeSet::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--remove" => match parse_num(a, it.next()) {
                Some(n) => changes = changes.remove_net(info_model::NetId::from_index(n as usize)),
                None => return usage(),
            },
            "--add" => match parse_indices(a, it.next(), 2) {
                Some(p) => {
                    changes = changes.add_net(
                        info_model::PadId::from_index(p[0]),
                        info_model::PadId::from_index(p[1]),
                    )
                }
                None => return usage(),
            },
            "--re-pair" => match parse_indices(a, it.next(), 3) {
                Some(p) => {
                    changes = changes.re_pair(
                        info_model::NetId::from_index(p[0]),
                        info_model::PadId::from_index(p[1]),
                        info_model::PadId::from_index(p[2]),
                    )
                }
                None => return usage(),
            },
            "--global-cells" => match parse_num(a, it.next()) {
                Some(n) => cfg.global_cells = (n as usize).max(1),
                None => return usage(),
            },
            "--threads" => match parse_num(a, it.next()) {
                Some(n) => cfg.threads = (n as usize).max(1),
                None => return usage(),
            },
            "--alt-landmarks" => match parse_num(a, it.next()) {
                Some(n) => cfg.alt_landmarks = n as usize,
                None => return usage(),
            },
            "--no-lp" => cfg.lp_enabled = false,
            "--no-concurrent" => cfg.concurrent_enabled = false,
            _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
            other => {
                eprintln!("error: unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let package = match info_model::parse_package(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: netlist: {e}");
            return ExitCode::FAILURE;
        }
    };
    let router = InfoRouter::new(cfg);
    let prior = router.route(&package);
    let out = match router.reroute_delta(&package, &prior, &changes) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: eco: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut eco_members = summary_members(&out);
    if let Some(s) = &out.eco {
        eco_members.push((
            "eco".to_string(),
            Json::Obj(vec![
                ("nets_rerouted".to_string(), Json::Num(s.nets_rerouted as f64)),
                ("nets_reused".to_string(), Json::Num(s.nets_reused as f64)),
                ("dirty_rects".to_string(), Json::Num(s.dirty_rects as f64)),
                ("cells_invalidated".to_string(), Json::Num(s.cells_invalidated as f64)),
                ("space_warm_hit".to_string(), Json::Bool(s.space_warm_hit)),
                ("lp_dirty_nets".to_string(), Json::Num(s.lp_dirty_nets as f64)),
                ("lp_warm_basis_reuses".to_string(), Json::Num(s.lp_warm_basis_reuses as f64)),
            ]),
        ));
    }
    println!(
        "{}",
        Json::Obj(vec![
            ("base".to_string(), Json::Obj(summary_members(&prior))),
            ("eco".to_string(), Json::Obj(eco_members)),
        ])
    );
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--workers" => match parse_num(a, it.next()) {
                Some(n) => cfg.workers = (n as usize).max(1),
                None => return usage(),
            },
            "--queue" => match parse_num(a, it.next()) {
                Some(n) => cfg.queue_capacity = (n as usize).max(1),
                None => return usage(),
            },
            "--warm" => match parse_num(a, it.next()) {
                Some(n) => cfg.warm_capacity = (n as usize).max(1),
                None => return usage(),
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                return usage();
            }
        }
    }
    let result = match socket {
        Some(path) => serve::serve_unix(&path, cfg),
        None => {
            // Stdout (unlike StdoutLock) is Send, which serve_lines needs
            // for its response-drain thread.
            let stdin = std::io::stdin().lock();
            serve::serve_lines(stdin, std::io::stdout(), cfg)
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve: {e}");
            ExitCode::FAILURE
        }
    }
}
