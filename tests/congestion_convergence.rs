//! Convergence/equivalence suite for negotiated-congestion routing
//! (DESIGN.md §4h).
//!
//! Routes the six golden circuits with `congestion_mode` on and pins the
//! negotiated front's contract:
//!
//! - the iteration loop terminates within [`NEGOTIATION_MAX_ITERS`];
//! - the final layout is DRC-legal (failed nets surface as
//!   `Disconnected`, never as geometry violations);
//! - routability is never worse than the legacy rip-up path's on the
//!   same circuit;
//! - threads 1 and 4 produce byte-identical layouts *and* the same
//!   iteration count — the negotiated loop's decisions (failure sets,
//!   contested cells, victims, re-queue order) are thread-invariant.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::{drc, Package};
use info_rdl::router::sequential::NEGOTIATION_MAX_ITERS;
use info_rdl::{InfoRouter, RouteOutcome, RouterConfig};

/// The same six pinned circuits as `golden_layouts.rs`.
fn circuits() -> Vec<(&'static str, Package)> {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    vec![
        ("g1_two_chip", mk(1, 12, 30, 7)),
        ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        ("g3_three_chip", mk(2, 16, 48, 23)),
        ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        ("g5_six_chip", mk(3, 20, 40, 41)),
        ("g6_six_chip_dense", mk(3, 24, 48, 53)),
    ]
}

fn route(pkg: &Package, threads: usize, negotiated: bool) -> RouteOutcome {
    let mut cfg = RouterConfig::default().with_global_cells(14).with_threads(threads);
    if negotiated {
        cfg = cfg.with_congestion_mode();
    }
    InfoRouter::new(cfg).route(pkg)
}

/// No geometry violation is ever tolerated; `Disconnected` is the legal
/// way a failed net shows up in the report.
fn assert_drc_legal(name: &str, out: &RouteOutcome) {
    for v in out.drc.violations() {
        assert!(
            matches!(v, drc::Violation::Disconnected { .. }),
            "{name}: negotiated layout must stay DRC-legal: {v}"
        );
    }
}

/// Termination, legality, and routability-no-worse-than-rip-up, per
/// golden circuit.
#[test]
fn negotiated_terminates_legal_and_routes_no_worse() {
    for (name, pkg) in circuits() {
        let neg = route(&pkg, 1, true);
        let legacy = route(&pkg, 1, false);

        let stats = neg
            .negotiation
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: congestion_mode must report NegotiationStats"));
        assert!(
            (1..=NEGOTIATION_MAX_ITERS).contains(&stats.iterations),
            "{name}: iteration count {} outside [1, {NEGOTIATION_MAX_ITERS}]",
            stats.iterations
        );
        if stats.converged {
            assert_eq!(
                stats.final_overuse, 0,
                "{name}: a converged run has no contested cells left"
            );
        }
        assert_drc_legal(name, &neg);
        assert!(
            legacy.negotiation.is_none(),
            "{name}: the legacy path must not report negotiation stats"
        );
        assert!(
            neg.stats.routed_nets >= legacy.stats.routed_nets,
            "{name}: negotiated routability regressed: {} routed vs legacy {}",
            neg.stats.routed_nets,
            legacy.stats.routed_nets
        );
        assert!(
            neg.failed.len() <= legacy.failed.len(),
            "{name}: negotiated failed-net count regressed: {:?} vs legacy {:?}",
            neg.failed,
            legacy.failed
        );
    }
}

/// The decline guarantee (DESIGN.md §4h): a mass-failure front restores
/// the stage-entry layout, re-runs the legacy path, and the endgame loop
/// only ever *adds* routed nets on top of it — so under any fixed search
/// budget the declined negotiated route is at least as good as legacy,
/// and byte-identical to it whenever the endgame could not improve.
#[test]
fn declined_run_is_never_worse_than_legacy_and_identical_when_endgame_idles() {
    let pkg = circuits().swap_remove(3).1; // g4_three_chip_dense
    // Sequential-only so every net goes through the negotiated front (the
    // concurrent stage would otherwise absorb most of g4 and mass failure
    // could never trip on a 10-net circuit), with a search budget small
    // enough that >8 of the 10 nets fail within the front's first couple
    // of iterations.
    let budget = Some(30usize);
    let base = || {
        RouterConfig::default()
            .with_global_cells(14)
            .with_threads(1)
            .without_concurrent()
            .without_lp()
    };
    let mut neg_cfg = base().with_congestion_mode();
    neg_cfg.retry_expansion_budget = budget;
    let mut legacy_cfg = base();
    legacy_cfg.retry_expansion_budget = budget;
    let neg = InfoRouter::new(neg_cfg).route(&pkg);
    let legacy = InfoRouter::new(legacy_cfg).route(&pkg);

    let stats = neg.negotiation.as_ref().expect("negotiation stats");
    assert!(
        stats.declined,
        "a 30-expansion budget must mass-fail g4's front (routed {} of {})",
        neg.stats.routed_nets,
        pkg.nets().len()
    );
    assert!(
        neg.stats.routed_nets >= legacy.stats.routed_nets,
        "declined run routed {} < legacy {}",
        neg.stats.routed_nets,
        legacy.stats.routed_nets
    );
    if neg.stats.routed_nets == legacy.stats.routed_nets {
        assert_eq!(
            neg.layout.canonical_hash(),
            legacy.layout.canonical_hash(),
            "an endgame that improved nothing must restore the exact legacy layout"
        );
    }
    assert_drc_legal("g4_declined", &neg);
}

/// Thread matrix: negotiated layouts and iteration counts are identical
/// at 1 and 4 threads, per golden circuit.
#[test]
fn negotiated_thread_matrix_identical() {
    for (name, pkg) in circuits() {
        let base = route(&pkg, 1, true);
        let par = route(&pkg, 4, true);
        assert_eq!(
            base.layout.canonical_hash(),
            par.layout.canonical_hash(),
            "{name}: threads=4 negotiated layout differs from threads=1"
        );
        assert_eq!(base.failed, par.failed, "{name}: failed-net sets differ");
        let (b, p) = (
            base.negotiation.as_ref().expect("stats at threads=1"),
            par.negotiation.as_ref().expect("stats at threads=4"),
        );
        assert_eq!(
            b.iterations, p.iterations,
            "{name}: iteration counts differ across thread counts"
        );
        assert_eq!(b.converged, p.converged, "{name}: convergence verdicts differ");
        assert_eq!(
            b.history_totals, p.history_totals,
            "{name}: per-iteration history escalation differs across thread counts"
        );
    }
}
