//! Property tests of the negotiated-congestion machinery (DESIGN.md §4h):
//! history monotonicity, order-invariance of cost updates, and bounded
//! cancellation of the iteration loop.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::{drc, Package};
use info_rdl::router::sequential::NEGOTIATION_MAX_ITERS;
use info_rdl::tile::CancelToken;
use info_rdl::tile::CongestionMap;
use info_rdl::{InfoRouter, RouteOutcome, RouterConfig};

/// The densest of the golden circuits (`g4` in `golden_layouts.rs`): the
/// legacy path leaves one net failed here, so the negotiated loop
/// actually iterates.
fn g4() -> Package {
    let mut spec = dense_spec(2);
    spec.io_pads = 20;
    spec.nets = 10;
    spec.bump_pads = 56;
    spec.seed = 31;
    build_dense(spec, false)
}

/// Sequential-only negotiated config: every net goes through the
/// negotiated front, nothing is absorbed by the concurrent stage.
fn neg_seq_only() -> RouterConfig {
    RouterConfig::default()
        .with_global_cells(14)
        .with_threads(1)
        .with_congestion_mode()
        .without_concurrent()
        .without_lp()
}

fn assert_drc_legal(out: &RouteOutcome) {
    for v in out.drc.violations() {
        assert!(
            matches!(v, drc::Violation::Disconnected { .. }),
            "layout must stay DRC-legal: {v}"
        );
    }
}

/// History only ever escalates: the per-iteration accumulated totals are
/// monotone non-decreasing, on a normally-converging run.
#[test]
fn history_is_monotone_across_iterations() {
    let out = InfoRouter::new(neg_seq_only()).route(&g4());
    let stats = out.negotiation.as_ref().expect("negotiation stats");
    assert!(!stats.history_totals.is_empty());
    for w in stats.history_totals.windows(2) {
        assert!(
            w[1] >= w[0],
            "history decreased between iterations: {:?}",
            stats.history_totals
        );
    }
}

/// With a strangled search budget every net fails at once — and mass
/// failure is not a negotiation regime: the front must *decline* after
/// its first iteration (restoring the stage-entry layout for the legacy
/// front) instead of churning victims for the full cap, the endgame
/// loop must stop at its stagnation patience, and the layout stays
/// DRC-legal throughout.
#[test]
fn strangled_budget_declines_to_the_legacy_path() {
    let mut cfg = neg_seq_only();
    cfg.retry_expansion_budget = Some(1);
    let out = InfoRouter::new(cfg).route(&g4());
    let stats = out.negotiation.as_ref().expect("negotiation stats");
    assert_eq!(
        stats.iterations, 1,
        "mass failure must stop the front after one iteration, not run to the cap"
    );
    assert!(stats.declined, "a fully-failed front is mass failure: it must decline");
    assert!(!stats.converged);
    assert!(
        stats.endgame_iterations >= 1 && stats.endgame_iterations <= NEGOTIATION_MAX_ITERS,
        "the endgame runs on the declined path but stays bounded (got {})",
        stats.endgame_iterations
    );
    assert_eq!(out.stats.routed_nets, 0, "a one-expansion budget routes nothing");
    assert_drc_legal(&out);
}

/// Cost updates within an iteration are order-invariant: applying the
/// same multiset of history/present updates in different interleavings
/// produces identical maps — penalties are sums over commutative
/// increments, and the negotiated loop additionally batches them at
/// iteration boundaries.
#[test]
fn cost_updates_are_order_invariant() {
    let updates: Vec<(usize, usize, usize, f64, i64)> = vec![
        (0, 1, 1, 1.0, 2),
        (1, 2, 3, 0.5, 1),
        (0, 1, 1, 2.0, 1),
        (1, 0, 0, 1.5, 3),
        (0, 3, 2, 1.0, 1),
        (1, 2, 3, 0.5, 2),
    ];
    let apply = |order: &[usize]| -> CongestionMap {
        let mut m = CongestionMap::new(4, 4, 2, 10.0, 20.0);
        for &i in order {
            let (l, cx, cy, h, p) = updates[i];
            m.add_history(l, cx, cy, h);
            m.note_present(l, cx, cy, p);
            m.add_via_history(cx, cy, h);
            m.note_via_present(cx, cy, p);
        }
        m
    };
    let a = apply(&[0, 1, 2, 3, 4, 5]);
    let b = apply(&[5, 3, 1, 4, 2, 0]);
    let c = apply(&[2, 0, 5, 4, 3, 1]);
    assert_eq!(a, b, "update order must not matter");
    assert_eq!(a, c, "update order must not matter");
    for l in 0..2 {
        for cx in 0..4 {
            for cy in 0..4 {
                assert_eq!(a.cell_penalty(l, (cx, cy)), b.cell_penalty(l, (cx, cy)));
            }
        }
    }
}

/// A token cancelled before `route()` starts: the iteration loop never
/// commits a net, everything is accounted for, and the (empty) layout is
/// legal.
#[test]
fn pre_cancelled_token_stops_the_loop_with_a_legal_layout() {
    let pkg = g4();
    let token = CancelToken::new();
    token.cancel();
    let out = InfoRouter::new(neg_seq_only()).with_cancel_token(token).route(&pkg);
    assert!(out.cancelled, "outcome records the cancellation");
    assert_eq!(out.stats.routed_nets, 0, "nothing commits on a dead token");
    assert_eq!(
        out.net_status.len(),
        pkg.nets().len(),
        "every net is accounted for on the cancel path"
    );
    assert_drc_legal(&out);
    if let Some(stats) = &out.negotiation {
        assert!(stats.iterations <= 1, "a dead token stops the loop immediately");
        assert!(!stats.converged, "an interrupted run never claims convergence");
    }
}

/// A token tripped mid-run stops the loop between net commits: committed
/// work survives, the layout is legal, and the run reports degraded.
#[test]
fn mid_run_cancel_leaves_a_legal_partial_layout() {
    let pkg = g4();
    let token = CancelToken::new();
    // Checkpoints fire every `CHECK_INTERVAL` (4096) expansions; g4's
    // sequential stage runs a few such windows, so a trip after 2 lands
    // mid-run — after some commits, before the loop finishes.
    token.trip_after_checks(2);
    let out = InfoRouter::new(neg_seq_only()).with_cancel_token(token).route(&pkg);
    assert!(out.cancelled);
    assert_drc_legal(&out);
    if let Some(stats) = &out.negotiation {
        assert!(!stats.converged, "an interrupted run never claims convergence");
    }
}
