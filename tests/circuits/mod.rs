//! Shared golden-circuit constructors for the ECO test binaries — the
//! same six seeded dense-family instances `golden_layouts.rs` pins.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::Package;

/// The pinned golden circuits, by index 0..6 (g1..g6).
pub fn golden(idx: usize) -> (&'static str, Package) {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    match idx {
        0 => ("g1_two_chip", mk(1, 12, 30, 7)),
        1 => ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        2 => ("g3_three_chip", mk(2, 16, 48, 23)),
        3 => ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        4 => ("g5_six_chip", mk(3, 20, 40, 41)),
        5 => ("g6_six_chip_dense", mk(3, 24, 48, 53)),
        _ => panic!("golden circuit index out of range: {idx}"),
    }
}
