//! Telemetry determinism suite.
//!
//! Locks down the three contracts the telemetry subsystem makes:
//!
//! 1. The per-net route journal is part of the deterministic output:
//!    threads=1 and threads=4 produce identical journals on every golden
//!    circuit, because records are emitted only at authoritative commit
//!    points (discarded speculative plans never journal).
//! 2. Telemetry is observation-only: the routed layout is byte-identical
//!    (canonical hash) with telemetry on and off.
//! 3. Counters are monotonic: a rip-up trial that fails and restores the
//!    layout snapshot does not roll its counters back — every trial
//!    resolves to exactly one commit or one restore, and work done during
//!    restored trials stays counted.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::Package;
use info_rdl::{InfoRouter, RouterConfig, TelemetryReport};

/// The six golden circuits from `tests/golden_layouts.rs`, same specs.
fn golden_circuits() -> Vec<(&'static str, Package)> {
    vec![
        ("g1_two_chip", mk(1, 12, 30, 7)),
        ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        ("g3_three_chip", mk(2, 16, 48, 23)),
        ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        ("g5_six_chip", mk(3, 20, 40, 41)),
        ("g6_six_chip_dense", mk(3, 24, 48, 53)),
    ]
}

fn mk(idx: usize, io: usize, bumps: usize, seed: u64) -> Package {
    let mut spec = dense_spec(idx);
    spec.io_pads = io;
    spec.nets = io / 2;
    spec.bump_pads = bumps;
    spec.seed = seed;
    build_dense(spec, false)
}

fn route_with_telemetry(pkg: &Package, threads: usize, cells: usize) -> TelemetryReport {
    let cfg = RouterConfig::default()
        .with_global_cells(cells)
        .with_threads(threads)
        .with_telemetry();
    InfoRouter::new(cfg).route(pkg).telemetry.expect("telemetry enabled")
}

/// Journal records are emitted only at authoritative commit points, so the
/// journal — order, contents, victims, outcomes — must be identical no
/// matter how many speculative worker threads raced to produce the plans.
#[test]
fn journal_identical_across_thread_counts() {
    let mut circuits = golden_circuits();
    // A congested variant that exercises rip-up (commits *and* restores)
    // so the invariance claim covers RipUp records too (at 14 global
    // cells none of the goldens rip up).
    circuits.push(("g3_congested", mk(2, 16, 48, 23)));
    for (name, pkg) in circuits {
        let cells = if name == "g3_congested" { 10 } else { 14 };
        let seq = route_with_telemetry(&pkg, 1, cells);
        let par = route_with_telemetry(&pkg, 4, cells);
        assert_eq!(
            seq.journal, par.journal,
            "{name}: route journal differs between threads=1 and threads=4"
        );
        if name == "g3_congested" {
            assert!(
                seq.counter("ripup_attempts") > 0,
                "g3_congested no longer exercises rip-up; pick a denser probe"
            );
        }
    }
}

/// Telemetry must be observation-only: enabling it cannot change a single
/// byte of the routed layout or any routing statistic.
#[test]
fn layouts_byte_identical_telemetry_on_off() {
    for (name, pkg) in golden_circuits() {
        let base_cfg = RouterConfig::default().with_global_cells(14);
        let off = InfoRouter::new(base_cfg).route(&pkg);
        let on = InfoRouter::new(base_cfg.with_telemetry()).route(&pkg);
        assert!(off.telemetry.is_none(), "{name}: telemetry-off outcome carries a report");
        assert!(on.telemetry.is_some(), "{name}: telemetry-on outcome missing its report");
        assert_eq!(
            off.layout.canonical_hash(),
            on.layout.canonical_hash(),
            "{name}: layout differs with telemetry enabled"
        );
        assert_eq!(off.failed, on.failed, "{name}: failed-net sets differ");
        assert_eq!(
            off.stats.total_wirelength_um, on.stats.total_wirelength_um,
            "{name}: wirelength differs with telemetry enabled"
        );
        assert_eq!(off.stats.via_count, on.stats.via_count, "{name}: via counts differ");
    }
}

/// Rip-up restores roll back the *layout*, never the counters. Every
/// trial increments `ripup_attempts` and then resolves to exactly one of
/// `ripup_commits` (net stuck) or `snapshot_restores` (rolled back), so
/// the three counters stay in lockstep — and expansion work journaled at
/// commit points can never exceed the total the counters accumulated,
/// restored trials included.
#[test]
fn counters_monotonic_across_ripup_restores() {
    let pkg = mk(2, 16, 48, 23);
    let rep = route_with_telemetry(&pkg, 1, 10);
    let attempts = rep.counter("ripup_attempts");
    let commits = rep.counter("ripup_commits");
    let restores = rep.counter("snapshot_restores");
    assert!(attempts > 0, "probe circuit must exercise rip-up");
    assert!(restores > 0, "probe circuit must restore at least one snapshot");
    assert_eq!(
        attempts,
        commits + restores,
        "every rip-up trial must resolve to exactly one commit or one restore"
    );
    let non_concurrent =
        rep.journal.iter().filter(|r| r.pass.label() != "concurrent").count() as u64;
    assert!(
        rep.counter("searches") >= non_concurrent,
        "searches counter ({}) fell below journaled sequential attempts ({non_concurrent}) — \
         a restore rolled the counter back",
        rep.counter("searches")
    );
    let journaled: u64 =
        rep.journal.iter().filter(|r| r.pass.label() != "concurrent").map(|r| r.expansions).sum();
    assert!(
        rep.counter("nodes_expanded") >= journaled,
        "nodes_expanded counter ({}) fell below journaled expansion work ({journaled})",
        rep.counter("nodes_expanded")
    );
}
