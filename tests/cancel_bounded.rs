//! Bounded-termination guarantees of fine-grained cancellation: a cancel
//! (or deadline) observed mid-sequential-search stops the flow within a
//! bounded number of A* expansions — not at the next stage boundary —
//! and still returns a legal, fully-accounted partial layout.

use info_rdl::generators::dense;
use info_rdl::model::drc;
use info_rdl::router::{Completion, NetStatus};
use info_rdl::tile::cancel::CHECK_INTERVAL;
use info_rdl::tile::CancelToken;
use info_rdl::{InfoRouter, RouteOutcome, RouterConfig};
use std::time::{Duration, Instant};

/// Single-threaded sequential-only config: every expansion goes through
/// one token, so the deterministic trip bound is exact.
fn seq_only() -> RouterConfig {
    RouterConfig::default().without_concurrent().without_lp().with_threads(1)
}

/// Shared invariants of any interrupted run: legal layout, every net
/// accounted for, degraded completion.
fn assert_legal_partial(out: &RouteOutcome, total_nets: usize) {
    assert_eq!(out.completion, Completion::Degraded);
    assert_eq!(out.net_status.len(), total_nets, "per-net status covers every net");
    for v in out.drc.violations() {
        assert!(
            matches!(v, drc::Violation::Disconnected { .. }),
            "interrupted layout must stay legal: {v}"
        );
    }
    // Status counts agree with the outcome's own bookkeeping.
    let routed = out.net_status.iter().filter(|(_, s)| *s == NetStatus::Routed).count();
    assert_eq!(routed, out.stats.routed_nets, "net_status vs stats disagree on routed");
}

/// A token tripped after `k` checkpoints stops the dense2 sequential
/// search within `(k + 2) * CHECK_INTERVAL` expansions — the flow never
/// runs to a stage boundary before noticing.
#[test]
fn mid_search_cancel_terminates_within_the_checkpoint_bound() {
    let pkg = dense(2);
    let token = CancelToken::new();
    let k = 4u64;
    token.trip_after_checks(k);
    let out = InfoRouter::new(seq_only()).with_cancel_token(token.clone()).route(&pkg);

    assert!(token.is_cancelled(), "the trip must have fired");
    assert!(out.cancelled, "outcome records the cancellation");
    assert_legal_partial(&out, pkg.nets().len());
    assert!(
        out.timings.search.nodes_expanded <= (k + 2) * CHECK_INTERVAL,
        "cancel was not observed mid-search: {} expansions for a trip at check {k} \
         (interval {CHECK_INTERVAL})",
        out.timings.search.nodes_expanded,
    );
    // dense2 has 46 nets; a trip after ~4 checkpoints leaves most of the
    // work untouched, and that work is reported as skipped, not failed.
    assert!(
        out.net_status.iter().any(|(_, s)| *s == NetStatus::Skipped),
        "an early cancel must leave skipped nets: {:?}",
        out.net_status
    );
}

/// An immediate trip (first checkpoint) degenerates to a near-empty run:
/// a handful of expansions, everything skipped or failed, still legal.
#[test]
fn first_checkpoint_trip_is_nearly_free() {
    let pkg = dense(2);
    let token = CancelToken::new();
    token.trip_after_checks(1);
    let out = InfoRouter::new(seq_only()).with_cancel_token(token).route(&pkg);
    assert!(out.cancelled);
    assert_legal_partial(&out, pkg.nets().len());
    assert!(
        out.timings.search.nodes_expanded <= 3 * CHECK_INTERVAL,
        "{} expansions after a first-checkpoint trip",
        out.timings.search.nodes_expanded
    );
    assert_eq!(out.stats.routed_nets, 0, "nothing can commit after an immediate trip");
}

/// A token cancelled before `route()` even starts yields a degraded
/// all-skipped answer without touching the search.
#[test]
fn pre_cancelled_token_skips_everything() {
    let pkg = dense(2);
    let token = CancelToken::new();
    token.cancel();
    let out = InfoRouter::new(seq_only()).with_cancel_token(token).route(&pkg);
    assert!(out.cancelled);
    assert_legal_partial(&out, pkg.nets().len());
    assert_eq!(out.stats.routed_nets, 0);
    assert_eq!(out.timings.search.nodes_expanded, 0, "no search runs on a dead token");
}

/// A tiny wall-clock job deadline is observed mid-flow (deadline, not
/// cancel: `cancelled` stays false) and the run ends promptly with a
/// degraded answer instead of running dense2 to completion.
#[test]
fn job_deadline_is_observed_mid_search() {
    let pkg = dense(2);
    let token = CancelToken::new();
    token.arm_job_deadline(Some(Duration::from_millis(5)));
    let t0 = Instant::now();
    let out = InfoRouter::new(seq_only()).with_cancel_token(token).route(&pkg);
    let elapsed = t0.elapsed();

    assert!(!out.cancelled, "a deadline truncation is not a cancellation");
    assert_legal_partial(&out, pkg.nets().len());
    assert!(
        out.net_status.iter().any(|(_, s)| *s != NetStatus::Routed),
        "a 5 ms budget cannot route all of dense2"
    );
    // Generous bound: the point is "seconds, not the full run", robust to
    // slow debug builds and loaded CI machines.
    assert!(
        elapsed < Duration::from_secs(60),
        "deadline-bounded run took {elapsed:?}"
    );
}
