//! Service-layer fault injection: under any single injected fault at a
//! `serve.*` site — error-return or panic — the pool survives, the
//! faulted job (or line) degrades in isolation, and every *other* job
//! still produces a layout byte-identical to the unfaulted baseline.

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{DesignRules, Package, PackageBuilder};
use info_rdl::router::serve::{json, serve_lines, JobRequest, JobServer, ServeConfig};
use info_rdl::router::{FaultPlan, FaultSite};
use info_rdl::{InfoRouter, RouterConfig};
use json::Json;
use std::sync::Arc;
use std::time::Duration;

/// Two facing chips, four straight-across nets — the fault-injection
/// suite's standard quick-but-nontrivial circuit.
fn two_chip_package() -> Package {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
        DesignRules::default(),
        2,
    );
    let c1 = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
    let c2 = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));
    for i in 0..4 {
        let y = 300_000 + 70_000 * i as i64;
        let a = b.add_io_pad(c1, Point::new(480_000, y)).unwrap();
        let z = b.add_io_pad(c2, Point::new(920_000, y)).unwrap();
        b.add_net(a, z).unwrap();
    }
    b.build().unwrap()
}

fn job_cfg() -> RouterConfig {
    RouterConfig::default().with_global_cells(10)
}

fn baseline_hash(pkg: &Package) -> u64 {
    InfoRouter::new(job_cfg()).route(pkg).layout.canonical_hash()
}

fn request(pkg: &Arc<Package>, id: &str) -> JobRequest {
    JobRequest { id: id.to_string(), package: Arc::clone(pkg), cfg: job_cfg(), deadline: None, changes: None }
}

/// Drives two jobs through a one-worker pool under `plan`; returns the
/// results in completion order.
fn run_two_jobs(pkg: &Arc<Package>, plan: FaultPlan) -> Vec<info_rdl::router::serve::JobResult> {
    let cfg = ServeConfig { workers: 1, fault_plan: plan, ..ServeConfig::default() };
    let (server, results) = JobServer::start(cfg);
    server.submit(request(pkg, "first")).expect("submit first");
    server.submit(request(pkg, "second")).expect("submit second");
    let out: Vec<_> = (0..2)
        .map(|_| results.recv_timeout(Duration::from_secs(120)).expect("job completes"))
        .collect();
    server.shutdown();
    out
}

/// `serve.worker` error fault: the first attempt fails internally, the
/// retry completes the job, and both jobs hash-match the baseline.
#[test]
fn worker_error_fault_is_retried_and_jobs_stay_byte_identical() {
    let pkg = Arc::new(two_chip_package());
    let want = baseline_hash(&pkg);
    for plan in [FaultPlan::single(FaultSite::ServeWorker), FaultPlan::single_panic(FaultSite::ServeWorker)] {
        let results = run_two_jobs(&pkg, plan);
        assert!(
            results.iter().any(|r| r.retried),
            "exactly one attempt should have failed and retried"
        );
        for r in results {
            let out = r.outcome.unwrap_or_else(|e| panic!("{}: job lost to the fault: {e}", r.id));
            assert_eq!(
                out.layout.canonical_hash(),
                want,
                "{}: fault changed the routed layout",
                r.id
            );
        }
    }
}

/// `serve.cancel` fault: the targeted job is tripped mid-search and comes
/// back degraded; the next job is untouched and byte-identical. Uses the
/// entangled pattern — its weaving needs real A* expansions, so the
/// first-checkpoint trip actually has a checkpoint to land on (the
/// straight-across circuit routes without expanding a single node).
#[test]
fn cancel_fault_degrades_one_job_and_spares_the_rest() {
    let pkg = Arc::new(info_rdl::generators::patterns::entangled(3, 2));
    let want = baseline_hash(&pkg);
    let cfg = ServeConfig {
        workers: 1,
        fault_plan: FaultPlan::single(FaultSite::ServeCancel),
        cancel_after_checks: 1,
        ..ServeConfig::default()
    };
    let (server, results) = JobServer::start(cfg);
    server.submit(request(&pkg, "doomed")).expect("submit doomed");
    server.submit(request(&pkg, "spared")).expect("submit spared");
    let mut cancelled_seen = false;
    for _ in 0..2 {
        let r = results.recv_timeout(Duration::from_secs(120)).expect("job completes");
        match r.id.as_str() {
            "doomed" => {
                let out = r.outcome.expect("a cancelled job still returns its partial layout");
                assert!(out.cancelled, "the injected trip must register as a cancellation");
                cancelled_seen = true;
            }
            "spared" => {
                let out = r.outcome.expect("the spared job completes");
                assert!(!out.cancelled);
                assert_eq!(out.layout.canonical_hash(), want, "spared job must be byte-identical");
            }
            other => panic!("unexpected job id {other}"),
        }
    }
    assert!(cancelled_seen);
    server.shutdown();
}

/// `serve.parse` faults (error and panic): the poisoned line costs one
/// typed rejection; the next line on the same connection still routes,
/// byte-identical to the baseline.
#[test]
fn parse_faults_cost_one_response_not_the_server() {
    let pkg = two_chip_package();
    let want = format!("{:016x}", baseline_hash(&pkg));
    let netlist = info_rdl::model::write_package(&pkg);
    let route_line = |id: &str| {
        Json::Obj(vec![
            ("op".to_string(), Json::Str("route".to_string())),
            ("id".to_string(), Json::Str(id.to_string())),
            ("netlist".to_string(), Json::Str(netlist.clone())),
            (
                "config".to_string(),
                Json::Obj(vec![("global_cells".to_string(), Json::Num(10.0))]),
            ),
        ])
        .to_string()
    };
    for plan in [FaultPlan::single(FaultSite::ServeParse), FaultPlan::single_panic(FaultSite::ServeParse)] {
        let cfg = ServeConfig { workers: 1, fault_plan: plan, ..ServeConfig::default() };
        let input =
            format!("{}\n{}\n{{\"op\":\"shutdown\"}}\n", route_line("eaten"), route_line("ok"));
        let mut out = Vec::new();
        serve_lines(input.as_bytes(), &mut out, cfg).expect("server survives the fault");
        let text = String::from_utf8(out).expect("utf8");
        let responses: Vec<Json> =
            text.lines().map(|l| json::parse(l).expect("valid response json")).collect();
        assert_eq!(responses.len(), 2, "one rejection + one result: {text}");
        // The faulted line produced a rejection (no job id reached the
        // queue), the clean line routed to the baseline hash.
        let rejected = responses
            .iter()
            .find(|r| r.get("status").and_then(Json::as_str) == Some("rejected"))
            .expect("the poisoned line is rejected");
        assert!(rejected.get("error").is_some());
        let done = responses
            .iter()
            .find(|r| r.get("status").and_then(Json::as_str) == Some("done"))
            .expect("the clean line completes");
        assert_eq!(done.get("id").and_then(Json::as_str), Some("ok"));
        assert_eq!(done.get("hash").and_then(Json::as_str), Some(want.as_str()));
    }
}
