//! Ingestion hardening: whatever bytes arrive on the wire, `parse_request`
//! returns `Ok` or a typed `RouterError::BadInput` — it never panics and
//! never produces any other error class. Randomized mutation tests plus a
//! gallery of deliberately adversarial inputs.

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{write_package, DesignRules, PackageBuilder};
use info_rdl::router::serve::{json, parse_request, Request};
use info_rdl::router::RouterError;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn valid_netlist() -> String {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 400_000)),
        DesignRules::default(),
        2,
    );
    let c = b.add_chip(Rect::new(Point::new(50_000, 50_000), Point::new(200_000, 350_000)));
    let io = b.add_io_pad(c, Point::new(180_000, 200_000)).unwrap();
    let g = b.add_bump_pad(Point::new(450_000, 200_000)).unwrap();
    b.add_net(io, g).unwrap();
    write_package(&b.build().unwrap())
}

fn valid_route_line(netlist: &str) -> String {
    json::Json::Obj(vec![
        ("op".to_string(), json::Json::Str("route".to_string())),
        ("id".to_string(), json::Json::Str("p1".to_string())),
        ("netlist".to_string(), json::Json::Str(netlist.to_string())),
        (
            "config".to_string(),
            json::Json::Obj(vec![("global_cells".to_string(), json::Json::Num(8.0))]),
        ),
    ])
    .to_string()
}

/// The single property everything funnels through: no panic, and every
/// failure is `BadInput` — not `Serve`, not `Panic`, not anything else.
fn assert_total(line: &str) {
    let got = catch_unwind(AssertUnwindSafe(|| parse_request(line)));
    match got {
        Ok(Ok(_)) => {}
        Ok(Err(RouterError::BadInput { .. })) => {}
        Ok(Err(other)) => panic!("non-BadInput error for {line:?}: {other}"),
        Err(_) => panic!("parse_request panicked on {line:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes (interpreted lossily as UTF-8) never panic the
    /// parser.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..1_000_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..400);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255) as u8).collect();
        assert_total(&String::from_utf8_lossy(&bytes));
    }

    /// Mutations of a *valid* request line — truncations, splices, and
    /// byte flips — stay total: the near-misses are where naive parsers
    /// index out of bounds.
    #[test]
    fn mutated_valid_lines_never_panic(seed in 0u64..1_000_000) {
        let netlist = valid_netlist();
        let line = valid_route_line(&netlist);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s: Vec<u8> = line.into_bytes();
        for _ in 0..rng.gen_range(1..6) {
            match rng.gen_range(0..4) {
                // Truncate anywhere (possibly mid-escape, mid-UTF-8).
                0 => s.truncate(rng.gen_range(0..=s.len())),
                // Flip one byte.
                1 if !s.is_empty() => {
                    let i = rng.gen_range(0..s.len());
                    s[i] = rng.gen_range(0..=255) as u8;
                }
                // Duplicate a random slice (creates duplicate keys).
                2 if !s.is_empty() => {
                    let a = rng.gen_range(0..s.len());
                    let b = rng.gen_range(a..s.len());
                    let slice: Vec<u8> = s[a..b].to_vec();
                    s.extend_from_slice(&slice);
                }
                // Splice in a hostile token.
                _ => {
                    let tok: &[u8] =
                        [&b"NaN"[..], b"1e999", b"\\ud800", b"\x00", b"{{{{"][rng.gen_range(0..5)];
                    let i = rng.gen_range(0..=s.len());
                    for (o, byte) in tok.iter().enumerate() {
                        s.insert(i + o, *byte);
                    }
                }
            }
        }
        assert_total(&String::from_utf8_lossy(&s));
    }
}

/// The deliberate-adversary gallery: each of these must come back as a
/// typed `BadInput`, with the parser alive to tell the tale.
#[test]
fn adversarial_inputs_get_typed_errors() {
    let cases: &[&str] = &[
        // Truncated / malformed JSON.
        "",
        "{",
        "{\"op\":\"route\",",
        "{\"op\":\"route\"}\0trailing",
        "[1,2,3",
        "{\"op\": }",
        // Non-finite and overflow numbers.
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":{\"global_cells\":NaN}}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":{\"global_cells\":1e999}}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":{\"global_cells\":-3}}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":{\"global_cells\":2.5}}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":{\"deadline_ms\":1e300}}",
        // Bad escapes and control characters.
        "{\"op\":\"route\",\"id\":\"\\ud800\",\"netlist\":\"n\"}",
        "{\"op\":\"route\",\"id\":\"a\u{0001}b\",\"netlist\":\"n\"}",
        // Schema violations.
        "{\"op\":42}",
        "{\"op\":\"launch_missiles\"}",
        "{\"op\":\"route\"}",
        "{\"op\":\"route\",\"id\":\"\",\"netlist\":\"n\"}",
        "{\"op\":\"route\",\"id\":\"x\"}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":17}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"n\",\"config\":3}",
        "{\"op\":\"cancel\"}",
        // Garbage netlists: syntax errors, absurd coordinates.
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"not a netlist\"}",
        "{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"chip 0 0 0 0\\nnet -1 -1\"}",
    ];
    for line in cases {
        let got = catch_unwind(AssertUnwindSafe(|| parse_request(line)));
        match got {
            Ok(Err(RouterError::BadInput { reason })) => {
                assert!(!reason.is_empty(), "empty reason for {line:?}")
            }
            Ok(Ok(req)) => panic!("adversarial input accepted: {line:?} -> {req:?}"),
            Ok(Err(other)) => panic!("non-BadInput error for {line:?}: {other}"),
            Err(_) => panic!("parse_request panicked on {line:?}"),
        }
    }
    // Deep nesting is cut off by the parser's depth limit, not the stack.
    let deep = format!("{}1{}", "[".repeat(5_000), "]".repeat(5_000));
    assert_total(&deep);
    let deep_obj = format!("{}\"x\"{}", "{\"a\":".repeat(5_000), "}".repeat(5_000));
    assert_total(&deep_obj);
}

/// An id of exactly 256 characters is accepted; 257 is rejected — the
/// boundary itself is the interesting byte.
#[test]
fn id_length_boundary() {
    let netlist = valid_netlist();
    let mk = |n: usize| {
        json::Json::Obj(vec![
            ("op".to_string(), json::Json::Str("route".to_string())),
            ("id".to_string(), json::Json::Str("i".repeat(n))),
            ("netlist".to_string(), json::Json::Str(netlist.clone())),
        ])
        .to_string()
    };
    assert!(matches!(parse_request(&mk(256)), Ok(Request::Route(..))));
    assert!(matches!(parse_request(&mk(257)), Err(RouterError::BadInput { .. })));
}
