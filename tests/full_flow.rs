//! Cross-crate integration tests: the complete flow on generated
//! circuits, verified end-to-end by the DRC.

use info_rdl::generators::{dense_spec, patterns};
use info_rdl::geom::{Point, Rect};
use info_rdl::model::{drc, DesignRules, PackageBuilder};
use info_rdl::{InfoRouter, LinExtRouter, RouterConfig};

/// A small dense-style circuit (scaled-down dense1) routes completely and
/// cleanly through the full five-stage flow.
#[test]
fn small_dense_circuit_routes_cleanly() {
    let mut spec = dense_spec(1);
    spec.io_pads = 12;
    spec.nets = 6;
    spec.bump_pads = 30;
    spec.seed = 7;
    let pkg = info_rdl::generators::build_dense(spec, false);
    let out = InfoRouter::new(RouterConfig::default().with_global_cells(14)).route(&pkg);
    assert!(
        out.stats.routability_pct >= 99.0,
        "small instance should fully route: {} (failed {:?})",
        out.stats,
        out.failed
    );
    assert_eq!(out.stats.violation_count, 0, "{:#?}", out.drc.violations());
    // Every routed net is individually connected.
    for n in pkg.nets() {
        if !out.failed.contains(&n.id) {
            assert!(drc::is_connected(&pkg, &out.layout, n.id), "{} disconnected", n.id);
        }
    }
}

/// The via-based router must beat the no-via baseline on the entangled
/// pattern with two layers (the Fig. 2 contrast, end to end).
#[test]
fn via_router_beats_baseline_on_entangled_pattern() {
    let pkg = patterns::entangled(3, 2);
    let cfg = RouterConfig::default().with_global_cells(16);
    let ours = InfoRouter::new(cfg).route(&pkg);
    let base = LinExtRouter::new(cfg).route(&pkg);
    assert!(
        ours.stats.routed_nets > base.stats.routed_nets,
        "ours {} vs baseline {}",
        ours.stats,
        base.stats
    );
    assert!(ours.stats.via_count > 0, "weaving requires vias");
}

/// The final layout never contains crossings, whatever else happens.
#[test]
fn no_crossings_survive_the_flow() {
    for k in [2usize, 4] {
        let pkg = patterns::entangled(k, 2);
        let out = InfoRouter::new(RouterConfig::default().with_global_cells(16)).route(&pkg);
        let crossings = out
            .drc
            .violations()
            .iter()
            .filter(|v| matches!(v, drc::Violation::Crossing { .. }))
            .count();
        assert_eq!(crossings, 0, "k = {k}: {:#?}", out.drc.violations());
    }
}

/// Obstacles are honored end to end: a net whose only corridor is blocked
/// on one layer dives through a via and comes back up.
#[test]
fn router_dives_under_an_obstacle() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let c1 = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let c2 = b.add_chip(Rect::new(Point::new(650_000, 150_000), Point::new(900_000, 450_000)));
    let a = b.add_io_pad(c1, Point::new(330_000, 300_000)).unwrap();
    let z = b.add_io_pad(c2, Point::new(670_000, 300_000)).unwrap();
    b.add_net(a, z).unwrap();
    // A full-height wall on the top layer only, between the chips.
    b.add_obstacle(
        info_rdl::model::WireLayer(0),
        Rect::new(Point::new(480_000, 0), Point::new(520_000, 600_000)),
    )
    .unwrap();
    let pkg = b.build().unwrap();
    let out = InfoRouter::new(RouterConfig::default().with_global_cells(12)).route(&pkg);
    assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    assert!(out.stats.via_count >= 2, "must dive under the wall and resurface");
    assert_eq!(out.stats.violation_count, 0, "{:#?}", out.drc.violations());
}

/// Determinism: routing the same package twice gives identical statistics.
#[test]
fn routing_is_deterministic() {
    let pkg = patterns::entangled(3, 3);
    let cfg = RouterConfig::default().with_global_cells(12);
    let a = InfoRouter::new(cfg).route(&pkg);
    let b = InfoRouter::new(cfg).route(&pkg);
    assert_eq!(a.stats.routed_nets, b.stats.routed_nets);
    assert_eq!(a.stats.via_count, b.stats.via_count);
    assert!((a.stats.total_wirelength_um - b.stats.total_wirelength_um).abs() < 1e-9);
}
