//! Serve-path byte-identity: jobs routed through the concurrent
//! [`JobServer`] must produce layouts byte-identical (canonical hash) to
//! the same configuration run through [`InfoRouter::route`] directly —
//! warm-cache reuse, worker scheduling, and result interleaving are all
//! observational.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::Package;
use info_rdl::router::serve::{json, JobRequest, JobServer, Request, ServeConfig};
use info_rdl::router::Completion;
use info_rdl::{InfoRouter, RouterConfig};
use std::sync::Arc;
use std::time::Duration;

/// A scaled-down dense1 (debug builds route it in seconds; the release
/// loadtest bin exercises the full-size dense1 through the same path).
fn small_dense1() -> Package {
    let mut spec = dense_spec(1);
    spec.io_pads = 16;
    spec.nets = 8;
    spec.bump_pads = 40;
    spec.seed = 11;
    build_dense(spec, false)
}

/// Eight concurrent dense1-family jobs on a four-worker pool all
/// hash-match the single-job direct route, and the shared warm cache
/// sees reuse.
#[test]
fn eight_concurrent_dense1_jobs_match_direct_route() {
    let pkg = Arc::new(small_dense1());
    let rcfg = RouterConfig::default().with_global_cells(12);
    let direct = InfoRouter::new(rcfg).route(&pkg);
    let want = direct.layout.canonical_hash();

    let scfg = ServeConfig { workers: 4, ..ServeConfig::default() };
    let (server, results) = JobServer::start(scfg);
    for i in 0..8 {
        server
            .submit(JobRequest {
                id: format!("job-{i}"),
                package: Arc::clone(&pkg),
                cfg: rcfg,
                deadline: None,
                changes: None,
            })
            .expect("queue holds 8 jobs");
    }
    for _ in 0..8 {
        let r = results
            .recv_timeout(Duration::from_secs(600))
            .expect("every job completes");
        let out = r.outcome.unwrap_or_else(|e| panic!("{}: job failed: {e}", r.id));
        assert!(!r.retried, "{}: clean jobs never retry", r.id);
        assert_eq!(out.completion, Completion::Full, "{}: full answer expected", r.id);
        assert_eq!(
            out.layout.canonical_hash(),
            want,
            "{}: serve layout differs from direct route",
            r.id
        );
        assert_eq!(out.failed, direct.failed, "{}: failed-net sets differ", r.id);
    }
    let (hits, misses) = server.warm_cache().stats();
    assert!(hits >= 1, "8 identical jobs must reuse the warm space (hits={hits})");
    assert!(misses >= 1, "the first job must build cold (misses={misses})");
    assert_eq!(hits + misses, 8, "every job consults the cache exactly once");
    server.shutdown();
}

/// The wire path end to end: the same job encoded as a JSON line through
/// `serve_lines` reports the direct route's hash.
#[test]
fn serve_lines_reports_the_direct_hash() {
    let pkg = small_dense1();
    let rcfg = RouterConfig::default().with_global_cells(12);
    let want = format!("{:016x}", InfoRouter::new(rcfg).route(&pkg).layout.canonical_hash());

    let netlist = info_rdl::model::write_package(&pkg);
    let line = json::Json::Obj(vec![
        ("op".to_string(), json::Json::Str("route".to_string())),
        ("id".to_string(), json::Json::Str("wire-1".to_string())),
        ("netlist".to_string(), json::Json::Str(netlist)),
        (
            "config".to_string(),
            json::Json::Obj(vec![("global_cells".to_string(), json::Json::Num(12.0))]),
        ),
    ])
    .to_string();

    // Sanity: the request round-trips through the parser as a Route op.
    match info_rdl::router::serve::parse_request(&line) {
        Ok(Request::Route(req, _)) => assert_eq!(req.id, "wire-1"),
        other => panic!("expected a route request, got {other:?}"),
    }

    let input = format!("{line}\n{{\"op\":\"shutdown\"}}\n");
    let mut out = Vec::new();
    info_rdl::router::serve::serve_lines(input.as_bytes(), &mut out, ServeConfig::default())
        .expect("serve runs");
    let text = String::from_utf8(out).expect("utf8 responses");
    let resp = json::parse(text.lines().next().expect("one response")).expect("valid json");
    assert_eq!(resp.get("id").and_then(json::Json::as_str), Some("wire-1"));
    assert_eq!(resp.get("status").and_then(json::Json::as_str), Some("done"));
    assert_eq!(resp.get("hash").and_then(json::Json::as_str), Some(want.as_str()));
}

/// The `"eco"` op over the wire: the response hash matches a direct
/// `reroute_delta` against the full route of the same netlist, and the
/// response carries the ECO ledger. Works from a cold priors cache (the
/// server full-routes the base on the spot), so a lone eco job is valid.
#[test]
fn serve_lines_eco_matches_direct_reroute_delta() {
    use info_rdl::EcoChangeSet;
    let pkg = small_dense1();
    let rcfg = RouterConfig::default().with_global_cells(12);
    let router = InfoRouter::new(rcfg);
    let prior = router.route(&pkg);
    let changes = EcoChangeSet::new().remove_net(pkg.nets()[0].id);
    let direct = router.reroute_delta(&pkg, &prior, &changes).expect("valid deletion");
    let want = format!("{:016x}", direct.layout.canonical_hash());

    let netlist = info_rdl::model::write_package(&pkg);
    let line = json::Json::Obj(vec![
        ("op".to_string(), json::Json::Str("eco".to_string())),
        ("id".to_string(), json::Json::Str("eco-1".to_string())),
        ("netlist".to_string(), json::Json::Str(netlist)),
        (
            "changes".to_string(),
            json::Json::Obj(vec![(
                "remove".to_string(),
                json::Json::Arr(vec![json::Json::Num(0.0)]),
            )]),
        ),
        (
            "config".to_string(),
            json::Json::Obj(vec![("global_cells".to_string(), json::Json::Num(12.0))]),
        ),
    ])
    .to_string();

    let input = format!("{line}\n{{\"op\":\"shutdown\"}}\n");
    let mut out = Vec::new();
    info_rdl::router::serve::serve_lines(input.as_bytes(), &mut out, ServeConfig::default())
        .expect("serve runs");
    let text = String::from_utf8(out).expect("utf8 responses");
    let resp = json::parse(text.lines().next().expect("one response")).expect("valid json");
    assert_eq!(resp.get("id").and_then(json::Json::as_str), Some("eco-1"));
    assert_eq!(resp.get("status").and_then(json::Json::as_str), Some("done"));
    assert_eq!(resp.get("hash").and_then(json::Json::as_str), Some(want.as_str()));
    let eco = resp.get("eco").expect("eco responses carry the EcoStats ledger");
    assert!(eco.get("nets_reused").is_some(), "ledger lists reused nets: {eco}");
}
