//! Golden-layout regression suite.
//!
//! Routes six small seeded circuits through the full five-stage flow and
//! pins, per circuit: routability (routed/failed counts), total
//! wirelength, via count, and the canonical layout hash — against the
//! checked-in snapshots in `tests/golden/*.json`. Any change to routing
//! behavior (ordering, tie-breaks, geometry) shows up here as a hash
//! mismatch with a field-by-field diff.
//!
//! - `UPDATE_GOLDEN=1 cargo test --test golden_layouts` regenerates the
//!   snapshots (review the diff before committing!).
//! - `RDL_TEST_THREADS=<n>` routes with the parallel sequential planner;
//!   the snapshots must match for every thread count — that is the
//!   determinism guarantee CI's thread matrix locks down.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::Package;
use info_rdl::{InfoRouter, RouteOutcome, RouterConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The six pinned circuits: scaled-down dense-family instances spanning
/// 2–9 chips, 3–5 wire layers, and different RNG seeds.
fn circuits() -> Vec<(&'static str, Package)> {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    vec![
        ("g1_two_chip", mk(1, 12, 30, 7)),
        ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        ("g3_three_chip", mk(2, 16, 48, 23)),
        ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        ("g5_six_chip", mk(3, 20, 40, 41)),
        ("g6_six_chip_dense", mk(3, 24, 48, 53)),
    ]
}

fn env_threads() -> usize {
    std::env::var("RDL_TEST_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

fn route(pkg: &Package, threads: usize) -> RouteOutcome {
    let cfg = RouterConfig::default().with_global_cells(14).with_threads(threads);
    InfoRouter::new(cfg).route(pkg)
}

#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    circuit: String,
    nets: usize,
    routed: usize,
    failed: usize,
    wirelength_um: String,
    vias: usize,
    layout_hash: String,
}

impl Snapshot {
    fn take(name: &str, pkg: &Package, out: &RouteOutcome) -> Self {
        Snapshot {
            circuit: name.to_string(),
            nets: pkg.nets().len(),
            routed: out.stats.routed_nets,
            failed: out.failed.len(),
            wirelength_um: format!("{:.3}", out.stats.total_wirelength_um),
            vias: out.stats.via_count,
            layout_hash: format!("{:016x}", out.layout.canonical_hash()),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"circuit\": \"{}\",\n  \"nets\": {},\n  \"routed\": {},\n  \
             \"failed\": {},\n  \"wirelength_um\": {},\n  \"vias\": {},\n  \
             \"layout_hash\": \"{}\"\n}}\n",
            self.circuit,
            self.nets,
            self.routed,
            self.failed,
            self.wirelength_um,
            self.vias,
            self.layout_hash,
        )
    }

    /// Parses the snapshot JSON we write ourselves (flat string/number
    /// fields only — no external JSON dependency in this workspace).
    fn from_json(text: &str) -> Option<Self> {
        let field = |key: &str| -> Option<String> {
            let tag = format!("\"{key}\":");
            let rest = &text[text.find(&tag)? + tag.len()..];
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('"') {
                Some(stripped[..stripped.find('"')?].to_string())
            } else {
                let end = rest.find([',', '\n', '}'])?;
                Some(rest[..end].trim().to_string())
            }
        };
        Some(Snapshot {
            circuit: field("circuit")?,
            nets: field("nets")?.parse().ok()?,
            routed: field("routed")?.parse().ok()?,
            failed: field("failed")?.parse().ok()?,
            wirelength_um: field("wirelength_um")?.trim().to_string(),
            vias: field("vias")?.parse().ok()?,
            layout_hash: field("layout_hash")?,
        })
    }

    fn diff(&self, other: &Snapshot) -> String {
        let mut out = String::new();
        let mut row = |name: &str, want: &str, got: &str| {
            if want != got {
                let _ = writeln!(out, "    {name}: golden {want} != got {got}");
            }
        };
        row("nets", &self.nets.to_string(), &other.nets.to_string());
        row("routed", &self.routed.to_string(), &other.routed.to_string());
        row("failed", &self.failed.to_string(), &other.failed.to_string());
        row("wirelength_um", &self.wirelength_um, &other.wirelength_um);
        row("vias", &self.vias.to_string(), &other.vias.to_string());
        row("layout_hash", &self.layout_hash, &other.layout_hash);
        out
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Per-circuit snapshot comparison against `tests/golden/*.json`.
#[test]
fn golden_layouts_match() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    let threads = env_threads();
    let dir = golden_dir();
    let mut failures = String::new();
    for (name, pkg) in circuits() {
        let out = route(&pkg, threads);
        let got = Snapshot::take(name, &pkg, &out);
        let path = dir.join(format!("{name}.json"));
        if update {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, got.to_json()).expect("write golden");
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(
                    failures,
                    "  {name}: missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                    path.display()
                );
                continue;
            }
        };
        let want = Snapshot::from_json(&text)
            .unwrap_or_else(|| panic!("unparseable golden file {}", path.display()));
        if want != got {
            let _ = writeln!(failures, "  {name} (threads={threads}):\n{}", want.diff(&got));
        }
    }
    assert!(
        failures.is_empty(),
        "golden layout mismatches:\n{failures}\n(intended change? regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_layouts and review the diff)"
    );
}

/// threads=4 must produce byte-identical layouts to threads=1 on every
/// golden circuit (hash compare) — the determinism contract of the
/// speculative parallel planner.
#[test]
fn thread_matrix_layouts_identical() {
    for (name, pkg) in circuits() {
        let base = route(&pkg, 1);
        let par = route(&pkg, 4);
        assert_eq!(
            base.layout.canonical_hash(),
            par.layout.canonical_hash(),
            "{name}: threads=4 layout differs from threads=1"
        );
        assert_eq!(base.failed, par.failed, "{name}: failed-net sets differ");
        assert_eq!(
            base.sequential_routed, par.sequential_routed,
            "{name}: sequential commit counts differ"
        );
    }
}
