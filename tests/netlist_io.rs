//! Integration tests for benchmark serialization across crates.

use info_rdl::generators::{dense_spec, patterns};
use info_rdl::model::{parse_package, write_package};

#[test]
fn generated_benchmarks_roundtrip_through_text() {
    let mut spec = dense_spec(1);
    spec.io_pads = 16;
    spec.nets = 8;
    spec.bump_pads = 40;
    let pkg = info_rdl::generators::build_dense(spec, false);
    let text = write_package(&pkg);
    let back = parse_package(&text).expect("roundtrip parse");
    assert_eq!(write_package(&back), text, "serialization is a fixpoint");
    assert_eq!(back.nets().len(), pkg.nets().len());
    assert_eq!(back.rules(), pkg.rules());
    assert_eq!(back.die(), pkg.die());
}

#[test]
fn pattern_packages_roundtrip_including_obstacles() {
    let pkg = patterns::entangled(3, 2);
    let text = write_package(&pkg);
    let back = parse_package(&text).expect("roundtrip parse");
    assert_eq!(back.obstacles().len(), pkg.obstacles().len());
    assert_eq!(back.wire_layer_count(), pkg.wire_layer_count());
}
