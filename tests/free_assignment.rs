//! Integration test: free-assignment routing across crates.

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{DesignRules, PackageBuilder};
use info_rdl::router::free_assign::{assign_free_pads, route_with_free_pads};
use info_rdl::RouterConfig;

#[test]
fn fa_pads_route_alongside_pa_nets() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_800_000, 1_200_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(150_000, 300_000), Point::new(700_000, 900_000)));
    // Pre-assigned nets.
    let mut pa_nets = 0;
    for i in 0..3i64 {
        let io = b.add_io_pad(chip, Point::new(680_000, 380_000 + 80_000 * i)).unwrap();
        let g = b.add_bump_pad(Point::new(1_100_000, 380_000 + 80_000 * i)).unwrap();
        b.add_net(io, g).unwrap();
        pa_nets += 1;
    }
    // FA pads plus a bump field.
    let fa: Vec<_> = (0..4)
        .map(|i| b.add_io_pad(chip, Point::new(680_000, 640_000 + 60_000 * i)).unwrap())
        .collect();
    for gy in 0..4i64 {
        for gx in 0..2i64 {
            b.add_bump_pad(Point::new(1_300_000 + 160_000 * gx, 500_000 + 160_000 * gy)).unwrap();
        }
    }
    let pkg = b.build().unwrap();

    // Assignment alone is deterministic and complete.
    let asg1 = assign_free_pads(&pkg, &fa);
    let asg2 = assign_free_pads(&pkg, &fa);
    assert_eq!(asg1, asg2, "assignment must be deterministic");
    assert_eq!(asg1.pairs.len(), 4);

    let (aug, asg, out) =
        route_with_free_pads(&pkg, &fa, RouterConfig::default().with_global_cells(14));
    assert_eq!(aug.nets().len(), pa_nets + asg.pairs.len());
    assert!(
        out.stats.routability_pct >= 85.0,
        "most nets should route: {} ({:?})",
        out.stats,
        out.failed
    );
    // Geometry clean: only unrouted nets may be flagged.
    for v in out.drc.violations() {
        assert!(matches!(v, info_rdl::model::drc::Violation::Disconnected { .. }), "{v}");
    }
}
