//! Differential suite for the windowed A\* search and the reordered
//! rip-up queue.
//!
//! The window is lossless by construction (a windowed result is accepted
//! only when provably identical to the full-graph search; see
//! `info_tile::astar` and DESIGN.md §4d). This suite locks that proof in
//! end to end: routing each golden circuit with the window on vs forced
//! off must produce identical routability, wirelength, and canonical
//! layout hashes — and identical layouts again at `threads` 1 vs 4 over
//! the detour-rate-reordered rip-up queue.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::Package;
use info_rdl::{InfoRouter, RouteOutcome, RouterConfig};

/// The same six circuits the golden suite pins (kept in sync by hand —
/// both files construct them from `dense_spec`).
fn circuits() -> Vec<(&'static str, Package)> {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    vec![
        ("g1_two_chip", mk(1, 12, 30, 7)),
        ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        ("g3_three_chip", mk(2, 16, 48, 23)),
        ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        ("g5_six_chip", mk(3, 20, 40, 41)),
        ("g6_six_chip_dense", mk(3, 24, 48, 53)),
    ]
}

fn route(pkg: &Package, cfg: RouterConfig) -> RouteOutcome {
    InfoRouter::new(cfg.with_global_cells(14)).route(pkg)
}

/// Windowed vs forced-full-graph search: bit-identical outcomes on every
/// golden circuit. Any window that changed a path, a tie-break, or a
/// failure verdict shows up as a hash mismatch here.
#[test]
fn windowed_search_matches_full_graph_on_golden_circuits() {
    for (name, pkg) in circuits() {
        let windowed = route(&pkg, RouterConfig::default());
        let full = route(&pkg, RouterConfig::default().without_search_window());
        assert_eq!(
            windowed.layout.canonical_hash(),
            full.layout.canonical_hash(),
            "{name}: windowed layout differs from full-graph layout"
        );
        assert_eq!(windowed.failed, full.failed, "{name}: routability differs");
        assert_eq!(
            windowed.stats.total_wirelength_um.to_bits(),
            full.stats.total_wirelength_um.to_bits(),
            "{name}: wirelength differs"
        );
        assert_eq!(
            windowed.stats.via_count, full.stats.via_count,
            "{name}: via count differs"
        );
        // The full-graph baseline must never escalate (there is no window
        // to escalate from); the windowed run must have searched at least
        // as often as nets exist, and both report live stats.
        assert_eq!(full.timings.search.window_escalations, 0, "{name}");
        assert!(windowed.timings.search.searches >= full.failed.len() as u64, "{name}");
    }
}

/// The allocation-free trace arena is a drop-in replacement for the
/// `BTreeSet` trace sink: routing every golden circuit with the arena
/// disabled must reproduce the default layouts bit for bit.
#[test]
fn trace_arena_is_lossless_on_golden_circuits() {
    for (name, pkg) in circuits() {
        let arena = route(&pkg, RouterConfig::default());
        let tree = route(&pkg, RouterConfig::default().without_search_arena());
        assert_eq!(
            arena.layout.canonical_hash(),
            tree.layout.canonical_hash(),
            "{name}: arena trace sink changed the layout"
        );
        assert_eq!(arena.failed, tree.failed, "{name}: routability differs");
        assert_eq!(
            arena.timings.search.nodes_expanded, tree.timings.search.nodes_expanded,
            "{name}: the sink must not influence the search itself"
        );
    }
}

/// ALT landmark tables strengthen the heuristic but never change a path
/// cost (admissible + consistent); on the golden circuits they do not
/// even change a tie-break, so the layouts must stay bit-identical to
/// the ALT-off run — and thread-invariant with the tables installed.
#[test]
fn alt_landmarks_preserve_golden_layouts_across_threads() {
    for (name, pkg) in circuits() {
        let off = route(&pkg, RouterConfig::default());
        let alt = route(&pkg, RouterConfig::default().with_alt_landmarks(6));
        assert_eq!(
            alt.layout.canonical_hash(),
            off.layout.canonical_hash(),
            "{name}: ALT changed the layout"
        );
        assert_eq!(alt.failed, off.failed, "{name}: routability differs under ALT");
        assert_eq!(
            alt.stats.total_wirelength_um.to_bits(),
            off.stats.total_wirelength_um.to_bits(),
            "{name}: wirelength differs under ALT"
        );
        let par = route(&pkg, RouterConfig::default().with_alt_landmarks(6).with_threads(4));
        assert_eq!(
            alt.layout.canonical_hash(),
            par.layout.canonical_hash(),
            "{name}: ALT layout differs across thread counts"
        );
    }
}

/// The detour-rate-reordered rip-up queue stays deterministic across
/// thread counts: the authoritative failed-attempt expansion counts that
/// drive the ordering are thread-invariant by construction, so threads=1
/// and threads=4 must agree circuit by circuit.
#[test]
fn reordered_ripup_is_thread_invariant() {
    for (name, pkg) in circuits() {
        let seq = route(&pkg, RouterConfig::default().with_threads(1));
        let par = route(&pkg, RouterConfig::default().with_threads(4));
        assert_eq!(
            seq.layout.canonical_hash(),
            par.layout.canonical_hash(),
            "{name}: threads=4 layout differs from threads=1"
        );
        assert_eq!(seq.failed, par.failed, "{name}: failed-net sets differ");
        assert_eq!(
            seq.stats.total_wirelength_um.to_bits(),
            par.stats.total_wirelength_um.to_bits(),
            "{name}: wirelength differs across thread counts"
        );
    }
}
