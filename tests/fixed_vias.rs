//! Integration tests for pre-assigned (fixed) vias `V_p`.

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{parse_package, write_package, DesignRules, NetId, PackageBuilder, WireLayer};
use info_rdl::{InfoRouter, RouterConfig};

fn package_with_fixed_via() -> info_rdl::model::Package {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let io = b.add_io_pad(chip, Point::new(330_000, 300_000)).unwrap();
    let bump = b.add_bump_pad(Point::new(800_000, 300_000)).unwrap();
    let net = b.add_net(io, bump).unwrap();
    // The designer mandates a layer change at x = 500 µm.
    b.add_fixed_via(net, Point::new(500_000, 300_000), WireLayer(0), WireLayer(1)).unwrap();
    b.build().unwrap()
}

#[test]
fn fixed_vias_seed_the_layout() {
    let pkg = package_with_fixed_via();
    let layout = info_rdl::model::Layout::new(&pkg);
    let vias: Vec<_> = layout.vias().collect();
    assert_eq!(vias.len(), 1);
    assert!(vias[0].fixed);
    assert_eq!(vias[0].center, Point::new(500_000, 300_000));
    assert_eq!(vias[0].net, NetId(0));
}

#[test]
fn router_keeps_fixed_vias_in_place() {
    let pkg = package_with_fixed_via();
    let out = InfoRouter::new(RouterConfig::default().with_global_cells(12)).route(&pkg);
    assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    // The mandated via is still exactly where the input put it.
    let fixed: Vec<_> = out.layout.vias().filter(|v| v.fixed).collect();
    assert_eq!(fixed.len(), 1);
    assert_eq!(fixed[0].center, Point::new(500_000, 300_000));
}

#[test]
fn fixed_vias_roundtrip_through_netlist() {
    let pkg = package_with_fixed_via();
    let text = write_package(&pkg);
    assert!(text.contains("fixedvia 0 500000 300000 0 1"), "{text}");
    let back = parse_package(&text).unwrap();
    assert_eq!(back.pre_vias().len(), 1);
    assert_eq!(back.pre_vias()[0].center, Point::new(500_000, 300_000));
    assert_eq!(write_package(&back), text);
}

#[test]
fn builder_rejects_bad_fixed_vias() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(100_000, 100_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(10_000, 10_000), Point::new(60_000, 60_000)));
    let io = b.add_io_pad(chip, Point::new(30_000, 30_000)).unwrap();
    let g = b.add_bump_pad(Point::new(80_000, 80_000)).unwrap();
    let net = b.add_net(io, g).unwrap();
    // Unknown net.
    assert!(b.add_fixed_via(NetId(9), Point::new(50_000, 50_000), WireLayer(0), WireLayer(1)).is_err());
    // Inverted span.
    assert!(b.add_fixed_via(net, Point::new(50_000, 50_000), WireLayer(1), WireLayer(1)).is_err());
    // Outside the die.
    assert!(b
        .add_fixed_via(net, Point::new(500_000, 50_000), WireLayer(0), WireLayer(1))
        .is_err());
    // A valid one.
    assert!(b.add_fixed_via(net, Point::new(70_000, 70_000), WireLayer(0), WireLayer(1)).is_ok());
}
