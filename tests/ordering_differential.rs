//! Differential tests of the feature-driven net ordering the negotiated
//! front uses (`info_router::ordering`, DESIGN.md §4h) against the legacy
//! shortest-first order.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::{Layout, NetId, Package};
use info_rdl::router::ordering::{feature_order, net_features};
use info_rdl::router::sequential::space_config;
use info_rdl::tile::RoutingSpace;
use info_rdl::{InfoRouter, RouterConfig};
use std::collections::BTreeMap;

/// The same six pinned circuits as `golden_layouts.rs`.
fn circuits() -> Vec<(&'static str, Package)> {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    vec![
        ("g1_two_chip", mk(1, 12, 30, 7)),
        ("g2_two_chip_alt_seed", mk(1, 16, 40, 11)),
        ("g3_three_chip", mk(2, 16, 48, 23)),
        ("g4_three_chip_dense", mk(2, 20, 56, 31)),
        ("g5_six_chip", mk(3, 20, 40, 41)),
        ("g6_six_chip_dense", mk(3, 24, 48, 53)),
    ]
}

fn stage_space(pkg: &Package, cfg: &RouterConfig) -> RoutingSpace {
    RoutingSpace::build(pkg, &Layout::new(pkg), space_config(pkg, cfg))
}

fn all_nets(pkg: &Package) -> Vec<NetId> {
    pkg.nets().iter().map(|n| n.id).collect()
}

/// The order is a pure function of (package, space, failure records):
/// recomputing it, or permuting the input net list, changes nothing.
#[test]
fn feature_order_is_deterministic_and_permutation_invariant() {
    for (name, pkg) in circuits() {
        let cfg = RouterConfig::default().with_global_cells(14);
        let space = stage_space(&pkg, &cfg);
        let nets = all_nets(&pkg);
        let mut reversed = nets.clone();
        reversed.reverse();
        let fails = BTreeMap::new();
        let a = feature_order(&pkg, &space, &nets, &fails);
        let b = feature_order(&pkg, &space, &nets, &fails);
        let c = feature_order(&pkg, &space, &reversed, &fails);
        assert_eq!(a, b, "{name}: feature order must be deterministic");
        assert_eq!(a, c, "{name}: feature order must not depend on input permutation");
    }
}

/// The features read only the package, the stage-start space, and the
/// authoritative failure map — none of which vary with the worker thread
/// count — so two configs differing only in `threads` see identical
/// features and identical orders.
#[test]
fn ordering_features_are_thread_invariant() {
    for (name, pkg) in circuits() {
        let one = RouterConfig::default().with_global_cells(14).with_threads(1);
        let four = RouterConfig::default().with_global_cells(14).with_threads(4);
        let (s1, s4) = (stage_space(&pkg, &one), stage_space(&pkg, &four));
        let nets = all_nets(&pkg);
        let mut fails = BTreeMap::new();
        fails.insert(nets[0], 250_000u64);
        let f1 = net_features(&pkg, &s1, &nets, &fails);
        let f4 = net_features(&pkg, &s4, &nets, &fails);
        assert_eq!(f1, f4, "{name}: features differ with the thread count");
        assert_eq!(
            feature_order(&pkg, &s1, &nets, &fails),
            feature_order(&pkg, &s4, &nets, &fails),
            "{name}: order differs with the thread count"
        );
    }
}

/// Recording a failure for a net can only move it *earlier*: its score
/// strictly rises while every other net's stays put (their detour terms
/// are zero with or without the record).
#[test]
fn a_failure_record_never_demotes_a_net() {
    for (name, pkg) in circuits() {
        let cfg = RouterConfig::default().with_global_cells(14);
        let space = stage_space(&pkg, &cfg);
        let nets = all_nets(&pkg);
        let base = feature_order(&pkg, &space, &nets, &BTreeMap::new());
        for &probe in &nets {
            let mut fails = BTreeMap::new();
            fails.insert(probe, 500_000u64);
            let with = feature_order(&pkg, &space, &nets, &fails);
            let pos = |order: &[NetId]| order.iter().position(|&n| n == probe).expect("present");
            assert!(
                pos(&with) <= pos(&base),
                "{name}: failure record demoted {probe:?} from {} to {}",
                pos(&base),
                pos(&with)
            );
        }
    }
}

/// End-to-end differential on the two densest goldens: the negotiated
/// front (feature-ordered) never routes fewer nets than the legacy
/// shortest-first + rip-up path.
#[test]
fn feature_order_never_drops_routability() {
    for (name, pkg) in circuits().into_iter().filter(|(n, _)| *n == "g4_three_chip_dense" || *n == "g6_six_chip_dense") {
        let legacy = InfoRouter::new(RouterConfig::default().with_global_cells(14)).route(&pkg);
        let neg = InfoRouter::new(
            RouterConfig::default().with_global_cells(14).with_congestion_mode(),
        )
        .route(&pkg);
        assert!(
            neg.stats.routed_nets >= legacy.stats.routed_nets,
            "{name}: negotiated {} routed vs legacy {}",
            neg.stats.routed_nets,
            legacy.stats.routed_nets
        );
    }
}
