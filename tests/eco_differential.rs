//! Full-vs-ECO differential suite (DESIGN.md §4i).
//!
//! For **every** single-net deletion on each golden circuit this suite
//! routes the edited design twice — once from scratch through the full
//! five-stage flow, once as a delta via `InfoRouter::reroute_delta` —
//! and requires the two to agree:
//!
//! - ECO layouts are geometrically clean: zero DRC violations other than
//!   the `Disconnected` reports that exactly mirror unrouted nets (a
//!   failed net *is* a disconnected net — golden g4 ships one — so
//!   "zero violations" can only mean no spacing/crossing/geometry
//!   violations and no disconnect beyond the declared failures);
//! - per-net routed status never *loses* to the full route: whenever the
//!   from-scratch route of the edited design is itself geometrically
//!   clean, every net it routes must also route under the ECO — except a
//!   net the prior outcome had already failed and whose corridor the
//!   edit never dirtied (the ECO deliberately does not retry failures
//!   the edit cannot have helped). The converse — the ECO routing a net
//!   the full flow fails — is allowed and observed (g4/del5, g6/del2):
//!   reuse preserves prior successes that a from-scratch negotiation
//!   re-loses. Exact status equality is *not* a property any
//!   runtime-bounded incremental method can hold: the full flow's global
//!   stages (partitioning, weighted-MPSC layer assignment, negotiated
//!   rip-up) are path-dependent across an edit, and we measured its
//!   result landing both ~15% longer (g1/del0) and ~35% shorter
//!   (g5/del1) than the reuse ideal on the same golden suite;
//! - wirelength within 1% of the reuse ideal: over the nets routed in
//!   both the prior and the ECO, the ECO's wirelength must stay within
//!   1% of those nets' prior wirelength — deleting a net must never
//!   degrade the geometry it keeps (path-dependence above makes the
//!   from-scratch total the wrong yardstick in *both* directions, so
//!   the bound anchors on the prior instead);
//! - an ECO that re-adds the deleted pad pair returns to the original
//!   canonical hash or (net ids are renumbered by the delete, so the
//!   hash is allowed to move) a DRC-legal layout in which the restored
//!   net routes and every other net keeps its status.
//!
//! The deletions against one circuit share a warm-space cache keyed on
//! the *prior* layout, so the suite also locks the "one build, N-1 warm
//! hits" contract the `eco_sweep` bench depends on.

use info_rdl::model::Package;
use info_rdl::{EcoChangeSet, InfoRouter, NetStatus, RouteOutcome, RouterConfig, WarmSpaceCache};
use std::collections::BTreeMap;
use std::sync::Arc;

mod circuits;

fn cfg() -> RouterConfig {
    RouterConfig::default().with_global_cells(14)
}

fn full_route(pkg: &Package) -> RouteOutcome {
    InfoRouter::new(cfg()).route(pkg)
}

fn status_map(out: &RouteOutcome) -> BTreeMap<usize, NetStatus> {
    out.net_status
        .iter()
        .map(|&(id, st)| (id.index(), st))
        .collect()
}

/// Geometrically clean: every violation is a `Disconnected` on a net the
/// outcome itself declares unrouted. Failed nets are answers, not
/// illegalities; anything else (spacing, crossing, geometry, or a
/// disconnect on a net claimed routed) is a real violation.
fn geom_clean(out: &RouteOutcome) -> bool {
    use info_rdl::model::drc::Violation;
    let unrouted: std::collections::BTreeSet<usize> = out
        .net_status
        .iter()
        .filter(|(_, st)| *st != NetStatus::Routed)
        .map(|(id, _)| id.index())
        .collect();
    out.drc
        .violations()
        .iter()
        .all(|v| matches!(v, Violation::Disconnected { net } if unrouted.contains(&net.index())))
}

fn routed_count(out: &RouteOutcome) -> usize {
    out.net_status
        .iter()
        .filter(|(_, st)| *st == NetStatus::Routed)
        .count()
}

/// Deletes every net of `pkg` in turn; checks ECO against full-route on
/// the edited design, then restores the pair and checks the round trip.
fn differential_all_deletions(name: &str, pkg: &Package) {
    let prior = full_route(pkg);
    assert!(
        geom_clean(&prior),
        "{name}: prior route has geometric DRC violations"
    );

    let cache = Arc::new(WarmSpaceCache::new(4));
    let router = InfoRouter::new(cfg()).with_warm_cache(Arc::clone(&cache));
    // Set once some deletion has actually consulted the routing space
    // (and thereby installed the shared warm entry for this prior).
    let mut space_primed = false;
    for (k, net) in pkg.nets().iter().enumerate() {
        let changes = EcoChangeSet::new().remove_net(net.id);
        let plan = changes.plan(pkg).expect("valid single-net deletion");
        let eco = router
            .reroute_delta(pkg, &prior, &changes)
            .unwrap_or_else(|e| panic!("{name}/del{k}: reroute_delta failed: {e:?}"));
        let full = full_route(&plan.package);

        // Legality: the ECO must be geometrically clean, unconditionally.
        assert!(
            geom_clean(&eco),
            "{name}/del{k}: ECO layout has geometric DRC violations: {:?}",
            eco.drc.violations()
        );

        // Edited-design net id -> base-design net id (the delete
        // renumbers everything above the deleted index down by one).
        let base_id = |d: usize| if d >= net.id.index() { d + 1 } else { d };
        let eco_status = status_map(&eco);
        let prior_status = status_map(&prior);
        if geom_clean(&full) {
            // Status must never lose to the full route (see module docs):
            // a net full routes but the ECO fails is a bug unless the
            // prior had already failed it (untouched failures are not
            // retried).
            for (d, fst) in status_map(&full) {
                if fst == NetStatus::Routed && eco_status[&d] != NetStatus::Routed {
                    assert_eq!(
                        prior_status[&base_id(d)],
                        NetStatus::Failed,
                        "{name}/del{k}: ECO lost net {d}, which the full route \
                         routes and the prior had routed"
                    );
                }
            }
        } else {
            // The from-scratch flow left real violations on this edited
            // design; the ECO (clean by the assert above) must still be
            // at least as complete.
            assert!(
                routed_count(&eco) >= routed_count(&full),
                "{name}/del{k}: ECO routes fewer nets than a violating full route"
            );
        }
        // Wirelength within 1% of the reuse ideal: nets routed in both
        // prior and ECO must keep (or beat) their prior geometry.
        let (mut ideal, mut got) = (0.0f64, 0.0f64);
        for (&d, &st) in &eco_status {
            let b = base_id(d);
            if st == NetStatus::Routed && prior_status[&b] == NetStatus::Routed {
                ideal += prior
                    .layout
                    .net_wirelength(info_rdl::model::NetId::from_index(b));
                got += eco
                    .layout
                    .net_wirelength(info_rdl::model::NetId::from_index(d));
            }
        }
        assert!(
            got <= 1.01 * ideal + 1e-6,
            "{name}/del{k}: ECO wirelength {got:.1}µm over kept nets is >1% worse \
             than their prior {ideal:.1}µm"
        );

        // Warm-space contract. A deletion that re-routes nothing — the
        // common case — must not touch the routing space at all (no warm
        // clone, no dirty rebuild: the edit is pure layout bookkeeping).
        // A deletion that does re-route must patch the warm base via the
        // dirty rebuild, never rebuild from scratch, and once one such
        // deletion has primed the shared cache every later one starts
        // from a warm hit.
        let stats = eco.eco.as_ref().expect("ECO outcome carries EcoStats");
        if stats.nets_rerouted == 0 {
            assert!(
                !stats.space_dirty_rebuild && !stats.space_warm_hit,
                "{name}/del{k}: no-re-route deletion must skip the space entirely"
            );
        } else {
            assert!(
                stats.space_dirty_rebuild,
                "{name}/del{k}: deletion must patch, not rebuild"
            );
            if space_primed {
                assert!(
                    stats.space_warm_hit,
                    "{name}/del{k}: expected warm space hit"
                );
            }
            space_primed = true;
        }

        // Restore: re-add the deleted pad pair on top of the ECO result.
        let restore = EcoChangeSet::new().add_net(net.a, net.b);
        let restored = router
            .reroute_delta(&plan.package, &eco, &restore)
            .unwrap_or_else(|e| panic!("{name}/del{k}: restore ECO failed: {e:?}"));
        if restored.layout.canonical_hash() == prior.layout.canonical_hash() {
            continue; // byte-identical round trip
        }
        assert!(
            geom_clean(&restored),
            "{name}/del{k}: restored layout has geometric DRC violations: {:?}",
            restored.drc.violations()
        );
        let restored_status = status_map(&restored);
        let restored_id = plan.package.nets().len(); // appended at the end
                                                     // The deleted net was routed in the prior layout and its corridor
                                                     // was freed by the delete, so the restore must route it again...
        if status_map(&prior)[&net.id.index()] == NetStatus::Routed {
            assert_eq!(
                restored_status[&restored_id],
                NetStatus::Routed,
                "{name}/del{k}: restore failed to re-route the deleted net"
            );
        }
        // ...and every kept net keeps the status it had after the delete.
        for (id, st) in status_map(&eco) {
            assert_eq!(
                restored_status[&id], st,
                "{name}/del{k}: restore changed status of untouched net {id}"
            );
        }
    }
    let (hits, misses) = cache.stats();
    assert!(
        misses <= 1 + pkg.nets().len() as u64,
        "{name}: warm cache missed {misses} times (hits {hits}) — deletions should share one build"
    );
}

#[test]
fn eco_differential_g1_two_chip() {
    let (name, pkg) = circuits::golden(0);
    differential_all_deletions(name, &pkg);
}

#[test]
fn eco_differential_g2_two_chip_alt_seed() {
    let (name, pkg) = circuits::golden(1);
    differential_all_deletions(name, &pkg);
}

#[test]
fn eco_differential_g3_three_chip() {
    let (name, pkg) = circuits::golden(2);
    differential_all_deletions(name, &pkg);
}

#[test]
fn eco_differential_g4_three_chip_dense() {
    let (name, pkg) = circuits::golden(3);
    differential_all_deletions(name, &pkg);
}

#[test]
fn eco_differential_g5_six_chip() {
    let (name, pkg) = circuits::golden(4);
    differential_all_deletions(name, &pkg);
}

#[test]
fn eco_differential_g6_six_chip_dense() {
    let (name, pkg) = circuits::golden(5);
    differential_all_deletions(name, &pkg);
}
