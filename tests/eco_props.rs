//! Property tests of the incremental ECO engine (DESIGN.md §4i):
//! random add/remove/re-pair sequences stay DRC-legal, change-set
//! application is insensitive to the order edits were recorded in, and
//! the empty change set is a byte-identical no-op.
//!
//! No proptest dependency in this workspace — cases are generated from a
//! seeded LCG, so every run explores the same inputs and failures
//! reproduce by seed.

use info_rdl::model::{drc, NetId, Package, PadId};
use info_rdl::{EcoChangeSet, InfoRouter, NetStatus, RouteOutcome, RouterConfig};
use std::collections::BTreeSet;

mod circuits;

fn cfg() -> RouterConfig {
    RouterConfig::default().with_global_cells(14)
}

/// Geometrically legal: no violation beyond `Disconnected` reports on
/// nets the outcome itself declares unrouted.
fn assert_geom_clean(out: &RouteOutcome, what: &str) {
    let unrouted: BTreeSet<usize> = out
        .net_status
        .iter()
        .filter(|(_, st)| *st != NetStatus::Routed)
        .map(|(id, _)| id.index())
        .collect();
    for v in out.drc.violations() {
        assert!(
            matches!(v, drc::Violation::Disconnected { net } if unrouted.contains(&net.index())),
            "{what}: ECO layout must stay DRC-legal: {v}"
        );
    }
}

/// Tiny deterministic PRNG (PCG-ish LCG) — keeps cases reproducible
/// without pulling in a crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Pads not terminating any (kept) net, split io/bump.
fn free_pads(pkg: &Package, removed: &BTreeSet<usize>) -> (Vec<usize>, Vec<usize>) {
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for (i, n) in pkg.nets().iter().enumerate() {
        if !removed.contains(&i) {
            used.insert(n.a.index());
            used.insert(n.b.index());
        }
    }
    let (mut io, mut bump) = (Vec::new(), Vec::new());
    for (i, p) in pkg.pads().iter().enumerate() {
        if !used.contains(&i) {
            if p.is_io() {
                io.push(i);
            } else {
                bump.push(i);
            }
        }
    }
    (io, bump)
}

/// A random valid change set: up to two removals, up to one re-pair, up
/// to two additions, on disjoint nets and free pads.
fn random_changes(pkg: &Package, rng: &mut Lcg) -> EcoChangeSet {
    let nets = pkg.nets().len();
    let mut removed: BTreeSet<usize> = BTreeSet::new();
    let mut changes = EcoChangeSet::new();
    for _ in 0..rng.below(3) {
        let i = rng.below(nets);
        if removed.insert(i) {
            changes = changes.remove_net(NetId::from_index(i));
        }
    }
    let (mut io, mut bump) = free_pads(pkg, &removed);
    if rng.below(2) == 1 && !io.is_empty() && !bump.is_empty() {
        let i = rng.below(nets);
        if !removed.contains(&i) {
            removed.insert(i);
            let a = io.swap_remove(rng.below(io.len()));
            let b = bump.swap_remove(rng.below(bump.len()));
            changes = changes.re_pair(
                NetId::from_index(i),
                PadId::from_index(a),
                PadId::from_index(b),
            );
        }
    }
    for _ in 0..rng.below(3) {
        if io.is_empty() || bump.is_empty() {
            break;
        }
        let a = io.swap_remove(rng.below(io.len()));
        let b = bump.swap_remove(rng.below(bump.len()));
        changes = changes.add_net(PadId::from_index(a), PadId::from_index(b));
    }
    changes
}

/// An empty change set is a byte-identical no-op: same canonical hash,
/// zero nets re-routed, every net reused.
#[test]
fn empty_change_set_is_byte_identical() {
    let (_, pkg) = circuits::golden(0);
    let router = InfoRouter::new(cfg());
    let prior = router.route(&pkg);
    let out = router
        .reroute_delta(&pkg, &prior, &EcoChangeSet::new())
        .expect("empty change set is valid");
    assert_eq!(
        out.layout.canonical_hash(),
        prior.layout.canonical_hash(),
        "empty ECO must reproduce the prior layout byte for byte"
    );
    let stats = out.eco.as_ref().expect("EcoStats");
    assert_eq!(stats.nets_rerouted, 0, "empty ECO must re-route nothing");
    assert_eq!(stats.nets_reused, pkg.nets().len());
    assert_eq!(out.net_status, prior.net_status);
}

/// Random single-step edits on two golden circuits: the ECO layout is
/// always DRC-legal and its bookkeeping adds up.
#[test]
fn random_edits_stay_drc_legal() {
    for (circuit, seeds) in [(0usize, 0u64..6), (2usize, 6u64..10)] {
        let (name, pkg) = circuits::golden(circuit);
        let router = InfoRouter::new(cfg());
        let prior = router.route(&pkg);
        for seed in seeds {
            let mut rng = Lcg(0x9e3779b97f4a7c15 ^ seed.wrapping_mul(0xdeadbeef));
            let changes = random_changes(&pkg, &mut rng);
            let plan = changes.plan(&pkg).expect("generated change sets are valid");
            let out = router
                .reroute_delta(&pkg, &prior, &changes)
                .unwrap_or_else(|e| panic!("{name}/seed{seed}: {e:?}"));
            assert_geom_clean(&out, &format!("{name}/seed{seed}"));
            assert_eq!(
                out.net_status.len(),
                plan.package.nets().len(),
                "{name}/seed{seed}: one status per net of the edited design"
            );
            let stats = out.eco.as_ref().expect("EcoStats");
            assert_eq!(stats.nets_removed, changes.removals().len());
            assert_eq!(stats.nets_added, changes.additions().len());
            assert_eq!(stats.nets_re_paired, changes.re_pairs().len());
            assert_eq!(
                stats.nets_rerouted + stats.nets_reused,
                plan.package.nets().len(),
                "{name}/seed{seed}: every net is either re-routed or reused"
            );
        }
    }
}

/// Random multi-step sequences: each step's edited design becomes the
/// next step's base, staying DRC-legal throughout.
#[test]
fn random_edit_sequences_chain_legally() {
    let (name, pkg) = circuits::golden(0);
    let router = InfoRouter::new(cfg());
    for seed in 0..3u64 {
        let mut rng = Lcg(0xc0ffee ^ seed.wrapping_mul(0x1234567));
        let mut cur_pkg = pkg.clone();
        let mut cur_out = router.route(&cur_pkg);
        for step in 0..3 {
            let changes = random_changes(&cur_pkg, &mut rng);
            let plan = changes.plan(&cur_pkg).expect("valid change set");
            let out = router
                .reroute_delta(&cur_pkg, &cur_out, &changes)
                .unwrap_or_else(|e| panic!("{name}/seed{seed}/step{step}: {e:?}"));
            assert_geom_clean(&out, &format!("{name}/seed{seed}/step{step}"));
            cur_pkg = plan.package;
            cur_out = out;
        }
    }
}

/// Recording order does not matter: the same disjoint edits recorded in
/// two different orders produce byte-identical layouts.
#[test]
fn application_is_order_insensitive_for_disjoint_edits() {
    let (name, pkg) = circuits::golden(0);
    let router = InfoRouter::new(cfg());
    let prior = router.route(&pkg);
    // Goldens use every io pad (nets = io/2, io-io pairing), so the added
    // net pairs an io pad freed by one of the removals with a spare bump
    // pad — valid because plan() applies removals and additions as one
    // canonical set, not sequentially.
    let (n1, n2) = (NetId::from_index(1), NetId::from_index(3));
    let (_, bump) = free_pads(&pkg, &BTreeSet::from([n1.index(), n2.index()]));
    assert!(!bump.is_empty(), "golden circuits have spare bump pads");
    let (a, b) = (pkg.nets()[n1.index()].a, PadId::from_index(bump[0]));

    let forward = EcoChangeSet::new()
        .remove_net(n1)
        .add_net(a, b)
        .remove_net(n2);
    let reversed = EcoChangeSet::new()
        .remove_net(n2)
        .add_net(a, b)
        .remove_net(n1);
    let out_f = router
        .reroute_delta(&pkg, &prior, &forward)
        .expect("forward");
    let out_r = router
        .reroute_delta(&pkg, &prior, &reversed)
        .expect("reversed");
    assert_eq!(
        out_f.layout.canonical_hash(),
        out_r.layout.canonical_hash(),
        "{name}: edit recording order changed the layout"
    );
    assert_eq!(out_f.net_status, out_r.net_status);
    assert_eq!(out_f.eco, out_r.eco);
}

/// Invalid change sets are typed rejections, not panics: unknown ids,
/// double edits, and pad conflicts all come back as `BadInput`.
#[test]
fn invalid_change_sets_are_rejected() {
    use info_rdl::router::RouterError;
    let (_, pkg) = circuits::golden(0);
    let router = InfoRouter::new(cfg());
    let prior = router.route(&pkg);
    let nets = pkg.nets().len();
    // Every io pad is in use on the goldens; spare pads are all bumps.
    let (_, bump) = free_pads(&pkg, &BTreeSet::new());
    assert!(!bump.is_empty(), "golden circuits have spare bump pads");
    let bad_cases: Vec<(&str, EcoChangeSet)> = vec![
        (
            "unknown net",
            EcoChangeSet::new().remove_net(NetId::from_index(nets + 7)),
        ),
        (
            "double removal",
            EcoChangeSet::new()
                .remove_net(NetId::from_index(0))
                .remove_net(NetId::from_index(0)),
        ),
        (
            "removed and re-paired",
            EcoChangeSet::new()
                .remove_net(NetId::from_index(0))
                .re_pair(
                    NetId::from_index(0),
                    pkg.nets()[0].a,
                    PadId::from_index(bump[0]),
                ),
        ),
        (
            "pad already in use",
            EcoChangeSet::new().add_net(pkg.nets()[0].a, PadId::from_index(bump[0])),
        ),
        (
            "self loop",
            EcoChangeSet::new().add_net(PadId::from_index(bump[0]), PadId::from_index(bump[0])),
        ),
    ];
    for (what, changes) in bad_cases {
        match router.reroute_delta(&pkg, &prior, &changes) {
            Err(RouterError::BadInput { .. }) => {}
            other => panic!("{what}: expected BadInput, got {other:?}"),
        }
    }
}
