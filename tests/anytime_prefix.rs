//! Anytime prefix consistency: a budget-truncated run is a *prefix* of
//! the full run, not a different answer. Every net the truncated run
//! managed to route must appear in the full run's layout with
//! byte-identical geometry.
//!
//! The guarantee holds whenever the full run never rips up a committed
//! net (rip-up rewrites history, so a truncated prefix could diverge);
//! the test guards on the full run's `ripup_attempts` counter and skips
//! circuits where rip-up fired.

use info_rdl::generators::{build_dense, dense_spec};
use info_rdl::model::{Layout, NetId, Package};
use info_rdl::router::{Completion, NetStatus};
use info_rdl::tile::CancelToken;
use info_rdl::{InfoRouter, RouterConfig};

/// Golden-suite-style circuits (scaled dense instances, three sizes).
fn circuits() -> Vec<(&'static str, Package)> {
    let mk = |idx: usize, io: usize, bumps: usize, seed: u64| {
        let mut spec = dense_spec(idx);
        spec.io_pads = io;
        spec.nets = io / 2;
        spec.bump_pads = bumps;
        spec.seed = seed;
        build_dense(spec, false)
    };
    vec![
        ("p1_two_chip", mk(1, 12, 30, 7)),
        ("p2_three_chip", mk(2, 16, 48, 23)),
        ("p3_six_chip", mk(3, 20, 40, 41)),
    ]
}

/// Deterministic single-threaded config; LP off (it moves geometry after
/// routing) and concurrent off (the prefix property is a statement about
/// the sequential commit order).
fn cfg() -> RouterConfig {
    RouterConfig::default()
        .with_global_cells(14)
        .with_threads(1)
        .without_concurrent()
        .without_lp()
        .with_telemetry()
}

/// Canonical, id-independent serialization of one net's geometry.
fn net_geometry(layout: &Layout, net: NetId) -> String {
    let mut routes: Vec<String> =
        layout.routes_of(net).map(|r| format!("{:?} {:?}", r.layer, r.path)).collect();
    routes.sort();
    let mut vias: Vec<String> = layout
        .vias_of(net)
        .map(|v| format!("{:?} {:?} {:?} {:?}", v.center, v.width, v.top, v.bottom))
        .collect();
    vias.sort();
    format!("routes[{}] vias[{}]", routes.join(";"), vias.join(";"))
}

#[test]
fn truncated_runs_are_prefixes_of_the_full_run() {
    for (name, pkg) in circuits() {
        let full = InfoRouter::new(cfg()).route(&pkg);
        let ripups = full
            .telemetry
            .as_ref()
            .map(|t| t.counter("ripup_attempts"))
            .unwrap_or(u64::MAX);
        if ripups > 0 {
            // Rip-up rewrites committed geometry; the prefix property is
            // only promised for monotone runs.
            eprintln!("{name}: skipped (full run used {ripups} rip-ups)");
            continue;
        }
        for k in [2u64, 5, 9] {
            let token = CancelToken::new();
            token.trip_after_checks(k);
            let cut = InfoRouter::new(cfg()).with_cancel_token(token).route(&pkg);
            let mut compared = 0;
            for (net, status) in &cut.net_status {
                if *status != NetStatus::Routed {
                    continue;
                }
                assert_eq!(
                    net_geometry(&cut.layout, *net),
                    net_geometry(&full.layout, *net),
                    "{name} k={k}: {net} differs between truncated and full run"
                );
                compared += 1;
            }
            // The truncated run must still be an honest prefix: either it
            // was actually cut short (degraded) or it finished everything
            // the full run did.
            if cut.completion == Completion::Full {
                assert_eq!(
                    cut.layout.canonical_hash(),
                    full.layout.canonical_hash(),
                    "{name} k={k}: an un-truncated run must equal the full run"
                );
            }
            eprintln!("{name} k={k}: {compared} routed nets byte-identical");
        }
    }
}

/// Larger budgets never lose nets: the routed set grows monotonically
/// with the checkpoint budget (anytime behavior, not thrash).
#[test]
fn routed_set_is_monotone_in_the_budget() {
    let (_, pkg) = circuits().swap_remove(0);
    let full = InfoRouter::new(cfg()).route(&pkg);
    let ripups =
        full.telemetry.as_ref().map(|t| t.counter("ripup_attempts")).unwrap_or(u64::MAX);
    if ripups > 0 {
        // Same monotonicity caveat as the prefix test: rip-up may
        // legitimately un-commit a net between two budgets.
        eprintln!("skipped (full run used {ripups} rip-ups)");
        return;
    }
    let mut prev: Option<Vec<NetId>> = None;
    for k in [1u64, 3, 6, 12, 1_000_000] {
        let token = CancelToken::new();
        token.trip_after_checks(k);
        let out = InfoRouter::new(cfg()).with_cancel_token(token).route(&pkg);
        let routed: Vec<NetId> = out
            .net_status
            .iter()
            .filter(|(_, s)| *s == NetStatus::Routed)
            .map(|(n, _)| *n)
            .collect();
        if let Some(prev) = &prev {
            assert!(
                prev.iter().all(|n| routed.contains(n)),
                "k={k}: routed set shrank: {prev:?} -> {routed:?}"
            );
        }
        prev = Some(routed);
    }
}
