//! Thread-scaling determinism suite.
//!
//! The parallel sequential planner's contract is that worker count buys
//! wall-clock only: plans are speculative, commits happen serially in
//! net order, and a plan whose read set was invalidated (or whose worker
//! died) is recomputed through the single-threaded path. This suite pins
//! that contract across the published scaling matrix (1/2/4/8 threads):
//!
//! 1. layout hash **and** route journal are identical at every thread
//!    count, on placid and rip-up-heavy circuits alike;
//! 2. injected `pool.worker` faults — error *and* panic kinds, at
//!    varying trigger offsets — change nothing: a killed speculative
//!    plan is recomputed authoritatively, so the layout and journal
//!    match the fault-free run (this is also the one fault site that
//!    does not force the planner single-threaded);
//! 3. (release CI, env-gated) dense2's scaling matrix is hash-stable.

use info_rdl::generators::{build_dense, dense, dense_spec};
use info_rdl::model::Package;
use info_rdl::router::{FaultDirective, FaultKind, FaultPlan, FaultSite};
use info_rdl::{InfoRouter, RouterConfig, TelemetryReport};

const MATRIX: [usize; 4] = [1, 2, 4, 8];

fn mk(idx: usize, io: usize, bumps: usize, seed: u64) -> Package {
    let mut spec = dense_spec(idx);
    spec.io_pads = io;
    spec.nets = io / 2;
    spec.bump_pads = bumps;
    spec.seed = seed;
    build_dense(spec, false)
}

fn route(pkg: &Package, cells: usize, threads: usize, plan: FaultPlan) -> (u64, TelemetryReport) {
    let cfg = RouterConfig::default()
        .with_global_cells(cells)
        .with_threads(threads)
        .with_fault_plan(plan)
        .with_telemetry();
    let out = InfoRouter::new(cfg).route(pkg);
    (out.layout.canonical_hash(), out.telemetry.expect("telemetry enabled"))
}

/// Contract 1: the full matrix reproduces the single-threaded layout and
/// journal, on a placid circuit and on a congested one that rip-ups.
#[test]
fn matrix_reproduces_single_threaded_layout_and_journal() {
    let circuits =
        [("g4_three_chip_dense", mk(2, 20, 56, 31), 14), ("g3_congested", mk(2, 16, 48, 23), 10)];
    for (name, pkg, cells) in circuits {
        let (base_hash, base_report) = route(&pkg, cells, 1, FaultPlan::none());
        for threads in MATRIX {
            let (hash, report) = route(&pkg, cells, threads, FaultPlan::none());
            assert_eq!(hash, base_hash, "{name}: layout diverged at {threads} threads");
            assert_eq!(
                report.journal, base_report.journal,
                "{name}: journal diverged at {threads} threads"
            );
        }
    }
}

/// Contract 2: `pool.worker` faults only kill speculative plans, which
/// are recomputed authoritatively — layout and journal must match the
/// fault-free run at every thread count, for both fault kinds and for
/// trigger offsets that land mid-stage. (Which worker eats the k-th
/// trigger is scheduling-dependent, which is exactly why the site must
/// be absorbed rather than replayed.)
#[test]
fn pool_worker_faults_change_nothing() {
    let pkg = mk(2, 16, 48, 23);
    let cells = 10;
    let (base_hash, base_report) = route(&pkg, cells, 1, FaultPlan::none());
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for (skip, fires) in [(0, 1), (2, 3)] {
            let plan = FaultPlan::none().with(FaultDirective {
                site: FaultSite::PoolWorker,
                kind,
                skip,
                fires,
            });
            for threads in MATRIX {
                let (hash, report) = route(&pkg, cells, threads, plan);
                let tag = format!("{kind:?} skip={skip} fires={fires} threads={threads}");
                assert_eq!(hash, base_hash, "layout diverged under pool.worker fault ({tag})");
                assert_eq!(
                    report.journal, base_report.journal,
                    "journal diverged under pool.worker fault ({tag})"
                );
            }
        }
    }
}

/// A `pool.worker`-only plan must not force the planner single-threaded:
/// the speculative path still runs (commits + conflicts account for
/// every attempted net) even while the fault plan is armed.
#[test]
fn pool_worker_plan_keeps_the_speculative_path() {
    let pkg = mk(2, 20, 56, 31);
    let plan = FaultPlan::single(FaultSite::PoolWorker);
    let (_, report) = route(&pkg, 14, 4, plan);
    let spec = report.counter("speculative_commits") + report.counter("speculative_conflicts");
    assert!(spec > 0, "speculative planner did not run under a pool.worker-only fault plan");
}

/// Contract 3, full-size: dense2 across the matrix (the circuit the CI
/// scaling gate times). Minutes of routing, so it only runs when asked:
/// `RDL_SCALING_TEST=1 cargo test --release -- dense2_matrix`.
#[test]
fn dense2_matrix_is_hash_stable() {
    if std::env::var("RDL_SCALING_TEST").map_or(true, |v| v.is_empty() || v == "0") {
        eprintln!("skipping dense2 scaling matrix (set RDL_SCALING_TEST=1 to run)");
        return;
    }
    let pkg = dense(2);
    let mut hashes = Vec::new();
    for threads in MATRIX {
        let cfg = RouterConfig::default().with_threads(threads);
        hashes.push((threads, InfoRouter::new(cfg).route(&pkg).layout.canonical_hash()));
    }
    let (_, want) = hashes[0];
    for (threads, hash) in hashes {
        assert_eq!(hash, want, "dense2 layout diverged at {threads} threads");
    }
}
