//! Deeper DRC scenarios: stacked vias, three-layer chains, via-via
//! spacing, netless-pad blockage semantics.

use info_geom::{Point, Polyline, Rect};
use info_model::{
    drc, DesignRules, Layout, NetId, PackageBuilder, WireLayer,
};

fn pl(pts: &[(i64, i64)]) -> Polyline {
    Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
}

fn three_layer_package() -> (info_model::Package, NetId) {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        3,
    );
    let chip = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let io = b.add_io_pad(chip, Point::new(330_000, 300_000)).unwrap();
    let bump = b.add_bump_pad(Point::new(800_000, 300_000)).unwrap();
    let net = b.add_net(io, bump).unwrap();
    (b.build().unwrap(), net)
}

#[test]
fn stacked_via_connects_through_three_layers() {
    let (pkg, net) = three_layer_package();
    let mut l = Layout::new(&pkg);
    // Wire on top to x = 500k, stacked via 0..2, nothing on layer 1.
    l.add_route(net, WireLayer(0), pl(&[(330_000, 300_000), (500_000, 300_000)]));
    l.add_via(net, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(2), false);
    l.add_route(net, WireLayer(2), pl(&[(500_000, 300_000), (800_000, 300_000)]));
    assert!(drc::is_connected(&pkg, &l, net));
    assert!(drc::check(&pkg, &l).is_clean());
}

#[test]
fn chain_of_single_layer_vias_also_connects() {
    let (pkg, net) = three_layer_package();
    let mut l = Layout::new(&pkg);
    l.add_route(net, WireLayer(0), pl(&[(330_000, 300_000), (500_000, 300_000)]));
    l.add_via(net, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    l.add_route(net, WireLayer(1), pl(&[(500_000, 300_000), (650_000, 300_000)]));
    l.add_via(net, Point::new(650_000, 300_000), 5_000, WireLayer(1), WireLayer(2), false);
    l.add_route(net, WireLayer(2), pl(&[(650_000, 300_000), (800_000, 300_000)]));
    assert!(drc::is_connected(&pkg, &l, net));
    assert!(drc::check(&pkg, &l).is_clean());
}

#[test]
fn disjoint_via_spans_do_not_connect() {
    let (pkg, net) = three_layer_package();
    let mut l = Layout::new(&pkg);
    l.add_route(net, WireLayer(0), pl(&[(330_000, 300_000), (500_000, 300_000)]));
    // Via 0..1 at x=500k, then via 1..2 at a DIFFERENT x with no layer-1
    // wire between them: broken chain.
    l.add_via(net, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    l.add_via(net, Point::new(650_000, 300_000), 5_000, WireLayer(1), WireLayer(2), false);
    l.add_route(net, WireLayer(2), pl(&[(650_000, 300_000), (800_000, 300_000)]));
    assert!(!drc::is_connected(&pkg, &l, net));
}

#[test]
fn overlapping_via_spans_connect_without_wire() {
    let (pkg, net) = three_layer_package();
    let mut l = Layout::new(&pkg);
    l.add_route(net, WireLayer(0), pl(&[(330_000, 300_000), (500_000, 300_000)]));
    // Two vias whose octagons overlap and whose spans share layer 1.
    l.add_via(net, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    l.add_via(net, Point::new(502_000, 300_000), 5_000, WireLayer(1), WireLayer(2), false);
    l.add_route(net, WireLayer(2), pl(&[(502_000, 300_000), (800_000, 300_000)]));
    assert!(drc::is_connected(&pkg, &l, net));
}

#[test]
fn via_via_spacing_between_nets() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let a1 = b.add_io_pad(chip, Point::new(330_000, 250_000)).unwrap();
    let g1 = b.add_bump_pad(Point::new(800_000, 250_000)).unwrap();
    let a2 = b.add_io_pad(chip, Point::new(330_000, 350_000)).unwrap();
    let g2 = b.add_bump_pad(Point::new(800_000, 350_000)).unwrap();
    let n1 = b.add_net(a1, g1).unwrap();
    let n2 = b.add_net(a2, g2).unwrap();
    let pkg = b.build().unwrap();

    // Vias 5 µm wide, 2 µm spacing rule: centers 6 µm apart violate
    // (edge gap 1 µm); centers 8 µm apart are legal (gap 3 µm).
    let mut tight = Layout::new(&pkg);
    tight.add_via(n1, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    tight.add_via(n2, Point::new(506_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    let rep = drc::check(&pkg, &tight);
    assert!(
        rep.violations().iter().any(|v| matches!(v, drc::Violation::Spacing { .. })),
        "{:#?}",
        rep.violations()
    );

    let mut ok = Layout::new(&pkg);
    ok.add_via(n1, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    ok.add_via(n2, Point::new(508_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    let rep = drc::check(&pkg, &ok);
    assert!(
        !rep.violations().iter().any(|v| matches!(v, drc::Violation::Spacing { .. })),
        "{:#?}",
        rep.violations()
    );
}

#[test]
fn vias_on_disjoint_layers_do_not_interact() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        4,
    );
    let chip = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let a1 = b.add_io_pad(chip, Point::new(330_000, 250_000)).unwrap();
    let g1 = b.add_bump_pad(Point::new(800_000, 250_000)).unwrap();
    let a2 = b.add_io_pad(chip, Point::new(330_000, 350_000)).unwrap();
    let g2 = b.add_bump_pad(Point::new(800_000, 350_000)).unwrap();
    let n1 = b.add_net(a1, g1).unwrap();
    let n2 = b.add_net(a2, g2).unwrap();
    let pkg = b.build().unwrap();
    // Same x/y position, but spans 0..1 and 2..3: no shared layer.
    let mut l = Layout::new(&pkg);
    l.add_via(n1, Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
    l.add_via(n2, Point::new(500_000, 300_000), 5_000, WireLayer(2), WireLayer(3), false);
    let rep = drc::check(&pkg, &l);
    assert!(
        !rep.violations().iter().any(|v| matches!(v, drc::Violation::Spacing { .. })),
        "{:#?}",
        rep.violations()
    );
}

#[test]
fn unconnected_pads_block_foreign_wires() {
    // A pad with no net still demands spacing from nets' wires (it is
    // input blockage), while two netless items ignore each other.
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
        DesignRules::default(),
        1,
    );
    let chip = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
    let a1 = b.add_io_pad(chip, Point::new(330_000, 250_000)).unwrap();
    let a2 = b.add_io_pad(chip, Point::new(330_000, 350_000)).unwrap();
    let _unused = b.add_io_pad(chip, Point::new(200_000, 300_000)).unwrap();
    let net = b.add_net(a1, a2).unwrap();
    let pkg = b.build().unwrap();
    let mut l = Layout::new(&pkg);
    // Wire passing within 1 µm of the unused pad's edge.
    l.add_route(
        net,
        WireLayer(0),
        pl(&[(330_000, 250_000), (250_000, 250_000), (205_000, 295_000)]),
    );
    let rep = drc::check(&pkg, &l);
    assert!(
        rep.violations().iter().any(|v| matches!(v, drc::Violation::Spacing { .. })),
        "{:#?}",
        rep.violations()
    );
}
