//! Design rules (§II-B of the paper).

use info_geom::Coord;
use serde::{Deserialize, Serialize};

/// The three numeric design rules of the RDL process, in nanometers.
///
/// - **Minimum spacing** between any two components of different nets on
///   the same wire layer.
/// - **Wire width** of every metal segment.
/// - **Via width**: the bounding-box width of the regular-octagon via.
///
/// The structural rules (X-architecture orientations, the non-crossing
/// constraint, and the 90°/135°-only turn rule) are enforced by
/// [`crate::drc`] and by construction in the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignRules {
    /// Minimum spacing `s` between components of different nets.
    pub min_spacing: Coord,
    /// Wire width `s_w`.
    pub wire_width: Coord,
    /// Via width `s_v` (bounding box of the octagonal via).
    pub via_width: Coord,
}

impl DesignRules {
    /// Typical InFO-class rules: 2 µm spacing, 2 µm wires, 5 µm vias.
    pub const fn info_defaults() -> Self {
        DesignRules { min_spacing: 2_000, wire_width: 2_000, via_width: 5_000 }
    }

    /// Center-to-center clearance required between two wires of different
    /// nets: `s + s_w` (half-width on each side plus the spacing).
    #[inline]
    pub fn wire_clearance(&self) -> Coord {
        self.min_spacing + self.wire_width
    }

    /// Edge-to-edge clearance required between shapes of different nets.
    #[inline]
    pub fn spacing(&self) -> Coord {
        self.min_spacing
    }

    /// Whether all rule values are positive, as required.
    pub fn is_valid(&self) -> bool {
        self.min_spacing > 0 && self.wire_width > 0 && self.via_width > 0
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        Self::info_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let r = DesignRules::default();
        assert!(r.is_valid());
        assert_eq!(r.wire_clearance(), 4_000);
    }

    #[test]
    fn zero_rules_invalid() {
        let r = DesignRules { min_spacing: 0, wire_width: 1, via_width: 1 };
        assert!(!r.is_valid());
    }
}
