//! The aggregate routing state of a package.

use crate::ids::{NetId, RouteId, ViaId, WireLayer};
use crate::package::Package;
use crate::route::{Route, Via};
use info_geom::{Coord, Point, Polyline};
use serde::{Deserialize, Serialize};

/// All routes and vias produced for a package so far.
///
/// Routes and vias are stored in slot arrays so nets can be ripped up
/// (e.g. when sequential routing revisits a decision) without invalidating
/// the ids of unrelated objects.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Layout {
    wire_layer_count: usize,
    routes: Vec<Option<Route>>,
    vias: Vec<Option<Via>>,
}

impl Layout {
    /// A layout for the given package, pre-seeded with the package's
    /// fixed vias (`V_p`) so every router starts from the same mandated
    /// geometry.
    pub fn new(package: &Package) -> Self {
        let mut layout = Layout {
            wire_layer_count: package.wire_layer_count(),
            routes: Vec::new(),
            vias: Vec::new(),
        };
        for v in package.pre_vias() {
            layout.add_via(v.net, v.center, package.rules().via_width, v.top, v.bottom, true);
        }
        layout
    }

    /// An empty layout with an explicit wire layer count (for tests).
    pub fn with_layer_count(wire_layer_count: usize) -> Self {
        Layout { wire_layer_count, routes: Vec::new(), vias: Vec::new() }
    }

    /// Number of wire layers.
    pub fn wire_layer_count(&self) -> usize {
        self.wire_layer_count
    }

    /// Adds a planar route for a net.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn add_route(&mut self, net: NetId, layer: WireLayer, path: Polyline) -> RouteId {
        assert!(layer.index() < self.wire_layer_count, "layer {layer} out of range");
        let id = RouteId::from_index(self.routes.len());
        self.routes.push(Some(Route { id, net, layer, path }));
        id
    }

    /// Adds a via for a net spanning wire layers `top..=bottom`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of range or inverted.
    pub fn add_via(
        &mut self,
        net: NetId,
        center: Point,
        width: Coord,
        top: WireLayer,
        bottom: WireLayer,
        fixed: bool,
    ) -> ViaId {
        assert!(top < bottom, "via span must be strictly downward");
        assert!(bottom.index() < self.wire_layer_count, "via bottom out of range");
        let id = ViaId::from_index(self.vias.len());
        self.vias.push(Some(Via { id, net, center, width, top, bottom, fixed }));
        id
    }

    /// Iterates over live routes.
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().flatten()
    }

    /// Iterates over live vias.
    pub fn vias(&self) -> impl Iterator<Item = &Via> {
        self.vias.iter().flatten()
    }

    /// Mutable iteration over live routes (the LP optimizer moves joints).
    pub fn routes_mut(&mut self) -> impl Iterator<Item = &mut Route> {
        self.routes.iter_mut().flatten()
    }

    /// Mutable iteration over live vias.
    pub fn vias_mut(&mut self) -> impl Iterator<Item = &mut Via> {
        self.vias.iter_mut().flatten()
    }

    /// Route lookup (`None` if ripped up).
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.get(id.index()).and_then(Option::as_ref)
    }

    /// Via lookup (`None` if ripped up).
    pub fn via(&self, id: ViaId) -> Option<&Via> {
        self.vias.get(id.index()).and_then(Option::as_ref)
    }

    /// Routes on a given wire layer.
    pub fn routes_on(&self, layer: WireLayer) -> impl Iterator<Item = &Route> {
        self.routes().filter(move |r| r.layer == layer)
    }

    /// Vias whose span touches a given wire layer.
    pub fn vias_on(&self, layer: WireLayer) -> impl Iterator<Item = &Via> {
        self.vias().filter(move |v| v.spans(layer))
    }

    /// Routes belonging to a net.
    pub fn routes_of(&self, net: NetId) -> impl Iterator<Item = &Route> {
        self.routes().filter(move |r| r.net == net)
    }

    /// Vias belonging to a net.
    pub fn vias_of(&self, net: NetId) -> impl Iterator<Item = &Via> {
        self.vias().filter(move |v| v.net == net)
    }

    /// Whether a net has any routing geometry at all.
    pub fn has_geometry(&self, net: NetId) -> bool {
        self.routes_of(net).next().is_some() || self.vias_of(net).next().is_some()
    }

    /// Removes a single route (e.g. one that layout optimization collapsed
    /// to zero length). No-op if already removed.
    pub fn remove_route(&mut self, id: RouteId) {
        if let Some(slot) = self.routes.get_mut(id.index()) {
            *slot = None;
        }
    }

    /// Removes every route and via of a net (rip-up).
    pub fn remove_net(&mut self, net: NetId) {
        for slot in &mut self.routes {
            if slot.as_ref().is_some_and(|r| r.net == net) {
                *slot = None;
            }
        }
        for slot in &mut self.vias {
            if slot.as_ref().is_some_and(|v| v.net == net) {
                *slot = None;
            }
        }
    }

    /// Total centerline length of a net's routes, in nanometers.
    pub fn net_wirelength(&self, net: NetId) -> f64 {
        self.routes_of(net).map(Route::length).sum()
    }

    /// Total centerline length over the given nets, in nanometers.
    pub fn wirelength_over<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter().map(|n| self.net_wirelength(n)).sum()
    }

    /// Canonical 64-bit hash of all live geometry (FNV-1a over a sorted
    /// serialization of routes and vias).
    ///
    /// Two layouts hash equal iff they contain the same set of
    /// `(net, layer, centerline)` routes and `(net, center, width, span,
    /// fixed)` vias — slot order, rip-up history, and id assignment do not
    /// matter. This is the fingerprint the golden-layout suite pins and the
    /// determinism test compares across `threads` settings.
    pub fn canonical_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mix = |h: &mut u64, v: i64| {
            for b in v.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        };
        type RouteKey = (i64, i64, Vec<(i64, i64)>);
        let mut routes: Vec<RouteKey> = self
            .routes()
            .map(|r| {
                (
                    i64::from(r.net.0),
                    i64::from(r.layer.0),
                    r.path.points().iter().map(|p| (p.x, p.y)).collect(),
                )
            })
            .collect();
        routes.sort();
        let mut vias: Vec<[i64; 7]> = self
            .vias()
            .map(|v| {
                [
                    i64::from(v.net.0),
                    v.center.x,
                    v.center.y,
                    v.width,
                    i64::from(v.top.0),
                    i64::from(v.bottom.0),
                    i64::from(v.fixed),
                ]
            })
            .collect();
        vias.sort();
        let mut h = OFFSET;
        mix(&mut h, routes.len() as i64);
        for (net, layer, pts) in routes {
            mix(&mut h, net);
            mix(&mut h, layer);
            mix(&mut h, pts.len() as i64);
            for (x, y) in pts {
                mix(&mut h, x);
                mix(&mut h, y);
            }
        }
        mix(&mut h, vias.len() as i64);
        for v in vias {
            for c in v {
                mix(&mut h, c);
            }
        }
        h
    }

    /// Count of live vias.
    pub fn via_count(&self) -> usize {
        self.vias().count()
    }

    /// Count of live routes.
    pub fn route_count(&self) -> usize {
        self.routes().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(pts: &[(i64, i64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn add_query_remove() {
        let mut l = Layout::with_layer_count(3);
        let n0 = NetId(0);
        let n1 = NetId(1);
        let r0 = l.add_route(n0, WireLayer(0), pl(&[(0, 0), (10, 0)]));
        l.add_route(n1, WireLayer(0), pl(&[(0, 5), (10, 5)]));
        l.add_via(n0, Point::new(10, 0), 5, WireLayer(0), WireLayer(1), false);
        assert_eq!(l.route_count(), 2);
        assert_eq!(l.via_count(), 1);
        assert_eq!(l.routes_on(WireLayer(0)).count(), 2);
        assert_eq!(l.routes_on(WireLayer(1)).count(), 0);
        assert_eq!(l.vias_on(WireLayer(1)).count(), 1);
        assert_eq!(l.routes_of(n0).count(), 1);
        assert!(l.has_geometry(n0));

        l.remove_net(n0);
        assert!(!l.has_geometry(n0));
        assert!(l.route(r0).is_none());
        assert_eq!(l.route_count(), 1);
        assert_eq!(l.via_count(), 0);
        // Other net untouched.
        assert!(l.has_geometry(n1));
    }

    #[test]
    fn wirelength_accounting() {
        let mut l = Layout::with_layer_count(2);
        let n = NetId(0);
        l.add_route(n, WireLayer(0), pl(&[(0, 0), (3_000, 0)]));
        l.add_route(n, WireLayer(1), pl(&[(0, 0), (0, 4_000)]));
        assert!((l.net_wirelength(n) - 7_000.0).abs() < 1e-9);
        assert!((l.wirelength_over([n]) - 7_000.0).abs() < 1e-9);
        assert_eq!(l.net_wirelength(NetId(9)), 0.0);
    }

    #[test]
    #[should_panic(expected = "layer")]
    fn bad_layer_panics() {
        let mut l = Layout::with_layer_count(1);
        l.add_route(NetId(0), WireLayer(1), pl(&[(0, 0), (1, 0)]));
    }

    #[test]
    #[should_panic(expected = "strictly downward")]
    fn inverted_via_panics() {
        let mut l = Layout::with_layer_count(2);
        l.add_via(NetId(0), Point::new(0, 0), 5, WireLayer(1), WireLayer(1), false);
    }
}
