//! Typed identifiers for package entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a chip in the package.
    ChipId,
    "chip"
);
id_type!(
    /// Identifier of a pad (I/O or bump).
    PadId,
    "pad"
);
id_type!(
    /// Identifier of a pre-assigned net.
    NetId,
    "net"
);
id_type!(
    /// Identifier of a rectangular routing obstacle.
    ObstacleId,
    "obs"
);
id_type!(
    /// Identifier of a via in a layout.
    ViaId,
    "via"
);
id_type!(
    /// Identifier of a planar route in a layout.
    RouteId,
    "route"
);

/// Index of a wire layer: `0` is the **top** RDL (where I/O pads attach)
/// and `count − 1` the **bottom** RDL (where bump pads attach).
///
/// Via layers are implicit: via layer `k` sits between wire layers `k − 1`
/// and `k`, with via layer `0` connecting I/O pads to wire layer `0` and
/// via layer `count` connecting wire layer `count − 1` to the bump pads —
/// hence the paper's `|L_v| = |L_w| + 1` in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WireLayer(pub u8);

impl WireLayer {
    /// The top RDL.
    pub const TOP: WireLayer = WireLayer(0);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The wire layer directly below, if any given `count` layers exist.
    pub fn below(self, count: usize) -> Option<WireLayer> {
        if (self.0 as usize) + 1 < count {
            Some(WireLayer(self.0 + 1))
        } else {
            None
        }
    }

    /// The wire layer directly above, if any.
    pub fn above(self) -> Option<WireLayer> {
        self.0.checked_sub(1).map(WireLayer)
    }
}

impl fmt::Display for WireLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let p = PadId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "pad7");
        assert_eq!(ChipId(3).to_string(), "chip3");
    }

    #[test]
    fn layer_navigation() {
        let top = WireLayer::TOP;
        assert_eq!(top.above(), None);
        assert_eq!(top.below(3), Some(WireLayer(1)));
        assert_eq!(WireLayer(2).below(3), None);
        assert_eq!(WireLayer(2).above(), Some(WireLayer(1)));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId(1) < NetId(2));
        assert!(WireLayer(0) < WireLayer(1));
    }
}
