//! Plain-text benchmark format for packages.
//!
//! A simple line-oriented format so benchmark circuits can be stored,
//! diffed, and shared without external parser dependencies:
//!
//! ```text
//! # comments and blank lines are ignored
//! die 0 0 1000000 1000000
//! rules 2000 2000 5000
//! layers 3
//! chip 50000 100000 300000 400000
//! iopad 0 250000 250000          # iopad <chip-index> <cx> <cy>
//! bumppad 700000 700000
//! obstacle 1 400000 400000 450000 450000
//! net 0 1                        # net <pad-index> <pad-index>
//! ```
//!
//! Entity indices follow insertion order per kind-independent pad
//! numbering (pads share one index space, in file order).

use crate::package::{BuildError, Package, PackageBuilder, PadKind};
use crate::ids::NetId;
use crate::rules::DesignRules;
use crate::ids::{PadId, WireLayer};
use info_geom::{Point, Rect};
use std::fmt;

/// Errors from [`parse_package`].
#[derive(Debug)]
pub enum ParseError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The entities parsed fine but the package failed validation.
    Build(BuildError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Build(e) => write!(f, "package validation failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<BuildError> for ParseError {
    fn from(e: BuildError) -> Self {
        ParseError::Build(e)
    }
}

fn nums(rest: &str, line: usize, expect: usize) -> Result<Vec<i64>, ParseError> {
    let vals: Result<Vec<i64>, _> = rest.split_whitespace().map(str::parse).collect();
    match vals {
        Ok(v) if v.len() == expect => Ok(v),
        Ok(v) => Err(ParseError::Syntax {
            line,
            message: format!("expected {expect} numbers, found {}", v.len()),
        }),
        Err(e) => Err(ParseError::Syntax { line, message: format!("bad number: {e}") }),
    }
}

/// Parses the text format into a validated [`Package`].
///
/// # Errors
///
/// [`ParseError::Syntax`] for malformed lines, [`ParseError::Build`] when
/// the entities do not form a valid package.
pub fn parse_package(text: &str) -> Result<Package, ParseError> {
    let mut die: Option<Rect> = None;
    let mut rules = DesignRules::default();
    let mut layers = 1usize;
    // Collect entities first; the builder needs die/rules up front.
    let mut chips: Vec<Rect> = Vec::new();
    let mut pads: Vec<(Option<usize>, Point)> = Vec::new(); // chip idx (None = bump)
    let mut obstacles: Vec<(usize, Rect)> = Vec::new();
    let mut nets: Vec<(usize, usize)> = Vec::new();
    let mut fixed_vias: Vec<(usize, i64, i64, usize, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (kw, rest) = content.split_once(char::is_whitespace).unwrap_or((content, ""));
        match kw {
            "die" => {
                let v = nums(rest, line, 4)?;
                die = Some(Rect::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])));
            }
            "rules" => {
                let v = nums(rest, line, 3)?;
                rules = DesignRules { min_spacing: v[0], wire_width: v[1], via_width: v[2] };
            }
            "layers" => {
                let v = nums(rest, line, 1)?;
                layers = v[0] as usize;
            }
            "chip" => {
                let v = nums(rest, line, 4)?;
                chips.push(Rect::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])));
            }
            "iopad" => {
                let v = nums(rest, line, 3)?;
                pads.push((Some(v[0] as usize), Point::new(v[1], v[2])));
            }
            "bumppad" => {
                let v = nums(rest, line, 2)?;
                pads.push((None, Point::new(v[0], v[1])));
            }
            "obstacle" => {
                let v = nums(rest, line, 5)?;
                obstacles.push((v[0] as usize, Rect::new(Point::new(v[1], v[2]), Point::new(v[3], v[4]))));
            }
            "net" => {
                let v = nums(rest, line, 2)?;
                nets.push((v[0] as usize, v[1] as usize));
            }
            "fixedvia" => {
                let v = nums(rest, line, 5)?;
                fixed_vias.push((v[0] as usize, v[1], v[2], v[3] as usize, v[4] as usize));
            }
            other => {
                return Err(ParseError::Syntax {
                    line,
                    message: format!("unknown keyword `{other}`"),
                })
            }
        }
    }

    let die = die.ok_or(ParseError::Syntax { line: 0, message: "missing `die` line".into() })?;
    let mut b = PackageBuilder::new(die, rules, layers);
    let chip_ids: Vec<_> = chips.into_iter().map(|r| b.add_chip(r)).collect();
    let mut pad_ids = Vec::with_capacity(pads.len());
    for (chip, center) in pads {
        let id = match chip {
            Some(ci) => {
                let cid = *chip_ids.get(ci).ok_or(ParseError::Syntax {
                    line: 0,
                    message: format!("iopad references unknown chip {ci}"),
                })?;
                b.add_io_pad(cid, center)?
            }
            None => b.add_bump_pad(center)?,
        };
        pad_ids.push(id);
    }
    for (layer, rect) in obstacles {
        b.add_obstacle(WireLayer(layer as u8), rect)?;
    }
    for (a, bx) in nets {
        let pa = *pad_ids.get(a).ok_or(ParseError::Syntax {
            line: 0,
            message: format!("net references unknown pad {a}"),
        })?;
        let pb = *pad_ids.get(bx).ok_or(ParseError::Syntax {
            line: 0,
            message: format!("net references unknown pad {bx}"),
        })?;
        b.add_net(pa, pb)?;
    }
    for (net, x, y, top, bottom) in fixed_vias {
        b.add_fixed_via(
            NetId(net as u32),
            Point::new(x, y),
            WireLayer(top as u8),
            WireLayer(bottom as u8),
        )?;
    }
    Ok(b.build()?)
}

/// Serializes a package into the text format accepted by
/// [`parse_package`].
pub fn write_package(package: &Package) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let die = package.die();
    let _ = writeln!(s, "die {} {} {} {}", die.lo.x, die.lo.y, die.hi.x, die.hi.y);
    let r = package.rules();
    let _ = writeln!(s, "rules {} {} {}", r.min_spacing, r.wire_width, r.via_width);
    let _ = writeln!(s, "layers {}", package.wire_layer_count());
    for c in package.chips() {
        let o = c.outline;
        let _ = writeln!(s, "chip {} {} {} {}", o.lo.x, o.lo.y, o.hi.x, o.hi.y);
    }
    for p in package.pads() {
        match p.kind {
            PadKind::Io { chip } => {
                let _ = writeln!(s, "iopad {} {} {}", chip.index(), p.center.x, p.center.y);
            }
            PadKind::Bump => {
                let _ = writeln!(s, "bumppad {} {}", p.center.x, p.center.y);
            }
        }
    }
    for o in package.obstacles() {
        let r = o.rect;
        let _ = writeln!(s, "obstacle {} {} {} {} {}", o.layer.index(), r.lo.x, r.lo.y, r.hi.x, r.hi.y);
    }
    for n in package.nets() {
        let _ = writeln!(s, "net {} {}", n.a.index(), n.b.index());
    }
    for v in package.pre_vias() {
        let _ = writeln!(
            s,
            "fixedvia {} {} {} {} {}",
            v.net.index(),
            v.center.x,
            v.center.y,
            v.top.index(),
            v.bottom.index()
        );
    }
    s
}

/// Convenience: pad id of the `i`-th pad in file order.
pub fn pad_by_file_order(package: &Package, i: usize) -> Option<PadId> {
    package.pads().get(i).map(|p| p.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a two-chip sample
die 0 0 1000000 500000
rules 2000 2000 5000
layers 2
chip 50000 100000 300000 400000
chip 700000 100000 950000 400000
iopad 0 250000 250000
iopad 1 750000 250000
bumppad 500000 450000
net 0 1
";

    #[test]
    fn parse_sample() {
        let pkg = parse_package(SAMPLE).unwrap();
        assert_eq!(pkg.chips().len(), 2);
        assert_eq!(pkg.io_pad_count(), 2);
        assert_eq!(pkg.bump_pad_count(), 1);
        assert_eq!(pkg.nets().len(), 1);
        assert_eq!(pkg.wire_layer_count(), 2);
    }

    #[test]
    fn roundtrip() {
        let pkg = parse_package(SAMPLE).unwrap();
        let text = write_package(&pkg);
        let pkg2 = parse_package(&text).unwrap();
        assert_eq!(pkg.chips().len(), pkg2.chips().len());
        assert_eq!(pkg.pads().len(), pkg2.pads().len());
        assert_eq!(pkg.nets().len(), pkg2.nets().len());
        assert_eq!(write_package(&pkg2), text);
    }

    #[test]
    fn syntax_errors_reported_with_line() {
        let bad = "die 0 0 100 100\nchip nope\n";
        match parse_package(bad) {
            Err(ParseError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keyword_rejected() {
        assert!(matches!(
            parse_package("die 0 0 10 10\nfrobnicate 1 2\n"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn missing_die_rejected() {
        assert!(parse_package("layers 2\n").is_err());
    }

    #[test]
    fn build_errors_propagate() {
        // I/O pad outside its chip.
        let bad = "die 0 0 1000000 500000\nchip 50000 50000 100000 100000\niopad 0 99000 99000\n";
        assert!(matches!(parse_package(bad), Err(ParseError::Build(_))));
    }
}
