//! The package instance: die, chips, pads, nets, obstacles, layer stack.

use crate::ids::{ChipId, NetId, ObstacleId, PadId, WireLayer};
use crate::rules::DesignRules;
use info_geom::{Coord, Octagon, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A chip placed in the package; its outline is the *fan-in region* of the
/// RDL structure (Fig. 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chip {
    /// Identifier.
    pub id: ChipId,
    /// Chip outline; the shaded fan-in region beneath the chip.
    pub outline: Rect,
}

/// Which family a pad belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PadKind {
    /// A rectangular I/O pad on the top RDL, owned by a chip.
    Io {
        /// The chip the pad belongs to.
        chip: ChipId,
    },
    /// An octagonal bump pad on the bottom RDL (toward the PCB).
    Bump,
}

/// A pad: rectangular I/O pad or octagonal bump pad, at an arbitrary
/// (irregular-structure) position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pad {
    /// Identifier.
    pub id: PadId,
    /// I/O or bump.
    pub kind: PadKind,
    /// Center position.
    pub center: Point,
    /// Width of the bounding box (also the height for bump pads).
    pub width: Coord,
    /// Height of the bounding box (ignored for bump pads, which are
    /// regular octagons of `width`).
    pub height: Coord,
}

impl Pad {
    /// The pad's shape as an octagon (a rectangle for I/O pads).
    pub fn shape(&self) -> Octagon {
        match self.kind {
            PadKind::Io { .. } => Octagon::from_rect(self.bbox()),
            PadKind::Bump => Octagon::regular(self.center, self.width),
        }
    }

    /// Bounding box of the pad.
    pub fn bbox(&self) -> Rect {
        let hw = self.width / 2;
        let hh = match self.kind {
            PadKind::Io { .. } => self.height / 2,
            PadKind::Bump => self.width / 2,
        };
        Rect::new(
            Point::new(self.center.x - hw, self.center.y - hh),
            Point::new(self.center.x + hw, self.center.y + hh),
        )
    }

    /// Whether this is an I/O pad.
    pub fn is_io(&self) -> bool {
        matches!(self.kind, PadKind::Io { .. })
    }

    /// The chip owning this pad, if it is an I/O pad.
    pub fn chip(&self) -> Option<ChipId> {
        match self.kind {
            PadKind::Io { chip } => Some(chip),
            PadKind::Bump => None,
        }
    }
}

/// A pre-assigned net: a pad pair that must be connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Identifier.
    pub id: NetId,
    /// First pad (always an I/O pad).
    pub a: PadId,
    /// Second pad (an I/O pad for inter-chip nets, a bump pad for
    /// chip-to-board nets).
    pub b: PadId,
}

/// A pre-assigned (fixed) via from the problem input — the paper's `V_p`.
///
/// Fixed vias belong to a net (e.g. a pad stack mandated by the package
/// designer) and may not be moved by layout optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreVia {
    /// The owning net.
    pub net: NetId,
    /// Center position.
    pub center: Point,
    /// Topmost wire layer of the span.
    pub top: WireLayer,
    /// Bottommost wire layer of the span.
    pub bottom: WireLayer,
}

/// A rectangular routing obstacle on one wire layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Identifier.
    pub id: ObstacleId,
    /// Wire layer the obstacle blocks.
    pub layer: WireLayer,
    /// Blocked area.
    pub rect: Rect,
}

/// Errors reported while building a [`Package`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Design rules contain non-positive values.
    InvalidRules,
    /// The package needs at least one wire layer.
    NoWireLayers,
    /// A chip outline is not contained in the die.
    ChipOutsideDie(ChipId),
    /// An I/O pad is not inside its owning chip's outline.
    PadOutsideChip(PadId),
    /// A pad is not inside the die.
    PadOutsideDie(PadId),
    /// An obstacle is not inside the die.
    ObstacleOutsideDie(ObstacleId),
    /// An obstacle references a nonexistent wire layer.
    BadObstacleLayer(ObstacleId),
    /// Two same-layer pads violate the minimum spacing rule.
    PadSpacing(PadId, PadId),
    /// A net references an unknown pad.
    UnknownPad(PadId),
    /// A net is malformed (self-loop, bump-to-bump, duplicate terminal use).
    BadNet(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidRules => write!(f, "design rules must be positive"),
            BuildError::NoWireLayers => write!(f, "at least one wire layer is required"),
            BuildError::ChipOutsideDie(c) => write!(f, "{c} extends beyond the die"),
            BuildError::PadOutsideChip(p) => write!(f, "{p} lies outside its chip"),
            BuildError::PadOutsideDie(p) => write!(f, "{p} lies outside the die"),
            BuildError::ObstacleOutsideDie(o) => write!(f, "{o} extends beyond the die"),
            BuildError::BadObstacleLayer(o) => write!(f, "{o} references a bad layer"),
            BuildError::PadSpacing(a, b) => write!(f, "pads {a} and {b} violate min spacing"),
            BuildError::UnknownPad(p) => write!(f, "net references unknown {p}"),
            BuildError::BadNet(msg) => write!(f, "bad net: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// An immutable, validated problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Package {
    die: Rect,
    rules: DesignRules,
    wire_layer_count: usize,
    chips: Vec<Chip>,
    pads: Vec<Pad>,
    nets: Vec<Net>,
    obstacles: Vec<Obstacle>,
    pre_vias: Vec<PreVia>,
}

impl Package {
    /// Derives a package sharing this one's validated floorplan — die,
    /// rules, chips, pads, obstacles — with a replacement net list and
    /// pre-assigned via set. Net edits never move pads, so the
    /// quadratic pad-spacing sweep of [`PackageBuilder::build`] is not
    /// repeated; only the net-level constraints are re-checked (known
    /// pads, no self-loops, no bump-to-bump pairs, disjoint terminals,
    /// valid via spans). This is what makes netlist ECOs cheap on
    /// large pad fields.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownPad`] or [`BuildError::BadNet`], exactly as
    /// [`PackageBuilder::add_net`] / [`PackageBuilder::add_fixed_via`]
    /// would report them.
    pub fn with_nets(
        &self,
        pairs: &[(PadId, PadId)],
        pre_vias: &[(NetId, Point, WireLayer, WireLayer)],
    ) -> Result<Package, BuildError> {
        let mut nets = Vec::with_capacity(pairs.len());
        let mut used = vec![false; self.pads.len()];
        for &(a, b) in pairs {
            for p in [a, b] {
                if p.index() >= self.pads.len() {
                    return Err(BuildError::UnknownPad(p));
                }
            }
            if a == b {
                return Err(BuildError::BadNet(format!("self-loop on {a}")));
            }
            let (pa, pb) = (&self.pads[a.index()], &self.pads[b.index()]);
            if !pa.is_io() && !pb.is_io() {
                return Err(BuildError::BadNet(format!("{a}-{b} connects two bump pads")));
            }
            // Normalize: terminal `a` is always an I/O pad (as add_net does).
            let (a, b) = if pa.is_io() { (a, b) } else { (b, a) };
            for t in [a, b] {
                if used[t.index()] {
                    return Err(BuildError::BadNet(format!("{t} terminates two nets")));
                }
                used[t.index()] = true;
            }
            nets.push(Net { id: NetId::from_index(nets.len()), a, b });
        }
        let mut vias = Vec::with_capacity(pre_vias.len());
        for &(net, center, top, bottom) in pre_vias {
            if net.index() >= nets.len() {
                return Err(BuildError::BadNet(format!("fixed via references unknown {net}")));
            }
            if top >= bottom || bottom.index() >= self.wire_layer_count {
                return Err(BuildError::BadNet(format!(
                    "fixed via for {net} has a bad span {top}..{bottom}"
                )));
            }
            if !self.die.contains(center) {
                return Err(BuildError::BadNet(format!("fixed via for {net} escapes the die")));
            }
            vias.push(PreVia { net, center, top, bottom });
        }
        Ok(Package {
            die: self.die,
            rules: self.rules,
            wire_layer_count: self.wire_layer_count,
            chips: self.chips.clone(),
            pads: self.pads.clone(),
            nets,
            obstacles: self.obstacles.clone(),
            pre_vias: vias,
        })
    }

    /// The pre-assigned (fixed) vias `V_p`.
    pub fn pre_vias(&self) -> &[PreVia] {
        &self.pre_vias
    }

    /// The die (routing region) outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// The design rules.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Number of wire layers `|L_w|` (via layers are `|L_w| + 1`).
    pub fn wire_layer_count(&self) -> usize {
        self.wire_layer_count
    }

    /// Number of via layers `|L_v| = |L_w| + 1` as reported in Table I.
    pub fn via_layer_count(&self) -> usize {
        self.wire_layer_count + 1
    }

    /// The bottom wire layer (where bump pads attach).
    pub fn bottom_layer(&self) -> WireLayer {
        WireLayer((self.wire_layer_count - 1) as u8)
    }

    /// All chips.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// All pads.
    pub fn pads(&self) -> &[Pad] {
        &self.pads
    }

    /// All pre-assigned nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All obstacles.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Pad lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this package.
    pub fn pad(&self, id: PadId) -> &Pad {
        &self.pads[id.index()]
    }

    /// Chip lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this package.
    pub fn chip(&self, id: ChipId) -> &Chip {
        &self.chips[id.index()]
    }

    /// Net lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this package.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The wire layer a pad attaches to: top RDL for I/O pads, bottom RDL
    /// for bump pads.
    pub fn pad_layer(&self, id: PadId) -> WireLayer {
        match self.pad(id).kind {
            PadKind::Io { .. } => WireLayer::TOP,
            PadKind::Bump => self.bottom_layer(),
        }
    }

    /// Whether a net connects two chips (both terminals are I/O pads).
    pub fn is_inter_chip(&self, id: NetId) -> bool {
        let n = self.net(id);
        self.pad(n.a).is_io() && self.pad(n.b).is_io()
    }

    /// The number of I/O pads `|Q|`.
    pub fn io_pad_count(&self) -> usize {
        self.pads.iter().filter(|p| p.is_io()).count()
    }

    /// The number of bump pads `|G|`.
    pub fn bump_pad_count(&self) -> usize {
        self.pads.iter().filter(|p| !p.is_io()).count()
    }
}

/// Incremental builder for a [`Package`], validating as it goes.
#[derive(Debug, Clone)]
pub struct PackageBuilder {
    die: Rect,
    rules: DesignRules,
    wire_layer_count: usize,
    chips: Vec<Chip>,
    pads: Vec<Pad>,
    nets: Vec<Net>,
    obstacles: Vec<Obstacle>,
    pre_vias: Vec<PreVia>,
    io_pad_size: (Coord, Coord),
    bump_pad_width: Coord,
}

impl PackageBuilder {
    /// Starts a package with the given die outline, rules, and wire layer
    /// count.
    pub fn new(die: Rect, rules: DesignRules, wire_layers: usize) -> Self {
        PackageBuilder {
            die,
            rules,
            wire_layer_count: wire_layers,
            chips: Vec::new(),
            pads: Vec::new(),
            nets: Vec::new(),
            obstacles: Vec::new(),
            pre_vias: Vec::new(),
            io_pad_size: (8_000, 8_000),
            bump_pad_width: 30_000,
        }
    }

    /// Overrides the default I/O pad dimensions (8 µm × 8 µm).
    pub fn set_io_pad_size(&mut self, width: Coord, height: Coord) -> &mut Self {
        self.io_pad_size = (width, height);
        self
    }

    /// Overrides the default bump pad width (30 µm).
    pub fn set_bump_pad_width(&mut self, width: Coord) -> &mut Self {
        self.bump_pad_width = width;
        self
    }

    /// Adds a chip with the given outline.
    pub fn add_chip(&mut self, outline: Rect) -> ChipId {
        let id = ChipId::from_index(self.chips.len());
        self.chips.push(Chip { id, outline });
        id
    }

    /// Adds an I/O pad centered at `center` on the given chip.
    ///
    /// # Errors
    ///
    /// [`BuildError::PadOutsideChip`] if the pad escapes the chip outline.
    pub fn add_io_pad(&mut self, chip: ChipId, center: Point) -> Result<PadId, BuildError> {
        let id = PadId::from_index(self.pads.len());
        let (w, h) = self.io_pad_size;
        let pad = Pad { id, kind: PadKind::Io { chip }, center, width: w, height: h };
        let outline = self.chips[chip.index()].outline;
        if !outline.contains_rect(pad.bbox()) {
            return Err(BuildError::PadOutsideChip(id));
        }
        self.pads.push(pad);
        Ok(id)
    }

    /// Adds a bump pad centered at `center`.
    ///
    /// # Errors
    ///
    /// [`BuildError::PadOutsideDie`] if the pad escapes the die.
    pub fn add_bump_pad(&mut self, center: Point) -> Result<PadId, BuildError> {
        let id = PadId::from_index(self.pads.len());
        let pad =
            Pad { id, kind: PadKind::Bump, center, width: self.bump_pad_width, height: self.bump_pad_width };
        if !self.die.contains_rect(pad.bbox()) {
            return Err(BuildError::PadOutsideDie(id));
        }
        self.pads.push(pad);
        Ok(id)
    }

    /// Adds an obstacle on a wire layer.
    ///
    /// # Errors
    ///
    /// [`BuildError::ObstacleOutsideDie`] or [`BuildError::BadObstacleLayer`].
    pub fn add_obstacle(&mut self, layer: WireLayer, rect: Rect) -> Result<ObstacleId, BuildError> {
        let id = ObstacleId::from_index(self.obstacles.len());
        if !self.die.contains_rect(rect) {
            return Err(BuildError::ObstacleOutsideDie(id));
        }
        if layer.index() >= self.wire_layer_count {
            return Err(BuildError::BadObstacleLayer(id));
        }
        self.obstacles.push(Obstacle { id, layer, rect });
        Ok(id)
    }

    /// Adds a pre-assigned (fixed) via for a net (the paper's `V_p`). The
    /// net must already exist; the span must be strictly downward and
    /// inside the layer stack; the via must lie within the die.
    ///
    /// # Errors
    ///
    /// [`BuildError::BadNet`] for an unknown net or a malformed span,
    /// [`BuildError::PadOutsideDie`]-style containment is reported as
    /// [`BuildError::BadNet`] with a message.
    pub fn add_fixed_via(
        &mut self,
        net: NetId,
        center: Point,
        top: WireLayer,
        bottom: WireLayer,
    ) -> Result<(), BuildError> {
        if net.index() >= self.nets.len() {
            return Err(BuildError::BadNet(format!("fixed via references unknown {net}")));
        }
        if top >= bottom || bottom.index() >= self.wire_layer_count {
            return Err(BuildError::BadNet(format!(
                "fixed via for {net} has a bad span {top}..{bottom}"
            )));
        }
        if !self.die.contains(center) {
            return Err(BuildError::BadNet(format!("fixed via for {net} escapes the die")));
        }
        self.pre_vias.push(PreVia { net, center, top, bottom });
        Ok(())
    }

    /// Adds a pre-assigned net between two pads. The first terminal must be
    /// an I/O pad; bump-to-bump connections are not valid InFO nets.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownPad`] or [`BuildError::BadNet`].
    pub fn add_net(&mut self, a: PadId, b: PadId) -> Result<NetId, BuildError> {
        for p in [a, b] {
            if p.index() >= self.pads.len() {
                return Err(BuildError::UnknownPad(p));
            }
        }
        if a == b {
            return Err(BuildError::BadNet(format!("self-loop on {a}")));
        }
        let (pa, pb) = (&self.pads[a.index()], &self.pads[b.index()]);
        if !pa.is_io() && !pb.is_io() {
            return Err(BuildError::BadNet(format!("{a}-{b} connects two bump pads")));
        }
        // Normalize: terminal `a` is always an I/O pad.
        let (a, b) = if pa.is_io() { (a, b) } else { (b, a) };
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net { id, a, b });
        Ok(id)
    }

    /// Validates cross-entity rules and freezes the package.
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] variant; notably [`BuildError::PadSpacing`] if two
    /// pads on the same layer sit closer than the minimum spacing, and
    /// [`BuildError::BadNet`] if one pad terminates two different nets
    /// (pre-assigned pairs must be disjoint).
    pub fn build(self) -> Result<Package, BuildError> {
        if !self.rules.is_valid() {
            return Err(BuildError::InvalidRules);
        }
        if self.wire_layer_count == 0 {
            return Err(BuildError::NoWireLayers);
        }
        for c in &self.chips {
            if !self.die.contains_rect(c.outline) {
                return Err(BuildError::ChipOutsideDie(c.id));
            }
        }
        // Pad spacing within each attachment layer (top = I/O, bottom = bump).
        let s = self.rules.min_spacing as f64;
        for (i, p) in self.pads.iter().enumerate() {
            for q in &self.pads[i + 1..] {
                if p.is_io() != q.is_io() && self.wire_layer_count > 1 {
                    continue; // different attachment layers
                }
                if p.shape().distance_to_octagon(&q.shape()) < s {
                    return Err(BuildError::PadSpacing(p.id, q.id));
                }
            }
        }
        // Each pad may terminate at most one pre-assigned net.
        let mut used = vec![false; self.pads.len()];
        for n in &self.nets {
            for t in [n.a, n.b] {
                if used[t.index()] {
                    return Err(BuildError::BadNet(format!("{t} terminates two nets")));
                }
                used[t.index()] = true;
            }
        }
        Ok(Package {
            die: self.die,
            rules: self.rules,
            wire_layer_count: self.wire_layer_count,
            chips: self.chips,
            pads: self.pads,
            nets: self.nets,
            obstacles: self.obstacles,
            pre_vias: self.pre_vias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Rect {
        Rect::new(Point::new(0, 0), Point::new(1_000_000, 1_000_000))
    }

    fn builder() -> PackageBuilder {
        PackageBuilder::new(die(), DesignRules::default(), 2)
    }

    #[test]
    fn basic_build() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        let p1 = b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        let p2 = b.add_io_pad(c, Point::new(350_000, 350_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 700_000)).unwrap();
        b.add_net(p1, p2).unwrap();
        assert!(b.clone().build().is_ok());
        // Terminal reuse is only detectable once all nets are known, so
        // add_net accepts it and build() rejects it.
        b.add_net(g, p2).unwrap();
        assert!(matches!(b.build(), Err(BuildError::BadNet(_))));
    }

    #[test]
    fn io_pad_must_stay_inside_chip() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(200_000, 200_000)));
        assert!(matches!(
            b.add_io_pad(c, Point::new(199_000, 150_000)),
            Err(BuildError::PadOutsideChip(_))
        ));
        assert!(b.add_io_pad(c, Point::new(150_000, 150_000)).is_ok());
    }

    #[test]
    fn bump_bump_net_rejected() {
        let mut b = builder();
        let g1 = b.add_bump_pad(Point::new(100_000, 100_000)).unwrap();
        let g2 = b.add_bump_pad(Point::new(200_000, 200_000)).unwrap();
        assert!(matches!(b.add_net(g1, g2), Err(BuildError::BadNet(_))));
    }

    #[test]
    fn net_terminal_order_normalized() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        let io = b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 700_000)).unwrap();
        b.add_net(g, io).unwrap(); // bump listed first, should be flipped
        let pkg = b.build().unwrap();
        assert_eq!(pkg.nets()[0].a, io);
        assert_eq!(pkg.nets()[0].b, g);
        assert!(!pkg.is_inter_chip(NetId(0)));
    }

    #[test]
    fn pad_spacing_enforced() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        b.add_io_pad(c, Point::new(158_000, 150_000)).unwrap(); // 8 µm apart, pads 8 µm wide → 0 gap
        assert!(matches!(b.build(), Err(BuildError::PadSpacing(..))));
    }

    #[test]
    fn io_and_bump_on_different_layers_may_overlap_in_plan() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        // Bump pad directly beneath the chip: legal because it attaches to
        // the bottom RDL while the I/O pad attaches to the top RDL.
        b.add_bump_pad(Point::new(150_000, 150_000)).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn layer_counts_match_table1_convention() {
        let mut b = PackageBuilder::new(die(), DesignRules::default(), 3);
        let _ = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        let pkg = b.build().unwrap();
        assert_eq!(pkg.wire_layer_count(), 3);
        assert_eq!(pkg.via_layer_count(), 4); // |L_v| = |L_w| + 1, as in dense1
        assert_eq!(pkg.bottom_layer(), WireLayer(2));
    }

    #[test]
    fn pad_shapes() {
        let mut b = builder();
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
        let io = b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 700_000)).unwrap();
        let pkg = b.build().unwrap();
        // IO pad shape is its rectangle (4 edges), bump pad a regular octagon.
        assert_eq!(pkg.pad(io).shape().edges().len(), 4);
        assert_eq!(pkg.pad(g).shape().edges().len(), 8);
        assert_eq!(pkg.pad_layer(io), WireLayer::TOP);
        assert_eq!(pkg.pad_layer(g), WireLayer(1));
    }
}
