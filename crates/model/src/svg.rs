//! SVG rendering of packages and layouts for visual inspection.

use crate::layout::Layout;
use crate::package::Package;
use info_geom::{Octagon, Point, Rect};
use std::fmt::Write as _;

/// Per-wire-layer stroke colors (cycled when layers exceed the palette).
const LAYER_COLORS: [&str; 6] = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];

/// A callout drawn on top of the layout: a ring around `at` with a short
/// text label — used by the failure report to point at the terminals of
/// unrouted nets.
#[derive(Debug, Clone)]
pub struct Mark {
    /// Die coordinate the ring is centered on.
    pub at: Point,
    /// Short label drawn beside the ring (escaped for XML).
    pub label: String,
    /// CSS color of the ring and label (e.g. `"#c00"`).
    pub color: String,
}

/// Renders the package and (optionally) its layout as an SVG document.
///
/// Chips are gray boxes, I/O pads dark squares, bump pads octagons,
/// obstacles hatched gray, routes colored per layer, vias black octagons.
///
/// # Example
///
/// ```
/// use info_geom::{Point, Rect};
/// use info_model::{DesignRules, PackageBuilder, Layout, svg};
/// # fn main() -> Result<(), info_model::BuildError> {
/// let mut b = PackageBuilder::new(
///     Rect::new(Point::new(0, 0), Point::new(100_000, 100_000)),
///     DesignRules::default(), 1);
/// let pkg = b.build()?;
/// let doc = svg::render(&pkg, Some(&Layout::new(&pkg)));
/// assert!(doc.starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
pub fn render(package: &Package, layout: Option<&Layout>) -> String {
    render_with_marks(package, layout, &[])
}

/// [`render`], plus a layer of [`Mark`] callouts drawn on top of
/// everything else (rings with labels, e.g. around failed-net terminals).
pub fn render_with_marks(package: &Package, layout: Option<&Layout>, marks: &[Mark]) -> String {
    let die = package.die();
    let (w, h) = (die.width(), die.height());
    // Scale to a ~1000 px canvas.
    let scale = 1_000.0 / w.max(h).max(1) as f64;
    let px = |v: i64| v as f64 * scale;
    // SVG y grows downward; flip.
    let fy = |y: i64| (die.hi.y - y) as f64 * scale;
    let fx = |x: i64| (x - die.lo.x) as f64 * scale;

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {:.1} {:.1}\">",
        px(w),
        px(h)
    );
    let _ = write!(
        s,
        "<rect x=\"0\" y=\"0\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#fbfaf6\" stroke=\"#444\"/>",
        px(w),
        px(h)
    );

    let rect_el = |s: &mut String, r: Rect, fill: &str, stroke: &str, opacity: f64| {
        let _ = write!(
            s,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\" stroke=\"{}\" fill-opacity=\"{}\"/>",
            fx(r.lo.x),
            fy(r.hi.y),
            px(r.width()),
            px(r.height()),
            fill,
            stroke,
            opacity
        );
    };
    let oct_el = |s: &mut String, o: &Octagon, fill: &str, opacity: f64| {
        if o.is_empty() {
            return;
        }
        let pts: Vec<String> =
            o.vertices().iter().map(|p| format!("{:.1},{:.1}", fx(p.x), fy(p.y))).collect();
        let _ = write!(
            s,
            "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"{}\" stroke=\"#222\" stroke-width=\"0.3\"/>",
            pts.join(" "),
            fill,
            opacity
        );
    };

    for chip in package.chips() {
        rect_el(&mut s, chip.outline, "#d9d4c7", "#777", 0.9);
    }
    for o in package.obstacles() {
        rect_el(&mut s, o.rect, "#8a8578", "#555", 0.7);
    }
    for p in package.pads() {
        if p.is_io() {
            rect_el(&mut s, p.bbox(), "#35322a", "#000", 1.0);
        } else {
            oct_el(&mut s, &p.shape(), "#b5a642", 0.8);
        }
    }
    if let Some(l) = layout {
        for r in l.routes() {
            let color = LAYER_COLORS[r.layer.index() % LAYER_COLORS.len()];
            let pts: Vec<String> = r
                .path
                .points()
                .iter()
                .map(|p| format!("{:.1},{:.1}", fx(p.x), fy(p.y)))
                .collect();
            let width = (package.rules().wire_width as f64 * scale).max(0.6);
            let _ = write!(
                s,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{:.2}\" stroke-opacity=\"0.85\"/>",
                pts.join(" "),
                color,
                width
            );
        }
        for v in l.vias() {
            oct_el(&mut s, &v.shape(), "#111", 0.95);
        }
    }
    for m in marks {
        let label: String = m
            .label
            .chars()
            .map(|c| match c {
                '<' | '>' | '&' | '"' => '_',
                c => c,
            })
            .collect();
        let _ = write!(
            s,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"9\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"{}\">{}</text>",
            fx(m.at.x),
            fy(m.at.y),
            m.color,
            fx(m.at.x) + 11.0,
            fy(m.at.y) - 4.0,
            m.color,
            label
        );
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NetId, WireLayer};
    use crate::package::PackageBuilder;
    use crate::rules::DesignRules;
    use info_geom::{Point, Polyline};

    #[test]
    fn renders_all_element_kinds() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(500_000, 500_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(50_000, 50_000), Point::new(250_000, 250_000)));
        let io = b.add_io_pad(c, Point::new(100_000, 100_000)).unwrap();
        let g = b.add_bump_pad(Point::new(400_000, 400_000)).unwrap();
        b.add_net(io, g).unwrap();
        b.add_obstacle(WireLayer(0), Rect::new(Point::new(300_000, 50_000), Point::new(350_000, 100_000)))
            .unwrap();
        let pkg = b.build().unwrap();
        let mut l = Layout::new(&pkg);
        l.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![Point::new(100_000, 100_000), Point::new(400_000, 400_000)]),
        );
        l.add_via(NetId(0), Point::new(400_000, 400_000), 5_000, WireLayer(0), WireLayer(1), false);
        let doc = render(&pkg, Some(&l));
        assert!(doc.contains("<polygon")); // bump pad + via octagons
        assert!(doc.contains("<polyline")); // route
        assert!(doc.matches("<rect").count() >= 4); // bg, chip, obstacle, io pad
        assert!(doc.ends_with("</svg>"));
    }

    #[test]
    fn marks_render_as_rings_with_escaped_labels() {
        let b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(100_000, 100_000)),
            DesignRules::default(),
            1,
        );
        let pkg = b.build().unwrap();
        let marks = vec![Mark {
            at: Point::new(50_000, 50_000),
            label: "net 33 <unreachable>".into(),
            color: "#c00".into(),
        }];
        let doc = render_with_marks(&pkg, None, &marks);
        assert!(doc.contains("<circle"));
        assert!(doc.contains("net 33 _unreachable_"), "label must be XML-escaped");
        assert!(!doc.contains("<unreachable>"));
        assert_eq!(render(&pkg, None), render_with_marks(&pkg, None, &[]));
    }

    #[test]
    fn package_only_render() {
        let b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(100_000, 50_000)),
            DesignRules::default(),
            1,
        );
        let pkg = b.build().unwrap();
        let doc = render(&pkg, None);
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>"));
    }
}
