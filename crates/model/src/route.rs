//! Routing result primitives: planar routes and vias.

use crate::ids::{NetId, RouteId, ViaId, WireLayer};
use info_geom::{Coord, Octagon, Point, Polyline};
use serde::{Deserialize, Serialize};

/// A planar route: an X-architecture polyline of one net on one wire layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Identifier within the layout.
    pub id: RouteId,
    /// The net this route belongs to.
    pub net: NetId,
    /// The wire layer the route lies on.
    pub layer: WireLayer,
    /// The centerline geometry.
    pub path: Polyline,
}

impl Route {
    /// Euclidean length of the centerline.
    pub fn length(&self) -> f64 {
        self.path.length()
    }
}

/// An RDL via: a regular octagon spanning one or more adjacent wire layers.
///
/// A via with `top == bottom` is degenerate and connects nothing; a valid
/// via has `top.index() < bottom.index()` and electrically joins every wire
/// layer in `top..=bottom` (a *stacked* via when the span exceeds two
/// layers, which is what Via Insertion's projection through layers
/// produces, §III-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Via {
    /// Identifier within the layout.
    pub id: ViaId,
    /// The net this via belongs to.
    pub net: NetId,
    /// Center position.
    pub center: Point,
    /// Bounding-box width of the octagon (`s_v`).
    pub width: Coord,
    /// Topmost wire layer the via touches.
    pub top: WireLayer,
    /// Bottommost wire layer the via touches.
    pub bottom: WireLayer,
    /// Pre-assigned (fixed) vias cannot be moved by layout optimization;
    /// flexible vias can.
    pub fixed: bool,
}

impl Via {
    /// The via's octagonal footprint (identical on every spanned layer).
    pub fn shape(&self) -> Octagon {
        Octagon::regular(self.center, self.width)
    }

    /// Whether the via touches the given wire layer.
    pub fn spans(&self, layer: WireLayer) -> bool {
        layer >= self.top && layer <= self.bottom
    }

    /// Whether the span is well-formed (strictly top above bottom).
    pub fn span_valid(&self) -> bool {
        self.top < self.bottom
    }

    /// Number of via layers this (possibly stacked) via occupies.
    pub fn span_len(&self) -> usize {
        self.bottom.index().saturating_sub(self.top.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_span_queries() {
        let v = Via {
            id: ViaId(0),
            net: NetId(0),
            center: Point::new(0, 0),
            width: 5_000,
            top: WireLayer(0),
            bottom: WireLayer(2),
            fixed: false,
        };
        assert!(v.span_valid());
        assert_eq!(v.span_len(), 2);
        assert!(v.spans(WireLayer(0)));
        assert!(v.spans(WireLayer(1)));
        assert!(v.spans(WireLayer(2)));
        assert!(!v.spans(WireLayer(3)));
        assert!(v.shape().contains(Point::new(2_000, 0)));
    }

    #[test]
    fn degenerate_span_invalid() {
        let v = Via {
            id: ViaId(0),
            net: NetId(0),
            center: Point::new(0, 0),
            width: 5_000,
            top: WireLayer(1),
            bottom: WireLayer(1),
            fixed: true,
        };
        assert!(!v.span_valid());
        assert_eq!(v.span_len(), 0);
    }

    #[test]
    fn route_length() {
        let r = Route {
            id: RouteId(0),
            net: NetId(0),
            layer: WireLayer(0),
            path: Polyline::new(vec![Point::new(0, 0), Point::new(3_000, 0), Point::new(3_000, 4_000)]),
        };
        assert!((r.length() - 7_000.0).abs() < 1e-9);
    }
}
