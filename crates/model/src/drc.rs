//! Design-rule checking and net-connectivity verification.
//!
//! Every experiment in this workspace validates its final layout here
//! before reporting routability: a net only counts as *routed* if it is
//! electrically connected pad-to-pad and implicated in no violation.
//!
//! Checked rules (§II-B):
//!
//! - **Minimum spacing** between components of different nets (and against
//!   obstacles) on every wire layer, with wire metal width accounted for.
//! - **Non-crossing**: routes of different nets must not cross on a layer.
//! - **X-architecture + routing-angle** rules for every polyline.
//! - **Die containment** of all geometry.
//! - **Connectivity**: each net's two pads joined through routes and vias.

use crate::ids::{NetId, ObstacleId, PadId, RouteId, ViaId, WireLayer};
use crate::layout::Layout;
use crate::package::Package;
use info_geom::{GridIndex, Octagon, Rect, Segment, TurnRuleViolation};
use info_telemetry::{Counter, Metric, Sink};
use std::collections::BTreeSet;
use std::fmt;

/// Reference to a checked item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemRef {
    /// A planar route.
    Route(RouteId),
    /// A via.
    Via(ViaId),
    /// A pad.
    Pad(PadId),
    /// An obstacle.
    Obstacle(ObstacleId),
}

impl fmt::Display for ItemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemRef::Route(r) => write!(f, "{r}"),
            ItemRef::Via(v) => write!(f, "{v}"),
            ItemRef::Pad(p) => write!(f, "{p}"),
            ItemRef::Obstacle(o) => write!(f, "{o}"),
        }
    }
}

/// One design-rule or connectivity violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two items of different nets are closer than the minimum spacing.
    Spacing {
        /// Layer on which the violation occurs.
        layer: WireLayer,
        /// First item.
        a: ItemRef,
        /// Second item.
        b: ItemRef,
        /// Measured edge-to-edge distance in nm.
        distance_nm: f64,
        /// Required distance in nm.
        required_nm: f64,
    },
    /// Routes of two different nets cross on a layer.
    Crossing {
        /// Layer of the crossing.
        layer: WireLayer,
        /// First route.
        a: RouteId,
        /// Second route.
        b: RouteId,
    },
    /// A route violates the X-architecture or turn rules.
    TurnRule {
        /// Offending route.
        route: RouteId,
        /// Detail from the polyline validator.
        violation: TurnRuleViolation,
    },
    /// Geometry escapes the die outline.
    OutOfDie {
        /// Offending item.
        item: ItemRef,
    },
    /// A net is not electrically connected pad-to-pad.
    Disconnected {
        /// The net.
        net: NetId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Spacing { layer, a, b, distance_nm, required_nm } => write!(
                f,
                "spacing on {layer}: {a} vs {b} at {distance_nm:.0} nm (need {required_nm:.0})"
            ),
            Violation::Crossing { layer, a, b } => {
                write!(f, "crossing on {layer}: {a} x {b}")
            }
            Violation::TurnRule { route, violation } => {
                write!(f, "turn rule on {route}: {violation}")
            }
            Violation::OutOfDie { item } => write!(f, "{item} escapes the die"),
            Violation::Disconnected { net } => write!(f, "{net} is not connected"),
        }
    }
}

/// Result of a full DRC pass.
#[derive(Debug, Clone, Default)]
pub struct DrcReport {
    violations: Vec<Violation>,
    dirty_nets: BTreeSet<NetId>,
}

impl DrcReport {
    /// All violations found.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether the layout is violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Nets implicated in at least one violation (including disconnection).
    pub fn dirty_nets(&self) -> &BTreeSet<NetId> {
        &self.dirty_nets
    }

    fn push(&mut self, v: Violation, nets: impl IntoIterator<Item = NetId>) {
        self.violations.push(v);
        self.dirty_nets.extend(nets);
    }
}

/// Tolerance (nm) applied to spacing measurements so exact-at-rule layouts
/// produced by integer arithmetic do not flag due to `f64` rounding.
const TOL: f64 = 0.5;

/// Contact slack (nm) for same-net connectivity: a wire whose centerline
/// comes within half a wire width of a shape overlaps it with metal.
fn contact_reach(package: &Package) -> f64 {
    package.rules().wire_width as f64 / 2.0 + TOL
}

/// One geometric item on a layer, with net affiliation for exemptions.
struct LayerItem {
    item: ItemRef,
    net: Option<NetId>,
    shape: ItemShape,
    bbox: Rect,
}

enum ItemShape {
    /// A wire centerline segment (metal extends `wire_width / 2` each side).
    Wire(Segment),
    /// A filled convex octagon (via, pad, or rectangular obstacle).
    Solid(Octagon),
}

/// Runs the full check.
///
/// ```
/// use info_geom::{Point, Rect};
/// use info_model::{drc, DesignRules, Layout, PackageBuilder};
/// # fn main() -> Result<(), info_model::BuildError> {
/// let mut b = PackageBuilder::new(
///     Rect::new(Point::new(0, 0), Point::new(100_000, 100_000)),
///     DesignRules::default(), 1);
/// let pkg = b.build()?;
/// let report = drc::check(&pkg, &Layout::new(&pkg));
/// assert!(report.is_clean()); // nothing to violate
/// # Ok(())
/// # }
/// ```
pub fn check(package: &Package, layout: &Layout) -> DrcReport {
    check_impl(package, layout, true, &Sink::disabled())
}

/// [`check`] that additionally records per-sweep telemetry (which sweep
/// path each layer took and how many items it scanned) into `tel`.
pub fn check_with(package: &Package, layout: &Layout, tel: &Sink) -> DrcReport {
    check_impl(package, layout, true, tel)
}

/// [`check`] with the spacing/crossing sweep done by the naive O(n²)
/// all-pairs scan instead of the grid-bucket spatial index.
///
/// Kept as the differential-testing reference and the baseline the
/// `table1` bench times the indexed query path against; the two must
/// produce byte-identical reports on every layout.
pub fn check_naive(package: &Package, layout: &Layout) -> DrcReport {
    check_impl(package, layout, false, &Sink::disabled())
}

/// [`check`] with the grid-bucket spatial index forced on for every
/// layer, [`INDEX_CUTOFF`] ignored. This is the calibration hook for the
/// cutoff itself: the `drc_cutoff` bench bin times this against
/// [`check_naive`] across layer sizes to locate where the curves cross.
/// Not for production use — below the cutoff it is the slower path.
pub fn check_forced_index(package: &Package, layout: &Layout) -> DrcReport {
    let mut report = DrcReport::default();
    check_geometry_rules(package, layout, &mut report);
    check_spacing_and_crossing(package, layout, &mut report, SweepMode::ForceIndex, &Sink::disabled());
    for net in package.nets() {
        if !is_connected(package, layout, net.id) {
            report.push(Violation::Disconnected { net: net.id }, [net.id]);
        }
    }
    report
}

/// How the spacing/crossing sweep picks between the spatial index and the
/// all-pairs scan.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepMode {
    /// Index when the layer has at least [`INDEX_CUTOFF`] items.
    Auto,
    /// Always index (cutoff calibration only).
    ForceIndex,
    /// Never index (differential-testing reference).
    Naive,
}

/// Below this many items on a layer, the indexed sweep falls back to the
/// naive all-pairs scan: building and querying the grid buckets costs more
/// than the O(n²) bbox prefilter it avoids. Measured with the `drc_cutoff`
/// bench bin (`cargo run --release -p info-bench --bin drc_cutoff`; table
/// in EXPERIMENTS.md): the naive scan wins clearly through a few hundred
/// items, the paths cross around ~1k, and the index pulls away above
/// that. Both paths produce a byte-identical pair stream, so the report
/// never depends on the choice.
pub const INDEX_CUTOFF: usize = 1024;

fn check_impl(package: &Package, layout: &Layout, indexed: bool, tel: &Sink) -> DrcReport {
    let mode = if indexed { SweepMode::Auto } else { SweepMode::Naive };
    let mut report = DrcReport::default();
    check_geometry_rules(package, layout, &mut report);
    check_spacing_and_crossing(package, layout, &mut report, mode, tel);
    for net in package.nets() {
        if !is_connected(package, layout, net.id) {
            report.push(Violation::Disconnected { net: net.id }, [net.id]);
        }
    }
    report
}

/// Checks only angle/off-axis rules and die containment.
fn check_geometry_rules(package: &Package, layout: &Layout, report: &mut DrcReport) {
    let die = package.die();
    for r in layout.routes() {
        if let Err(v) = r.path.validate() {
            report.push(Violation::TurnRule { route: r.id, violation: v }, [r.net]);
        }
        if r.path.points().iter().any(|&p| !die.contains(p)) {
            report.push(Violation::OutOfDie { item: ItemRef::Route(r.id) }, [r.net]);
        }
    }
    for v in layout.vias() {
        if !die.contains_rect(v.shape().bbox()) {
            report.push(Violation::OutOfDie { item: ItemRef::Via(v.id) }, [v.net]);
        }
    }
}

fn pad_net_map(package: &Package) -> Vec<Option<NetId>> {
    let mut map = vec![None; package.pads().len()];
    for n in package.nets() {
        map[n.a.index()] = Some(n.id);
        map[n.b.index()] = Some(n.id);
    }
    map
}

fn layer_items(package: &Package, layout: &Layout, layer: WireLayer) -> Vec<LayerItem> {
    let pad_nets = pad_net_map(package);
    let mut items = Vec::new();
    for r in layout.routes_on(layer) {
        for seg in r.path.segments() {
            let (lo, hi) = seg.bbox();
            items.push(LayerItem {
                item: ItemRef::Route(r.id),
                net: Some(r.net),
                shape: ItemShape::Wire(seg),
                bbox: Rect::new(lo, hi),
            });
        }
    }
    for v in layout.vias_on(layer) {
        let shape = v.shape();
        items.push(LayerItem {
            item: ItemRef::Via(v.id),
            net: Some(v.net),
            shape: ItemShape::Solid(shape),
            bbox: shape.bbox(),
        });
    }
    for p in package.pads() {
        if package.pad_layer(p.id) == layer {
            let shape = p.shape();
            items.push(LayerItem {
                item: ItemRef::Pad(p.id),
                net: pad_nets[p.id.index()],
                shape: ItemShape::Solid(shape),
                bbox: shape.bbox(),
            });
        }
    }
    for o in package.obstacles() {
        if o.layer == layer {
            items.push(LayerItem {
                item: ItemRef::Obstacle(o.id),
                net: None,
                shape: ItemShape::Solid(Octagon::from_rect(o.rect)),
                bbox: o.rect,
            });
        }
    }
    items
}

fn check_spacing_and_crossing(
    package: &Package,
    layout: &Layout,
    report: &mut DrcReport,
    mode: SweepMode,
    tel: &Sink,
) {
    let rules = package.rules();
    for li in 0..package.wire_layer_count() {
        let layer = WireLayer(li as u8);
        let items = layer_items(package, layout, layer);
        // The bbox prefilter inflates by the largest possible clearance
        // (spacing + full wire width).
        let reach = rules.min_spacing + rules.wire_width + 1;
        // Small layers are cheaper to scan all-pairs than to index.
        let use_index = match mode {
            SweepMode::Auto => items.len() >= INDEX_CUTOFF,
            SweepMode::ForceIndex => true,
            SweepMode::Naive => false,
        };
        tel.observe(Metric::DrcItemsPerSweep, items.len() as u64);
        tel.count(
            if use_index { Counter::DrcSweepsIndexed } else { Counter::DrcSweepsNaive },
            1,
        );
        if use_index {
            // Each item id equals its position in `items`, and queries
            // return ids in ascending order, so the (i, j>i) pair stream —
            // and therefore the violation list — is byte-identical to the
            // naive scan below.
            let mut index: GridIndex<()> =
                GridIndex::with_capacity_hint(package.die(), items.len());
            for it in &items {
                index.insert(it.bbox, ());
            }
            for i in 0..items.len() {
                let abox = items[i].bbox.inflate(reach);
                for id in index.query(abox) {
                    let j = id.index();
                    if j > i {
                        check_pair(rules, layer, &items[i], &items[j], report);
                    }
                }
            }
        } else {
            for i in 0..items.len() {
                let abox = items[i].bbox.inflate(reach);
                for b in items.iter().skip(i + 1) {
                    if abox.intersects(b.bbox) {
                        check_pair(rules, layer, &items[i], b, report);
                    }
                }
            }
        }
    }
}

/// Exact spacing/crossing check of one candidate pair (bbox-prefiltered by
/// the caller). Pushes at most one violation.
fn check_pair(
    rules: &crate::rules::DesignRules,
    layer: WireLayer,
    a: &LayerItem,
    b: &LayerItem,
    report: &mut DrcReport,
) {
    let s = rules.min_spacing as f64;
    let half_wire = rules.wire_width as f64 / 2.0;
    // Same-net (and pads vs their own routes) are exempt; two
    // distinct nets or a net against a no-net obstacle are not.
    let exempt = match (a.net, b.net) {
        (Some(x), Some(y)) => x == y,
        // Two netless items (pads without nets / obstacles) are
        // static input geometry — the builder validated them.
        (None, None) => true,
        _ => false,
    };
    if exempt {
        return;
    }
    // A proper crossing (route-route only) is reported as such;
    // mere touches fall through to the spacing check, which
    // records them as zero-distance spacing violations.
    if let (ItemShape::Wire(sa), ItemShape::Wire(sb)) = (&a.shape, &b.shape) {
        if sa.crosses_properly(*sb) {
            if let (ItemRef::Route(ra), ItemRef::Route(rb)) = (a.item, b.item) {
                report.push(
                    Violation::Crossing { layer, a: ra, b: rb },
                    [a.net, b.net].into_iter().flatten(),
                );
                return;
            }
        }
    }
    let (distance, required) = match (&a.shape, &b.shape) {
        (ItemShape::Wire(sa), ItemShape::Wire(sb)) => {
            (sa.distance_to_segment(*sb) - 2.0 * half_wire, s)
        }
        (ItemShape::Wire(seg), ItemShape::Solid(oct))
        | (ItemShape::Solid(oct), ItemShape::Wire(seg)) => {
            (oct.distance_to_segment(*seg) - half_wire, s)
        }
        (ItemShape::Solid(oa), ItemShape::Solid(ob)) => (oa.distance_to_octagon(ob), s),
    };
    if distance < required - TOL {
        report.push(
            Violation::Spacing {
                layer,
                a: a.item,
                b: b.item,
                distance_nm: distance.max(0.0),
                required_nm: required,
            },
            [a.net, b.net].into_iter().flatten(),
        );
    }
}

/// Union-find over a net's conductive items.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Whether `net` is electrically connected from pad to pad through its
/// routes and vias.
///
/// Contact model: a route touches a shape (pad or via) when its centerline
/// comes within half a wire width; two routes on the same layer touch when
/// their centerlines share a point; two vias connect when their spans share
/// a layer and their octagons intersect.
pub fn is_connected(package: &Package, layout: &Layout, net: NetId) -> bool {
    let n = package.net(net);
    let reach = contact_reach(package);
    let routes: Vec<_> = layout.routes_of(net).collect();
    let vias: Vec<_> = layout.vias_of(net).collect();
    // Node ids: 0 = pad a, 1 = pad b, 2.. routes, then vias.
    let nr = routes.len();
    let mut dsu = Dsu::new(2 + nr + vias.len());

    let pads = [package.pad(n.a), package.pad(n.b)];
    let pad_layers = [package.pad_layer(n.a), package.pad_layer(n.b)];
    for (pi, (pad, pl)) in pads.iter().zip(pad_layers.iter()).enumerate() {
        let shape = pad.shape();
        for (ri, r) in routes.iter().enumerate() {
            if r.layer == *pl
                && r.path.segments().any(|seg| shape.distance_to_segment(seg) <= reach)
            {
                dsu.union(pi, 2 + ri);
            }
        }
        for (vi, v) in vias.iter().enumerate() {
            if v.spans(*pl) && v.shape().intersects(&shape) {
                dsu.union(pi, 2 + nr + vi);
            }
        }
    }
    for (ri, r) in routes.iter().enumerate() {
        for (rj, r2) in routes.iter().enumerate().skip(ri + 1) {
            if r.layer == r2.layer
                && r.path
                    .segments()
                    .any(|a| r2.path.segments().any(|b| a.touches(b)))
            {
                dsu.union(2 + ri, 2 + rj);
            }
        }
        for (vi, v) in vias.iter().enumerate() {
            if v.spans(r.layer)
                && r.path.segments().any(|seg| v.shape().distance_to_segment(seg) <= reach)
            {
                dsu.union(2 + ri, 2 + nr + vi);
            }
        }
    }
    for (vi, v) in vias.iter().enumerate() {
        for (vj, v2) in vias.iter().enumerate().skip(vi + 1) {
            let spans_overlap = v.top.max(v2.top) <= v.bottom.min(v2.bottom);
            if spans_overlap && v.shape().intersects(&v2.shape()) {
                dsu.union(2 + nr + vi, 2 + nr + vj);
            }
        }
    }
    dsu.find(0) == dsu.find(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageBuilder;
    use crate::rules::DesignRules;
    use info_geom::{Point, Polyline};

    /// Two chips side by side, one inter-chip net, two wire layers.
    fn two_chip_package() -> (Package, PadId, PadId) {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let p1 = b.add_io_pad(c1, Point::new(250_000, 250_000)).unwrap();
        let p2 = b.add_io_pad(c2, Point::new(750_000, 250_000)).unwrap();
        b.add_net(p1, p2).unwrap();
        let pkg = b.build().unwrap();
        (pkg, p1, p2)
    }

    fn pl(pts: &[(i64, i64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn straight_connection_is_clean_and_connected() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.is_clean(), "{:?}", rep.violations());
        assert!(is_connected(&pkg, &l, NetId(0)));
    }

    #[test]
    fn missing_route_reports_disconnected() {
        let (pkg, _, _) = two_chip_package();
        let l = Layout::new(&pkg);
        let rep = check(&pkg, &l);
        assert_eq!(rep.violations().len(), 1);
        assert!(matches!(rep.violations()[0], Violation::Disconnected { .. }));
        assert!(rep.dirty_nets().contains(&NetId(0)));
    }

    #[test]
    fn partial_route_reports_disconnected() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        // Stops 100 µm short of the second pad.
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (650_000, 250_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.violations().iter().any(|v| matches!(v, Violation::Disconnected { .. })));
    }

    #[test]
    fn via_bridges_layers() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        // Top layer to the midpoint, via down, bottom layer onward, via up.
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (500_000, 250_000)]));
        l.add_via(NetId(0), Point::new(500_000, 250_000), 5_000, WireLayer(0), WireLayer(1), false);
        l.add_route(NetId(0), WireLayer(1), pl(&[(500_000, 250_000), (600_000, 250_000)]));
        l.add_via(NetId(0), Point::new(600_000, 250_000), 5_000, WireLayer(0), WireLayer(1), false);
        l.add_route(NetId(0), WireLayer(0), pl(&[(600_000, 250_000), (750_000, 250_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.is_clean(), "{:?}", rep.violations());
        assert!(is_connected(&pkg, &l, NetId(0)));
    }

    #[test]
    fn broken_via_chain_is_disconnected() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (500_000, 250_000)]));
        // Route continues on the bottom layer but no via joins them.
        l.add_route(NetId(0), WireLayer(1), pl(&[(500_000, 250_000), (750_000, 250_000)]));
        assert!(!is_connected(&pkg, &l, NetId(0)));
    }

    #[test]
    fn crossing_detected() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let a1 = b.add_io_pad(c1, Point::new(250_000, 200_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(750_000, 300_000)).unwrap();
        let b1 = b.add_io_pad(c1, Point::new(250_000, 300_000)).unwrap();
        let b2 = b.add_io_pad(c2, Point::new(750_000, 200_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(b1, b2).unwrap();
        let pkg = b.build().unwrap();
        let mut l = Layout::new(&pkg);
        // Two straight diagonal-ish routes that cross in the middle.
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (350_000, 300_000), (750_000, 300_000)]));
        l.add_route(NetId(1), WireLayer(0), pl(&[(250_000, 300_000), (350_000, 200_000), (750_000, 200_000)]));
        let rep = check(&pkg, &l);
        assert!(
            rep.violations().iter().any(|v| matches!(v, Violation::Crossing { .. })),
            "{:?}",
            rep.violations()
        );
        assert_eq!(rep.dirty_nets().len(), 2);
    }

    #[test]
    fn spacing_violation_between_parallel_wires() {
        let (pkg, _, _) = two_chip_package();
        // Second net on the same package is absent; craft two routes of
        // different nets by abusing net ids — net 1 doesn't exist in the
        // package, but spacing only needs distinct net tags.
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        // 3 µm centerline offset < wire(2) + spacing(2) = 4 µm. The foreign
        // wire stays clear of the pads in x so only wire-wire spacing trips.
        l.add_route(NetId(1), WireLayer(0), pl(&[(300_000, 253_000), (700_000, 253_000)]));
        let rep = check(&pkg, &l);
        assert!(
            rep.violations()
                .iter()
                .any(|v| matches!(v, Violation::Spacing { .. })),
            "{:?}",
            rep.violations()
        );
        // At 4 µm exactly the pair is legal.
        let mut l2 = Layout::new(&pkg);
        l2.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        l2.add_route(NetId(1), WireLayer(0), pl(&[(300_000, 254_000), (700_000, 254_000)]));
        let rep2 = check(&pkg, &l2);
        assert!(
            !rep2.violations().iter().any(|v| matches!(v, Violation::Spacing { .. })),
            "{:?}",
            rep2.violations()
        );
    }

    #[test]
    fn wire_too_close_to_foreign_pad() {
        let (pkg, _, p2) = two_chip_package();
        let mut l = Layout::new(&pkg);
        // A wire of a phantom net whose metal edge comes 1.5 µm from pad
        // p2's top edge (pad is 8 µm wide, wire 2 µm): centerline at
        // pad-top + 2.5 µm → edge gap 1.5 µm < 2 µm spacing.
        let y = 250_000 + 4_000 + 2_500;
        l.add_route(NetId(7), WireLayer(0), pl(&[(700_000, y), (800_000, y)]));
        let rep = check(&pkg, &l);
        let hit = rep.violations().iter().any(|v| match v {
            Violation::Spacing { a, b, .. } => {
                matches!(a, ItemRef::Pad(p) if *p == p2) || matches!(b, ItemRef::Pad(p) if *p == p2)
            }
            _ => false,
        });
        assert!(hit, "{:?}", rep.violations());
    }

    #[test]
    fn turn_rule_violation_detected() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        // Off-axis segment.
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 251_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.violations().iter().any(|v| matches!(v, Violation::TurnRule { .. })));
    }

    #[test]
    fn out_of_die_detected() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (1_100_000, 250_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.violations().iter().any(|v| matches!(v, Violation::OutOfDie { .. })));
    }

    #[test]
    fn indexed_check_matches_naive_reference() {
        // A layout with a crossing, a spacing violation, a turn-rule
        // violation, and a disconnected net: the indexed sweep must
        // reproduce the naive report *exactly*, including order.
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        l.add_route(NetId(1), WireLayer(0), pl(&[(300_000, 253_000), (700_000, 253_000)]));
        l.add_route(NetId(2), WireLayer(0), pl(&[(400_000, 100_000), (500_000, 400_000)]));
        l.add_route(NetId(3), WireLayer(1), pl(&[(400_000, 300_000), (600_000, 100_000)]));
        l.add_route(NetId(4), WireLayer(1), pl(&[(400_000, 100_000), (600_000, 300_000)]));
        let fast = check(&pkg, &l);
        let slow = check_naive(&pkg, &l);
        assert_eq!(fast.violations(), slow.violations());
        assert_eq!(fast.dirty_nets(), slow.dirty_nets());
        assert!(!fast.is_clean());
    }

    #[test]
    fn small_layouts_take_the_naive_sweep_path() {
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        let tel = Sink::enabled();
        let rep = check_with(&pkg, &l, &tel);
        assert!(rep.is_clean(), "{:?}", rep.violations());
        let report = tel.report().unwrap();
        assert_eq!(report.counter("drc_sweeps_indexed"), 0, "below the cutoff");
        assert_eq!(report.counter("drc_sweeps_naive"), 2, "one sweep per layer");
    }

    #[test]
    fn indexed_sweep_above_cutoff_matches_naive_reference() {
        // A grid of >INDEX_CUTOFF short wires on layer 0 (some of them
        // deliberately too close) pushes the sweep onto the indexed path,
        // which must still reproduce the naive report exactly.
        let (pkg, _, _) = two_chip_package();
        let mut l = Layout::new(&pkg);
        let mut n = 0u32;
        'outer: for row in 0..40i64 {
            for col in 0..40i64 {
                let x = 20_000 + col * 24_000;
                // Every eighth row sits 3 µm from its neighbor — a real
                // spacing violation the indexed sweep must also find.
                let y = 20_000 + row * 11_000 + if row % 8 == 0 { 8_000 } else { 0 };
                l.add_route(
                    NetId(n),
                    WireLayer(0),
                    pl(&[(x, y), (x + 12_000, y)]),
                );
                n += 1;
                if n as usize > INDEX_CUTOFF + 64 {
                    break 'outer;
                }
            }
        }
        let tel = Sink::enabled();
        let fast = check_with(&pkg, &l, &tel);
        let slow = check_naive(&pkg, &l);
        assert_eq!(fast.violations(), slow.violations());
        assert_eq!(fast.dirty_nets(), slow.dirty_nets());
        let report = tel.report().unwrap();
        assert_eq!(report.counter("drc_sweeps_indexed"), 1, "layer 0 is above the cutoff");
        assert_eq!(report.counter("drc_sweeps_naive"), 1, "layer 1 is empty");
    }

    #[test]
    fn obstacle_spacing_enforced() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let p1 = b.add_io_pad(c1, Point::new(250_000, 250_000)).unwrap();
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let p2 = b.add_io_pad(c2, Point::new(750_000, 250_000)).unwrap();
        b.add_net(p1, p2).unwrap();
        b.add_obstacle(
            WireLayer(0),
            Rect::new(Point::new(480_000, 230_000), Point::new(520_000, 249_500)),
        )
        .unwrap();
        let pkg = b.build().unwrap();
        let mut l = Layout::new(&pkg);
        // Route passes 500 nm above the obstacle — way below 2 µm + half wire.
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 250_000), (750_000, 250_000)]));
        let rep = check(&pkg, &l);
        assert!(rep.violations().iter().any(|v| matches!(
            v,
            Violation::Spacing { b: ItemRef::Obstacle(_), .. }
                | Violation::Spacing { a: ItemRef::Obstacle(_), .. }
        )));
    }
}
