//! Data model of a via-based multi-chip multi-layer InFO package.
//!
//! This crate captures the problem instance of the paper (§II): the die
//! outline, chips with their fan-in regions, rectangular I/O pads attached
//! to the top RDL, octagonal bump pads attached to the bottom RDL,
//! pre-assigned two-pad nets, rectangular obstacles, the wire/via layer
//! stack, and the design rules (minimum spacing, wire width, via width).
//!
//! It also captures routing *results*: planar [`Route`]s (X-architecture
//! polylines on a wire layer), [`Via`]s (regular octagons spanning adjacent
//! wire layers), the aggregate [`Layout`], a full design-rule checker
//! ([`drc`]) that validates spacing, angle rules, non-crossing, and net
//! connectivity, plus statistics ([`stats`]) and an SVG renderer ([`svg`]).
//!
//! # Units
//!
//! All coordinates and widths are integer **nanometers**; lengths in
//! reports are **micrometers** (`f64`).
//!
//! # Example
//!
//! ```
//! use info_geom::{Point, Rect};
//! use info_model::{DesignRules, PackageBuilder};
//!
//! # fn main() -> Result<(), info_model::BuildError> {
//! let mut b = PackageBuilder::new(
//!     Rect::new(Point::new(0, 0), Point::new(1_000_000, 1_000_000)),
//!     DesignRules::default(),
//!     2, // wire layers
//! );
//! let chip = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 400_000)));
//! let a = b.add_io_pad(chip, Point::new(150_000, 150_000))?;
//! let bump = b.add_bump_pad(Point::new(700_000, 700_000))?;
//! b.add_net(a, bump)?;
//! let pkg = b.build()?;
//! assert_eq!(pkg.nets().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod drc;
pub mod stats;
pub mod svg;

mod ids;
mod layout;
mod netlist;
mod package;
mod route;
mod rules;

pub use ids::{ChipId, NetId, ObstacleId, PadId, RouteId, ViaId, WireLayer};
pub use layout::Layout;
pub use netlist::{pad_by_file_order, parse_package, write_package, ParseError};
pub use package::{
    BuildError, Chip, Net, Obstacle, Pad, PadKind, Package, PackageBuilder, PreVia,
};
pub use route::{Route, Via};
pub use rules::DesignRules;

/// Nanometers per micrometer, for reporting conversions.
pub const NM_PER_UM: f64 = 1_000.0;
