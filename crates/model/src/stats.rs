//! Layout statistics matching the paper's Table I reporting.

use crate::drc::{self, DrcReport};
use crate::ids::NetId;
use crate::layout::Layout;
use crate::package::Package;
use crate::NM_PER_UM;
use std::fmt;

/// Aggregate quality metrics of a layout.
///
/// Matches the paper's reporting conventions: routability is the fraction
/// of pre-assigned nets that are fully routed (connected and
/// violation-free), and total wirelength counts **only routed nets**
/// ("the wirelength reported in Table I counts only the routed nets").
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutStats {
    /// Number of pre-assigned nets `|N|`.
    pub total_nets: usize,
    /// Nets that are connected and implicated in no DRC violation.
    pub routed_nets: usize,
    /// `100 · routed / total`.
    pub routability_pct: f64,
    /// Total centerline wirelength of routed nets, in µm.
    pub total_wirelength_um: f64,
    /// Number of vias placed (all nets).
    pub via_count: usize,
    /// Number of DRC violations of any kind.
    pub violation_count: usize,
}

impl LayoutStats {
    /// Computes statistics, running a full DRC pass internally.
    pub fn compute(package: &Package, layout: &Layout) -> Self {
        let report = drc::check(package, layout);
        Self::from_report(package, layout, &report)
    }

    /// Computes statistics from an existing DRC report (avoids re-checking).
    pub fn from_report(package: &Package, layout: &Layout, report: &DrcReport) -> Self {
        let total = package.nets().len();
        let routed: Vec<NetId> = package
            .nets()
            .iter()
            .map(|n| n.id)
            .filter(|&id| layout.has_geometry(id) && !report.dirty_nets().contains(&id))
            .collect();
        let wl_nm: f64 = layout.wirelength_over(routed.iter().copied());
        LayoutStats {
            total_nets: total,
            routed_nets: routed.len(),
            routability_pct: if total == 0 {
                100.0
            } else {
                100.0 * routed.len() as f64 / total as f64
            },
            total_wirelength_um: wl_nm / NM_PER_UM,
            via_count: layout.via_count(),
            violation_count: report.violations().len(),
        }
    }

    /// Whether every net is routed.
    pub fn fully_routed(&self) -> bool {
        self.routed_nets == self.total_nets
    }
}

/// Per-net routing status for detailed reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// The net.
    pub net: NetId,
    /// Whether the net counts as routed (connected, violation-free).
    pub routed: bool,
    /// Centerline wirelength in µm (0 when no geometry exists).
    pub wirelength_um: f64,
    /// Number of vias the net uses.
    pub via_count: usize,
    /// Number of planar routes (layer runs).
    pub route_count: usize,
}

/// Produces a per-net breakdown from an existing DRC report.
pub fn net_reports(package: &Package, layout: &Layout, report: &DrcReport) -> Vec<NetReport> {
    package
        .nets()
        .iter()
        .map(|n| NetReport {
            net: n.id,
            routed: layout.has_geometry(n.id) && !report.dirty_nets().contains(&n.id),
            wirelength_um: layout.net_wirelength(n.id) / NM_PER_UM,
            via_count: layout.vias_of(n.id).count(),
            route_count: layout.routes_of(n.id).count(),
        })
        .collect()
}

impl fmt::Display for LayoutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routability {:.1}% ({}/{}), wirelength {:.0} µm, {} vias, {} violations",
            self.routability_pct,
            self.routed_nets,
            self.total_nets,
            self.total_wirelength_um,
            self.via_count,
            self.violation_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WireLayer;
    use crate::package::PackageBuilder;
    use crate::rules::DesignRules;
    use info_geom::{Point, Polyline, Rect};

    fn two_net_package() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let a1 = b.add_io_pad(c1, Point::new(250_000, 200_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(750_000, 200_000)).unwrap();
        let b1 = b.add_io_pad(c1, Point::new(250_000, 300_000)).unwrap();
        let b2 = b.add_io_pad(c2, Point::new(750_000, 300_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(b1, b2).unwrap();
        b.build().unwrap()
    }

    fn pl(pts: &[(i64, i64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn half_routed_package() {
        let pkg = two_net_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (750_000, 200_000)]));
        let s = LayoutStats::compute(&pkg, &l);
        assert_eq!(s.total_nets, 2);
        assert_eq!(s.routed_nets, 1);
        assert!((s.routability_pct - 50.0).abs() < 1e-9);
        // Only the routed net's length counts: 500 µm.
        assert!((s.total_wirelength_um - 500.0).abs() < 1e-6);
        assert!(!s.fully_routed());
    }

    #[test]
    fn fully_routed_package() {
        let pkg = two_net_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (750_000, 200_000)]));
        l.add_route(NetId(1), WireLayer(0), pl(&[(250_000, 300_000), (750_000, 300_000)]));
        let s = LayoutStats::compute(&pkg, &l);
        assert!(s.fully_routed());
        assert_eq!(s.violation_count, 0);
        assert!((s.total_wirelength_um - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn per_net_breakdown() {
        let pkg = two_net_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (750_000, 200_000)]));
        let report = crate::drc::check(&pkg, &l);
        let nets = net_reports(&pkg, &l, &report);
        assert_eq!(nets.len(), 2);
        assert!(nets[0].routed);
        assert!((nets[0].wirelength_um - 500.0).abs() < 1e-6);
        assert_eq!(nets[0].route_count, 1);
        assert!(!nets[1].routed);
        assert_eq!(nets[1].wirelength_um, 0.0);
    }

    #[test]
    fn violating_net_does_not_count_as_routed() {
        let pkg = two_net_package();
        let mut l = Layout::new(&pkg);
        l.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (750_000, 200_000)]));
        // Net 1 crosses net 0: both become dirty.
        l.add_route(
            NetId(1),
            WireLayer(0),
            pl(&[(250_000, 300_000), (350_000, 200_000), (450_000, 100_000), (750_000, 100_000)]),
        );
        let s = LayoutStats::compute(&pkg, &l);
        assert_eq!(s.routed_nets, 0, "crossing taints both nets");
        assert!(s.violation_count > 0);
    }
}
