//! **Lin-ext**: the comparison baseline of the paper's evaluation (§IV).
//!
//! Lin-ext integrates the concurrent routing method of the state-of-the-art
//! InFO RDL router of Lin, Lin and Chang (ICCAD 2016) \[11\] with an
//! A\*-search sequential stage to improve its routability — exactly the
//! combination the paper benchmarks against. Its defining restrictions:
//!
//! - **No flexible vias.** Every pad carries a fixed via stack punching
//!   through all RDLs, and each net must be routed *within one single wire
//!   layer* (Fig. 2(a)).
//! - **Concentric-circle layer assignment.** Layer assignment looks at the
//!   nets around one chip at a time (a local view), unlike the paper's
//!   whole-fan-out-region weighted MPSC.
//!
//! The sequential extension reuses the same octagonal-tile A\* as the main
//! router but with via moves disabled, so every net stays on its chosen
//! layer.

mod concentric;
mod flow;

pub use concentric::{concentric_assignment, ConcentricAssignment};
pub use flow::{LinExtRouter, LinExtOutcome};
