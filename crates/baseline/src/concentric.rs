//! Concentric-circle layer assignment (after Lin et al., ICCAD 2016).
//!
//! The prior work models the nets around one chip as connections from an
//! inner circle (the chip's I/O pads, ordered by angle) to an outer circle
//! (the far terminals, ordered by angle). Under monotone ring-by-ring
//! routing, a set of nets is single-layer routable iff the outer order is
//! a circular-order-preserving image of the inner order; the largest such
//! subset is a longest *circularly increasing subsequence* of the outer
//! ranks. One subset is peeled per wire layer, chip by chip — a local view
//! per chip, which is exactly the limitation the paper's whole-fan-out
//! circular model removes (§IV analysis, first bullet).

use info_model::{NetId, Package};
use std::collections::BTreeMap;

/// Result of concentric-circle layer assignment.
#[derive(Debug, Clone, Default)]
pub struct ConcentricAssignment {
    /// `net → wire layer` for assigned nets.
    pub layer_of: BTreeMap<NetId, usize>,
    /// Nets no layer could take monotonically.
    pub unassigned: Vec<NetId>,
}

/// Longest increasing subsequence (strict) of `vals`; returns indices.
fn lis(vals: &[usize]) -> Vec<usize> {
    if vals.is_empty() {
        return Vec::new();
    }
    let n = vals.len();
    let mut tails: Vec<usize> = Vec::new(); // index of smallest tail per length
    let mut parent = vec![usize::MAX; n];
    for i in 0..n {
        let pos = tails.partition_point(|&t| vals[t] < vals[i]);
        if pos > 0 {
            parent[i] = tails[pos - 1];
        }
        if pos == tails.len() {
            tails.push(i);
        } else {
            tails[pos] = i;
        }
    }
    let mut out = Vec::new();
    let mut cur = *tails.last().expect("nonempty");
    loop {
        out.push(cur);
        if parent[cur] == usize::MAX {
            break;
        }
        cur = parent[cur];
    }
    out.reverse();
    out
}

/// Largest circularly-increasing subset: try every rotation of the value
/// space and keep the best plain LIS.
fn circular_lis(ranks: &[usize]) -> Vec<usize> {
    let n = ranks.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut best: Vec<usize> = Vec::new();
    for rot in 0..n {
        let vals: Vec<usize> = ranks.iter().map(|&r| (r + rot) % n).collect();
        let cand = lis(&vals);
        if cand.len() > best.len() {
            best = cand;
        }
    }
    best
}

/// Runs the per-chip concentric assignment over all wire layers.
pub fn concentric_assignment(package: &Package) -> ConcentricAssignment {
    let layers = package.wire_layer_count();
    let mut layer_of: BTreeMap<NetId, usize> = BTreeMap::new();

    for chip in package.chips() {
        let center = chip.outline.center();
        let angle = |p: info_geom::Point| -> f64 {
            let v = p - center;
            (v.dy as f64).atan2(v.dx as f64)
        };
        // Nets whose first terminal (an I/O pad) is on this chip and that
        // are still unassigned.
        let mut local: Vec<(NetId, f64, f64)> = package
            .nets()
            .iter()
            .filter(|n| {
                !layer_of.contains_key(&n.id) && package.pad(n.a).chip() == Some(chip.id)
            })
            .map(|n| {
                (
                    n.id,
                    angle(package.pad(n.a).center),
                    angle(package.pad(n.b).center),
                )
            })
            .collect();
        if local.is_empty() {
            continue;
        }
        // Inner order by pad angle; outer ranks by far-terminal angle.
        local.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut outer_sorted: Vec<usize> = (0..local.len()).collect();
        outer_sorted.sort_by(|&i, &j| local[i].2.total_cmp(&local[j].2).then(i.cmp(&j)));
        let mut rank = vec![0usize; local.len()];
        for (r, &i) in outer_sorted.iter().enumerate() {
            rank[i] = r;
        }

        let mut remaining: Vec<usize> = (0..local.len()).collect();
        for layer in 0..layers {
            if remaining.is_empty() {
                break;
            }
            let ranks: Vec<usize> = remaining.iter().map(|&i| rank[i]).collect();
            let picked_local = circular_lis(&ranks);
            if picked_local.is_empty() {
                break;
            }
            let picked: Vec<usize> = picked_local.iter().map(|&k| remaining[k]).collect();
            for &i in &picked {
                layer_of.insert(local[i].0, layer);
            }
            remaining.retain(|i| !picked.contains(i));
        }
    }

    let unassigned = package
        .nets()
        .iter()
        .map(|n| n.id)
        .filter(|id| !layer_of.contains_key(id))
        .collect();
    ConcentricAssignment { layer_of, unassigned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    #[test]
    fn lis_basics() {
        assert_eq!(lis(&[]), Vec::<usize>::new());
        assert_eq!(lis(&[5]), vec![0]);
        assert_eq!(lis(&[1, 2, 3]).len(), 3);
        assert_eq!(lis(&[3, 2, 1]).len(), 1);
        let picked = lis(&[2, 5, 3, 7, 1, 8]);
        assert_eq!(picked.len(), 4); // 2, 3, 7, 8
        for w in picked.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn circular_lis_handles_wraparound() {
        // 2, 3, 0, 1 is circularly increasing in full.
        assert_eq!(circular_lis(&[2, 3, 0, 1]).len(), 4);
        // Reversed order: any *pair* of values is still circularly ordered
        // (two nets never conflict in an annulus), but no triple is.
        assert_eq!(circular_lis(&[3, 2, 1, 0]).len(), 2);
        assert_eq!(circular_lis(&[0]).len(), 1);
        assert_eq!(circular_lis(&[]).len(), 0);
    }

    /// Parallel facing nets keep identical inner and outer orders: all on
    /// layer 0.
    #[test]
    fn parallel_nets_share_layer_zero() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(400_000, 600_000)));
        let c2 = b.add_chip(Rect::new(Point::new(800_000, 200_000), Point::new(1_100_000, 600_000)));
        for i in 0..3 {
            let y = 260_000 + 100_000 * i;
            let a = b.add_io_pad(c1, Point::new(380_000, y)).unwrap();
            let z = b.add_io_pad(c2, Point::new(820_000, y)).unwrap();
            b.add_net(a, z).unwrap();
        }
        let pkg = b.build().unwrap();
        let asg = concentric_assignment(&pkg);
        assert!(asg.unassigned.is_empty());
        assert!(asg.layer_of.values().all(|&l| l == 0), "{asg:?}");
    }

    /// Reversed pad order between the chips: at most two of the three
    /// chords stay circularly monotone per layer, so two layers are used.
    #[test]
    fn reversed_nets_spread_over_layers() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            3,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(400_000, 600_000)));
        let c2 = b.add_chip(Rect::new(Point::new(800_000, 200_000), Point::new(1_100_000, 600_000)));
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..3 {
            let y = 260_000 + 100_000 * i;
            left.push(b.add_io_pad(c1, Point::new(380_000, y)).unwrap());
            right.push(b.add_io_pad(c2, Point::new(820_000, y)).unwrap());
        }
        for i in 0..3usize {
            b.add_net(left[i], right[2 - i]).unwrap();
        }
        let pkg = b.build().unwrap();
        let asg = concentric_assignment(&pkg);
        assert!(asg.unassigned.is_empty());
        let layers: std::collections::BTreeSet<usize> = asg.layer_of.values().copied().collect();
        assert_eq!(layers.len(), 2, "{asg:?}");
    }

    #[test]
    fn too_few_layers_leaves_nets_unassigned() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(400_000, 600_000)));
        let c2 = b.add_chip(Rect::new(Point::new(800_000, 200_000), Point::new(1_100_000, 600_000)));
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..3 {
            let y = 260_000 + 100_000 * i;
            left.push(b.add_io_pad(c1, Point::new(380_000, y)).unwrap());
            right.push(b.add_io_pad(c2, Point::new(820_000, y)).unwrap());
        }
        for i in 0..3usize {
            b.add_net(left[i], right[2 - i]).unwrap();
        }
        let pkg = b.build().unwrap();
        let asg = concentric_assignment(&pkg);
        // One layer takes the largest circularly-monotone pair; the third
        // net has nowhere to go.
        assert_eq!(asg.layer_of.len(), 2);
        assert_eq!(asg.unassigned.len(), 1);
    }
}
