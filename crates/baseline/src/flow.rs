//! The Lin-ext routing flow: concentric assignment + single-layer routing
//! + via-free sequential A\*.

use crate::concentric::concentric_assignment;
use info_model::{drc::DrcReport, stats::LayoutStats, Layout, NetId, Package, PadKind, WireLayer};
use info_router::RouterConfig;
use info_tile::{astar, realize, RoutingSpace};
use std::time::{Duration, Instant};

/// Everything the baseline produced.
#[derive(Debug, Clone)]
pub struct LinExtOutcome {
    /// Final layout.
    pub layout: Layout,
    /// DRC-verified statistics.
    pub stats: LayoutStats,
    /// Full DRC report.
    pub drc: DrcReport,
    /// Total runtime.
    pub runtime: Duration,
    /// Nets committed by the concurrent (concentric) stage.
    pub concurrent_routed: usize,
    /// Nets committed by the sequential extension.
    pub sequential_routed: usize,
    /// Nets that failed to route.
    pub failed: Vec<NetId>,
}

/// The baseline router. Reuses the main router's tile-space configuration
/// so runtime comparisons are apples-to-apples, but never uses flexible
/// vias: every net lives on one wire layer, reached through fixed pad via
/// stacks.
#[derive(Debug, Clone, Default)]
pub struct LinExtRouter {
    cfg: RouterConfig,
}

impl LinExtRouter {
    /// Creates a baseline router (only the tile-space fields of the
    /// configuration are used).
    pub fn new(cfg: RouterConfig) -> Self {
        LinExtRouter { cfg }
    }

    /// Routes all nets of a package under the no-flexible-via regime.
    pub fn route(&self, package: &Package) -> LinExtOutcome {
        let t0 = Instant::now();
        let mut layout = Layout::new(package);
        let asg = concentric_assignment(package);

        // --- Concurrent stage: each assigned net is routed on its
        // assigned layer only (the ring-by-ring detailed router of the
        // prior work, realized here with the same tile A\* used everywhere
        // for comparability, vias disabled).
        let mut space = RoutingSpace::build(
            package,
            &layout,
            info_router::sequential::space_config(package, &self.cfg),
        );
        let mut leftover: Vec<NetId> = asg.unassigned.clone();
        let mut concurrent_routed = 0usize;
        for (&net, &layer) in &asg.layer_of {
            if try_layer(package, &mut layout, &mut space, net, WireLayer(layer as u8)) {
                concurrent_routed += 1;
            } else {
                leftover.push(net);
            }
        }

        // --- Sequential extension: via-free A\* per net, trying each layer.
        let mut sequential_routed = 0usize;
        let mut failed = Vec::new();
        leftover.sort_unstable();
        for net in leftover {
            if try_sequential_single_layer(package, &mut layout, &mut space, net) {
                sequential_routed += 1;
            } else {
                failed.push(net);
            }
        }

        let report = info_model::drc::check(package, &layout);
        let stats = LayoutStats::from_report(package, &layout, &report);
        LinExtOutcome {
            layout,
            stats,
            drc: report,
            runtime: t0.elapsed(),
            concurrent_routed,
            sequential_routed,
            failed,
        }
    }
}

/// Attempts one net on one specific layer with the via-free A\*; commits
/// (with fixed pad stacks) on success.
fn try_layer(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    net: NetId,
    wl: WireLayer,
) -> bool {
    let n = package.net(net);
    let pa = package.pad(n.a).center;
    let pb = package.pad(n.b).center;
    let Some(found) = astar::route_with(space, net, (wl, pa), (wl, pb), false) else {
        return false;
    };
    let Some(real) = realize::realize(&found, (wl, pa), (wl, pb)) else {
        return false;
    };
    if real.routes.iter().any(|(_, pl)| pl.validate().is_err()) {
        return false;
    }
    let crossing = real
        .routes
        .iter()
        .any(|(l, pl)| layout.routes_on(*l).any(|r| r.net != net && pl.crosses(&r.path)));
    if crossing {
        return false;
    }
    // Clearance trial incl. the fixed stacks this layer choice needs.
    let mut proposal =
        info_router::trial::Proposal { routes: real.routes.clone(), vias: Vec::new() };
    let n2 = package.net(net);
    for pad_id in [n2.a, n2.b] {
        let pad = package.pad(pad_id);
        match pad.kind {
            PadKind::Io { .. } if wl > WireLayer::TOP => {
                proposal.vias.push((pad.center, WireLayer::TOP, wl));
            }
            PadKind::Bump if wl < package.bottom_layer() => {
                proposal.vias.push((pad.center, wl, package.bottom_layer()));
            }
            _ => {}
        }
    }
    if !info_router::trial::clearance_ok(package, layout, net, &proposal) {
        return false;
    }
    let dirty = real.bbox();
    add_pad_stacks(package, layout, net, wl);
    for (l, pl) in real.routes {
        layout.add_route(net, l, pl);
    }
    if let Some(d) = dirty {
        space.rebuild_dirty(package, layout, d);
    }
    true
}

/// Fixed via stacks connecting both pads of `net` to `layer`.
fn add_pad_stacks(package: &Package, layout: &mut Layout, net: NetId, layer: WireLayer) {
    let n = package.net(net);
    let sv = package.rules().via_width;
    for pad_id in [n.a, n.b] {
        let pad = package.pad(pad_id);
        match pad.kind {
            PadKind::Io { .. } => {
                if layer > WireLayer::TOP {
                    layout.add_via(net, pad.center, sv, WireLayer::TOP, layer, true);
                }
            }
            PadKind::Bump => {
                let bottom = package.bottom_layer();
                if layer < bottom {
                    layout.add_via(net, pad.center, sv, layer, bottom, true);
                }
            }
        }
    }
}

/// Via-free A\* on each layer in turn; commits on the first success.
fn try_sequential_single_layer(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    net: NetId,
) -> bool {
    for layer in 0..package.wire_layer_count() {
        if try_layer(package, layout, space, net, WireLayer(layer as u8)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    #[test]
    fn entangled_nets_need_three_layers_without_vias() {
        // The Fig. 2 pattern from the shared generator: three reversed
        // nets in a sealed channel. With 3 layers the baseline routes
        // everything…
        let out3 = LinExtRouter::default().route(&info_gen::patterns::entangled(3, 3));
        assert!(out3.stats.fully_routed(), "{}; failed {:?}", out3.stats, out3.failed);
        // …but with 2 layers at least one net must fail (no flexible
        // vias) — exactly the Fig. 2 contrast with the via-based router.
        let out2 = LinExtRouter::default().route(&info_gen::patterns::entangled(3, 2));
        assert!(
            out2.stats.routed_nets < 3,
            "two layers cannot hold three pairwise-crossing single-layer nets: {}",
            out2.stats
        );
    }

    #[test]
    fn stacks_are_fixed_vias() {
        let out = LinExtRouter::default().route(&info_gen::patterns::entangled(3, 3));
        assert!(out.layout.vias().all(|v| v.fixed));
        // Nets on layers below the top need stacks.
        assert!(out.layout.via_count() >= 2, "vias: {}", out.layout.via_count());
    }

    #[test]
    fn simple_board_nets_route_cleanly() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 800_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 700_000)));
        for i in 0..3i64 {
            let y = 200_000 + 150_000 * i;
            let io = b.add_io_pad(c, Point::new(380_000, y)).unwrap();
            let g = b.add_bump_pad(Point::new(700_000, y)).unwrap();
            b.add_net(io, g).unwrap();
        }
        let pkg = b.build().unwrap();
        let out = LinExtRouter::default().route(&pkg);
        assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
        assert_eq!(out.stats.violation_count, 0, "{:#?}", out.drc.violations());
    }
}
