//! The five-stage routing flow (Fig. 3), fault-isolated.
//!
//! Every stage runs under a guard ([`crate::resilience::guard_stage`]):
//! panics are caught, typed errors are recorded, and each failure degrades
//! the flow instead of aborting it —
//!
//! - preprocess / assign / concurrent failure → the pre-stage layout is
//!   restored and every net is routed sequentially;
//! - LP failure → the affected component keeps its pre-LP geometry (inside
//!   the stage), and a stage-level panic restores the whole pre-LP layout;
//! - a sequential per-net failure marks only that net unrouted.
//!
//! `route` therefore always returns a [`RouteOutcome`] whose layout passed
//! through the same DRC verification as a clean run; what happened in each
//! stage is recorded in [`FlowDiagnostics`].

use crate::assign::assign_layers;
use crate::concurrent::route_concurrent;
use crate::config::RouterConfig;
use crate::lpopt::{self, LpOptReport};
use crate::preprocess::preprocess;
use crate::resilience::{guard_stage, FlowCtx, FlowDiagnostics, Stage, StageOutcome};
use crate::sequential::{route_sequential, SequentialResult};
use crate::warm::WarmSpaceCache;
use info_model::{drc::DrcReport, stats::LayoutStats, Layout, NetId, Package};
use info_telemetry::{AttemptOutcome, AttemptRecord, Counter, Pass, Sink, TelemetryReport};
use info_tile::CancelToken;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Stage 1: preprocessing.
    pub preprocess: Duration,
    /// Stage 2: weighted-MPSC concurrent routing.
    pub concurrent: Duration,
    /// Stage 3+4: routing-graph construction and sequential A\*.
    pub sequential: Duration,
    /// Stage 5: LP-based layout optimization (all passes).
    pub lp: Duration,
    /// Aggregate A\* search statistics of the sequential stage (nodes
    /// expanded, window escalations, open-list peak). Totals include
    /// discarded speculative plans, so they can vary with `threads`;
    /// the routed layout never does.
    pub search: info_tile::SearchStats,
}

impl StageTimings {
    /// Total runtime.
    pub fn total(&self) -> Duration {
        self.preprocess + self.concurrent + self.sequential + self.lp
    }
}

/// How far the flow got before returning — the anytime contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every stage ran to its natural end; the result is the router's
    /// full answer.
    Full,
    /// The flow was interrupted — cancel, job deadline, or a tripped
    /// stage budget — and returned the legal partial layout it had
    /// committed so far. Per-net detail is in [`RouteOutcome::net_status`].
    Degraded,
}

/// What happened to one net, for anytime reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetStatus {
    /// Committed into the returned layout.
    Routed,
    /// Attempted and not routable in the budget's search effort.
    Failed,
    /// Never attempted (or aborted mid-search) because the flow was
    /// interrupted — a longer budget may well route it.
    Skipped,
}

impl NetStatus {
    /// Stable lowercase label (serve-layer responses, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            NetStatus::Routed => "routed",
            NetStatus::Failed => "failed",
            NetStatus::Skipped => "skipped",
        }
    }
}

/// Everything the router produced.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The final layout.
    pub layout: Layout,
    /// Table-I-style statistics (DRC-verified).
    pub stats: LayoutStats,
    /// The full DRC report of the final layout.
    pub drc: DrcReport,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Nets committed by the concurrent stage.
    pub concurrent_routed: usize,
    /// Nets committed by the sequential stage.
    pub sequential_routed: usize,
    /// Nets that failed to route.
    pub failed: Vec<NetId>,
    /// Full answer or deadline-truncated partial answer.
    pub completion: Completion,
    /// True when the flow's cancel token was cancelled (explicitly or by
    /// a check trip), as opposed to a deadline-only truncation.
    pub cancelled: bool,
    /// Per-net disposition, in package net order. Only present-tense
    /// facts: a `Skipped` net is routable work an interrupted flow never
    /// got to.
    pub net_status: Vec<(NetId, NetStatus)>,
    /// LP report of the intermediate pass (after concurrent routing).
    pub lp_mid: Option<LpOptReport>,
    /// LP report of the final pass.
    pub lp_final: Option<LpOptReport>,
    /// Per-stage outcomes: what ran clean, what was recovered from, what
    /// timed out, and which injected faults fired.
    pub diagnostics: FlowDiagnostics,
    /// Telemetry collected during the run (stage spans, counters,
    /// histograms, and the per-net route journal). `None` unless
    /// [`RouterConfig::telemetry`] is set; the layout is byte-identical
    /// either way.
    pub telemetry: Option<TelemetryReport>,
    /// Convergence statistics of the negotiated-congestion front
    /// (`Some` exactly when [`RouterConfig::congestion_mode`] is set and
    /// the sequential stage ran).
    pub negotiation: Option<crate::sequential::NegotiationStats>,
    /// ECO telemetry (`Some` exactly when this outcome came from
    /// [`InfoRouter::reroute_delta`]): nets re-routed vs reused, cells
    /// invalidated, warm-space and warm-basis reuse.
    pub eco: Option<crate::eco::EcoStats>,
    /// Geometry of nets an ECO deleted, kept so a later
    /// [`InfoRouter::reroute_delta`] restoring the identical pad pair can
    /// re-attach the route verbatim instead of searching (empty on full
    /// routes; see [`crate::eco::EcoStash`]).
    pub eco_stash: Vec<crate::eco::EcoStash>,
}

/// The via-based multi-chip multi-layer InFO RDL router.
#[derive(Debug, Clone, Default)]
pub struct InfoRouter {
    pub(crate) cfg: RouterConfig,
    /// Shared warm-start cache for the sequential stage's routing space;
    /// `None` builds cold every run. Cloning the router shares the cache.
    pub(crate) warm: Option<Arc<WarmSpaceCache>>,
    /// Externally owned cancel token the flow observes; `None` gives each
    /// `route` call a private token nothing external can trip.
    pub(crate) cancel: Option<CancelToken>,
}

impl InfoRouter {
    /// Creates a router with the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        InfoRouter { cfg, warm: None, cancel: None }
    }

    /// Shares `cache` across this router's runs (and its clones): repeat
    /// jobs on the same circuit skip the sequential-stage space build.
    pub fn with_warm_cache(mut self, cache: Arc<WarmSpaceCache>) -> Self {
        self.warm = Some(cache);
        self
    }

    /// Makes `route` observe `token`: cancelling it (or letting its job
    /// deadline pass) interrupts the flow mid-stage and yields a
    /// [`Completion::Degraded`] outcome with the legal partial layout.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Routes all pre-assigned nets of a package.
    ///
    /// Stage order follows the paper (Fig. 3); per §IV the LP optimization
    /// also runs once right after concurrent routing so the shortened
    /// wires release routing resources for the sequential stage.
    ///
    /// No panic or solver failure escapes this method: each stage runs
    /// under a panic guard with rollback, and failures degrade the result
    /// (details in `diagnostics`) instead of propagating.
    pub fn route(&self, package: &Package) -> RouteOutcome {
        let ctx = match &self.cancel {
            Some(token) => FlowCtx::with_token(self.cfg.fault_plan, token.clone()),
            None => FlowCtx::new(self.cfg.fault_plan),
        };
        let budget = self.cfg.stage_budget;
        let tel = if self.cfg.telemetry { Sink::enabled() } else { Sink::disabled() };
        let mut layout = Layout::new(package);
        let mut timings = StageTimings::default();
        let mut diagnostics = FlowDiagnostics::default();
        let mut lp_mid = None;

        // --- Stage 1 + 2: any failure here degrades to all-sequential.
        let mut concurrent_done: Vec<NetId> = Vec::new();
        if self.cfg.concurrent_enabled {
            let t0 = Instant::now();
            let (pre, outcome) = guard_stage(Stage::Preprocess, &ctx, budget, || {
                preprocess(package, &self.cfg, &ctx)
            });
            diagnostics.preprocess = outcome;
            timings.preprocess = t0.elapsed();

            let t1 = Instant::now();
            if let Some(pre) = pre {
                let (asg, outcome) = guard_stage(Stage::Assign, &ctx, budget, || {
                    assign_layers(&pre, &self.cfg, package.wire_layer_count(), &ctx)
                });
                diagnostics.assign = outcome;
                if let Some(asg) = asg {
                    // The concurrent stage mutates the layout; snapshot so
                    // a mid-commit failure can be rolled back cleanly.
                    let snapshot = layout.clone();
                    let (res, outcome) = guard_stage(Stage::Concurrent, &ctx, budget, || {
                        route_concurrent(package, &mut layout, &pre, &asg, &self.cfg, &ctx)
                    });
                    diagnostics.concurrent = outcome;
                    match res {
                        Some(res) => {
                            tel.count(Counter::ConcurrentCommitted, res.routed.len() as u64);
                            tel.count(Counter::ConcurrentSkipped, res.skipped.len() as u64);
                            if tel.is_enabled() {
                                // One journal record per concurrent commit;
                                // the committed wirelength stands in for the
                                // accept cost (this stage is pattern-based,
                                // not A\*-driven).
                                for &id in &res.routed {
                                    let wl: f64 = layout
                                        .routes_of(id)
                                        .map(|r| r.path.length())
                                        .sum();
                                    tel.record(AttemptRecord {
                                        net: id.0,
                                        pass: Pass::Concurrent,
                                        windowed: false,
                                        escalated: false,
                                        expansions: 0,
                                        outcome: AttemptOutcome::Routed { f: wl, g: wl },
                                        victims: Vec::new(),
                                    });
                                }
                            }
                            concurrent_done = res.routed;
                        }
                        None => layout = snapshot,
                    }
                }
            }
            timings.concurrent = t1.elapsed();

            // Mid-flight LP pass: shorten the concurrent wires to release
            // resources before sequential routing (§IV, first bullet of
            // the analysis).
            if self.cfg.lp_enabled && !concurrent_done.is_empty() {
                let t2 = Instant::now();
                let (rep, outcome) =
                    self.guarded_lp(Stage::LpMid, package, &mut layout, &ctx, budget, &tel);
                diagnostics.lp_mid = outcome;
                lp_mid = rep;
                timings.lp += t2.elapsed();
            }
        }

        // --- Stage 3 + 4.
        let t3 = Instant::now();
        let done: BTreeSet<NetId> = concurrent_done.iter().copied().collect();
        let remaining: Vec<NetId> =
            package.nets().iter().map(|n| n.id).filter(|id| !done.contains(id)).collect();
        let (seq, outcome) = guard_stage(Stage::Sequential, &ctx, budget, || {
            Ok(route_sequential(
                package,
                &mut layout,
                &remaining,
                &self.cfg,
                &ctx,
                self.warm.as_deref(),
                &tel,
            ))
        });
        diagnostics.sequential = outcome;
        let seq = seq.unwrap_or_else(|| {
            // A panic escaped the per-net guards (e.g. in the initial
            // space build). Per-net commits are atomic, so the layout
            // still only holds complete nets: reconstruct the result
            // from what actually landed.
            let mut s = SequentialResult::default();
            for &id in &remaining {
                if layout.routes_of(id).next().is_some() || layout.vias_of(id).next().is_some() {
                    s.routed.push(id);
                } else {
                    s.failed.push(id);
                }
            }
            s
        });
        diagnostics.net_failures = seq.recovered.clone();
        timings.sequential = t3.elapsed();
        timings.search = seq.search;

        // --- Stage 5.
        let mut lp_final = None;
        if self.cfg.lp_enabled {
            let t4 = Instant::now();
            let (rep, outcome) =
                self.guarded_lp(Stage::LpFinal, package, &mut layout, &ctx, budget, &tel);
            diagnostics.lp_final = outcome;
            lp_final = rep;
            timings.lp += t4.elapsed();
        }

        diagnostics.faults_fired = ctx.faults_fired();
        diagnostics.timings = timings;

        // Search-layer counters come from the authoritative stage totals
        // (they are thread-variant, like SearchStats itself; the journal
        // above is not).
        tel.count(Counter::Searches, seq.search.searches);
        tel.count(Counter::NodesExpanded, seq.search.nodes_expanded);
        tel.count(Counter::WindowEscalations, seq.search.window_escalations);
        tel.count(Counter::EscalationExpansions, seq.search.escalation_expansions);
        tel.count(Counter::HeuristicTightenings, seq.search.heuristic_tightenings);

        // --- Verification.
        let t5 = Instant::now();
        let report = info_model::drc::check_with(package, &layout, &tel);
        let drc_elapsed = t5.elapsed();
        if tel.is_enabled() {
            tel.record_span("preprocess", timings.preprocess.as_secs_f64());
            tel.record_span("concurrent", timings.concurrent.as_secs_f64());
            tel.record_span("sequential", timings.sequential.as_secs_f64());
            tel.record_span("lp", timings.lp.as_secs_f64());
            tel.record_span("drc_verify", drc_elapsed.as_secs_f64());
        }
        let stats = LayoutStats::from_report(package, &layout, &report);

        // Anytime disposition: the run is degraded when any interrupt was
        // observed — a live interrupt flag, a truncated stage, or nets the
        // sequential stage recorded as skipped.
        let truncated_stage = diagnostics
            .stages()
            .iter()
            .any(|(_, o)| matches!(o, StageOutcome::TimedOut | StageOutcome::Cancelled));
        let completion = if ctx.interrupted() || truncated_stage || !seq.skipped.is_empty() {
            Completion::Degraded
        } else {
            Completion::Full
        };
        let routed: BTreeSet<NetId> =
            concurrent_done.iter().chain(seq.routed.iter()).copied().collect();
        let skipped: BTreeSet<NetId> = seq.skipped.iter().copied().collect();
        let net_status: Vec<(NetId, NetStatus)> = package
            .nets()
            .iter()
            .map(|n| {
                let s = if routed.contains(&n.id) {
                    NetStatus::Routed
                } else if skipped.contains(&n.id) {
                    NetStatus::Skipped
                } else {
                    NetStatus::Failed
                };
                (n.id, s)
            })
            .collect();

        RouteOutcome {
            layout,
            stats,
            drc: report,
            timings,
            concurrent_routed: concurrent_done.len(),
            sequential_routed: seq.routed.len(),
            failed: seq.failed,
            completion,
            cancelled: ctx.cancelled(),
            net_status,
            lp_mid,
            lp_final,
            diagnostics,
            telemetry: tel.report(),
            negotiation: seq.negotiation,
            eco: None,
            eco_stash: Vec::new(),
        }
    }

    /// Re-routes the *delta* of an edited design instead of the whole
    /// die (DESIGN.md §4i).
    ///
    /// `changes` — net removals, additions, and re-pairings — is applied
    /// against `package` (the design `prior` was routed on). Untouched
    /// nets keep their prior geometry byte for byte; only the dirty-rect
    /// cells of the routing space are invalidated (epoch-stamped
    /// [`rebuild_dirty_multi`]); only impacted nets (fresh nets, prior
    /// failures, and nets whose segments intersect the dirty rects) go
    /// back through the sequential machinery; and the LP re-runs only on
    /// components touched by the edit. The returned outcome is expressed
    /// over the *edited* package ([`EcoChangeSet::plan`] exposes it and
    /// the net-id mapping), with [`RouteOutcome::eco`] carrying the
    /// delta telemetry.
    ///
    /// An invalid change set (unknown ids, overlapping edits, a pad used
    /// twice) is a typed [`RouterError::BadInput`]; nothing is routed.
    ///
    /// [`rebuild_dirty_multi`]: info_tile::RoutingSpace::rebuild_dirty_multi
    /// [`EcoChangeSet::plan`]: crate::eco::EcoChangeSet::plan
    pub fn reroute_delta(
        &self,
        package: &Package,
        prior: &RouteOutcome,
        changes: &crate::eco::EcoChangeSet,
    ) -> Result<RouteOutcome, crate::resilience::RouterError> {
        crate::eco::reroute_delta(self, package, prior, changes)
    }

    /// One guarded LP pass. Component-level solver failures are absorbed
    /// inside `optimize` (the component keeps its pre-LP geometry) but
    /// still surface as a recovered outcome; a stage-level panic restores
    /// the whole pre-LP layout.
    #[allow(clippy::too_many_arguments)]
    fn guarded_lp(
        &self,
        stage: Stage,
        package: &Package,
        layout: &mut Layout,
        ctx: &FlowCtx,
        budget: Option<Duration>,
        tel: &Sink,
    ) -> (Option<LpOptReport>, StageOutcome) {
        let snapshot = layout.clone();
        let (rep, outcome) = guard_stage(stage, ctx, budget, || {
            Ok(lpopt::optimize(package, layout, &self.cfg, ctx))
        });
        match rep {
            Some(rep) => {
                tel.count(Counter::LpPasses, 1);
                tel.count(Counter::LpIterations, rep.iterations as u64);
                let outcome = match (&outcome, rep.failures.first()) {
                    (StageOutcome::Ok, Some(e)) => StageOutcome::Recovered(e.clone()),
                    _ => outcome,
                };
                (Some(rep), outcome)
            }
            None => {
                *layout = snapshot;
                (None, outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    fn two_chip_package(nets_per_side: usize) -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
        let c2 = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));
        for i in 0..nets_per_side {
            let y = 300_000 + 70_000 * i as i64;
            let a = b.add_io_pad(c1, Point::new(480_000, y)).unwrap();
            let z = b.add_io_pad(c2, Point::new(920_000, y)).unwrap();
            b.add_net(a, z).unwrap();
        }
        // One chip-to-board net.
        let io = b.add_io_pad(c1, Point::new(480_000, 620_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 120_000)).unwrap();
        b.add_net(io, g).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_flow_routes_everything() {
        let pkg = two_chip_package(3);
        let cfg = RouterConfig::default().with_global_cells(10);
        let out = InfoRouter::new(cfg).route(&pkg);
        assert!(
            out.stats.fully_routed(),
            "stats: {}; failed: {:?}; violations: {:#?}",
            out.stats,
            out.failed,
            out.drc.violations()
        );
        assert_eq!(out.stats.violation_count, 0);
        assert!(out.concurrent_routed + out.sequential_routed >= pkg.nets().len());
        // A clean run reports clean diagnostics.
        assert!(out.diagnostics.all_ok(), "{:?}", out.diagnostics);
    }

    #[test]
    fn flow_without_concurrent_still_routes() {
        let pkg = two_chip_package(2);
        let cfg = RouterConfig::default().with_global_cells(10).without_concurrent();
        let out = InfoRouter::new(cfg).route(&pkg);
        assert_eq!(out.concurrent_routed, 0);
        assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    }

    #[test]
    fn flow_without_lp_still_routes() {
        let pkg = two_chip_package(2);
        let cfg = RouterConfig::default().with_global_cells(10).without_lp();
        let out = InfoRouter::new(cfg).route(&pkg);
        assert!(out.lp_mid.is_none() && out.lp_final.is_none());
        assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    }

    #[test]
    fn lp_never_worsens_wirelength() {
        let pkg = two_chip_package(3);
        let with_lp = InfoRouter::new(RouterConfig::default().with_global_cells(10)).route(&pkg);
        if let Some(rep) = &with_lp.lp_final {
            assert!(rep.wirelength_after <= rep.wirelength_before + 1.0);
        }
    }

    #[test]
    fn zero_stage_budget_still_returns_an_outcome() {
        let pkg = two_chip_package(2);
        let cfg = RouterConfig::default()
            .with_global_cells(10)
            .with_stage_budget(Duration::ZERO);
        let out = InfoRouter::new(cfg).route(&pkg);
        // Everything timed out; nothing panicked, and whatever partial
        // layout remains is DRC-clean apart from the unrouted nets.
        assert!(out
            .diagnostics
            .stages()
            .iter()
            .all(|(_, o)| !matches!(o, StageOutcome::Recovered(_))));
        assert!(out
            .drc
            .violations()
            .iter()
            .all(|v| matches!(v, info_model::drc::Violation::Disconnected { .. })));
    }
}
