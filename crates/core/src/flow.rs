//! The five-stage routing flow (Fig. 3).

use crate::assign::assign_layers;
use crate::concurrent::route_concurrent;
use crate::config::RouterConfig;
use crate::lpopt::{self, LpOptReport};
use crate::preprocess::preprocess;
use crate::sequential::route_sequential;
use info_model::{drc::DrcReport, stats::LayoutStats, Layout, NetId, Package};
use std::time::{Duration, Instant};

/// Wall-clock time spent in each stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage 1: preprocessing.
    pub preprocess: Duration,
    /// Stage 2: weighted-MPSC concurrent routing.
    pub concurrent: Duration,
    /// Stage 3+4: routing-graph construction and sequential A\*.
    pub sequential: Duration,
    /// Stage 5: LP-based layout optimization (all passes).
    pub lp: Duration,
}

impl StageTimings {
    /// Total runtime.
    pub fn total(&self) -> Duration {
        self.preprocess + self.concurrent + self.sequential + self.lp
    }
}

/// Everything the router produced.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The final layout.
    pub layout: Layout,
    /// Table-I-style statistics (DRC-verified).
    pub stats: LayoutStats,
    /// The full DRC report of the final layout.
    pub drc: DrcReport,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Nets committed by the concurrent stage.
    pub concurrent_routed: usize,
    /// Nets committed by the sequential stage.
    pub sequential_routed: usize,
    /// Nets that failed to route.
    pub failed: Vec<NetId>,
    /// LP report of the intermediate pass (after concurrent routing).
    pub lp_mid: Option<LpOptReport>,
    /// LP report of the final pass.
    pub lp_final: Option<LpOptReport>,
}

/// The via-based multi-chip multi-layer InFO RDL router.
#[derive(Debug, Clone, Default)]
pub struct InfoRouter {
    cfg: RouterConfig,
}

impl InfoRouter {
    /// Creates a router with the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        InfoRouter { cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Routes all pre-assigned nets of a package.
    ///
    /// Stage order follows the paper (Fig. 3); per §IV the LP optimization
    /// also runs once right after concurrent routing so the shortened
    /// wires release routing resources for the sequential stage.
    pub fn route(&self, package: &Package) -> RouteOutcome {
        let mut layout = Layout::new(package);
        let mut timings = StageTimings::default();
        let mut lp_mid = None;

        // --- Stage 1 + 2.
        let mut concurrent_done: Vec<NetId> = Vec::new();
        if self.cfg.concurrent_enabled {
            let t0 = Instant::now();
            let pre = preprocess(package, &self.cfg);
            timings.preprocess = t0.elapsed();

            let t1 = Instant::now();
            let asg = assign_layers(&pre, &self.cfg, package.wire_layer_count());
            let res = route_concurrent(package, &mut layout, &pre, &asg, &self.cfg);
            concurrent_done = res.routed;
            timings.concurrent = t1.elapsed();

            // Mid-flight LP pass: shorten the concurrent wires to release
            // resources before sequential routing (§IV, first bullet of
            // the analysis).
            if self.cfg.lp_enabled && !concurrent_done.is_empty() {
                let t2 = Instant::now();
                lp_mid = Some(lpopt::optimize(package, &mut layout, &self.cfg));
                timings.lp += t2.elapsed();
            }
        }

        // --- Stage 3 + 4.
        let t3 = Instant::now();
        let remaining: Vec<NetId> = package
            .nets()
            .iter()
            .map(|n| n.id)
            .filter(|id| !concurrent_done.contains(id))
            .collect();
        let seq = route_sequential(package, &mut layout, &remaining, &self.cfg);
        timings.sequential = t3.elapsed();

        // --- Stage 5.
        let mut lp_final = None;
        if self.cfg.lp_enabled {
            let t4 = Instant::now();
            lp_final = Some(lpopt::optimize(package, &mut layout, &self.cfg));
            timings.lp += t4.elapsed();
        }

        // --- Verification.
        let report = info_model::drc::check(package, &layout);
        let stats = LayoutStats::from_report(package, &layout, &report);
        RouteOutcome {
            layout,
            stats,
            drc: report,
            timings,
            concurrent_routed: concurrent_done.len(),
            sequential_routed: seq.routed.len(),
            failed: seq.failed,
            lp_mid,
            lp_final,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    fn two_chip_package(nets_per_side: usize) -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
        let c2 = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));
        for i in 0..nets_per_side {
            let y = 300_000 + 70_000 * i as i64;
            let a = b.add_io_pad(c1, Point::new(480_000, y)).unwrap();
            let z = b.add_io_pad(c2, Point::new(920_000, y)).unwrap();
            b.add_net(a, z).unwrap();
        }
        // One chip-to-board net.
        let io = b.add_io_pad(c1, Point::new(480_000, 620_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 120_000)).unwrap();
        b.add_net(io, g).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_flow_routes_everything() {
        let pkg = two_chip_package(3);
        let cfg = RouterConfig::default().with_global_cells(10);
        let out = InfoRouter::new(cfg).route(&pkg);
        assert!(
            out.stats.fully_routed(),
            "stats: {}; failed: {:?}; violations: {:#?}",
            out.stats,
            out.failed,
            out.drc.violations()
        );
        assert_eq!(out.stats.violation_count, 0);
        assert!(out.concurrent_routed + out.sequential_routed >= pkg.nets().len());
    }

    #[test]
    fn flow_without_concurrent_still_routes() {
        let pkg = two_chip_package(2);
        let cfg = RouterConfig::default().with_global_cells(10).without_concurrent();
        let out = InfoRouter::new(cfg).route(&pkg);
        assert_eq!(out.concurrent_routed, 0);
        assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    }

    #[test]
    fn flow_without_lp_still_routes() {
        let pkg = two_chip_package(2);
        let cfg = RouterConfig::default().with_global_cells(10).without_lp();
        let out = InfoRouter::new(cfg).route(&pkg);
        assert!(out.lp_mid.is_none() && out.lp_final.is_none());
        assert!(out.stats.fully_routed(), "{}; {:?}", out.stats, out.failed);
    }

    #[test]
    fn lp_never_worsens_wirelength() {
        let pkg = two_chip_package(3);
        let with_lp = InfoRouter::new(RouterConfig::default().with_global_cells(10)).route(&pkg);
        if let Some(rep) = &with_lp.lp_final {
            assert!(rep.wirelength_after <= rep.wirelength_before + 1.0);
        }
    }
}
