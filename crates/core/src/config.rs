//! Router configuration.

use crate::resilience::FaultPlan;
use info_geom::Coord;
use std::time::Duration;

/// Tuning parameters of the five-stage flow.
///
/// Defaults reproduce the paper's experimental setup (§IV): chord-weight
/// parameters `α, β, γ, δ = 0.1, 1, 1, 2` and a 30 × 30 global-cell grid.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Weight of the detour rate in Eq. (2).
    pub alpha: f64,
    /// Weight of the maximum overflow term in Eq. (2).
    pub beta: f64,
    /// Weight of the average overflow term in Eq. (2).
    pub gamma: f64,
    /// Logarithm base / additive constant in Eq. (2).
    pub delta: f64,
    /// Global cells along each axis (the paper uses 30 × 30 = 900).
    pub global_cells: usize,
    /// Run stage 2 (weighted-MPSC concurrent routing). Disabling it routes
    /// every net sequentially (ablation A1/A3 support).
    pub concurrent_enabled: bool,
    /// Use the congestion/detour weights in layer assignment; when false,
    /// plain (unweighted) Supowit MPSC is used (ablation A1).
    pub weighted_mpsc: bool,
    /// Run stage 5 (LP-based layout optimization).
    pub lp_enabled: bool,
    /// Cap on LP crossing-repair iterations (the paper bounds them by the
    /// variable count; 0 means "use the theoretical bound").
    pub lp_max_iterations: usize,
    /// Pads closer than this to their chip boundary count as peripheral
    /// I/O, in multiples of the pad pitch heuristic (nm).
    pub peripheral_margin: Coord,
    /// Extra cost per via in A\*, as a multiple of the via width.
    pub via_cost_factor: f64,
    /// Worker threads for the sequential stage's speculative net planner.
    /// `1` (the default) routes on the caller's thread; any value produces
    /// bit-identical layouts (plans are applied in net order, and a plan
    /// whose read set was invalidated by an earlier commit is recomputed),
    /// so this trades CPU for wall-clock only. Forced to 1 while a fault
    /// plan is armed at any site other than `pool.worker`, because
    /// injected-fault trigger counts are order-sensitive (`pool.worker`
    /// faults only kill speculative plans, which are recomputed
    /// authoritatively, so they keep the configured count).
    pub threads: usize,
    /// Windowed A\*: each sequential-stage search first explores an
    /// inflated bounding box of its pad pair and escalates to the full
    /// tile graph only when the windowed result is not provably identical
    /// (see `info_tile::astar`). Lossless either way; `false` forces every
    /// search onto the full graph (differential-testing baseline).
    pub search_window: bool,
    /// Per-stage wall-clock budget. Stages check it cooperatively (per
    /// net, per candidate, per LP iteration) and stop early with partial
    /// results when it trips; `None` disables the budget.
    pub stage_budget: Option<Duration>,
    /// Deterministic fault-injection plan (testing aid; the default plan
    /// injects nothing and the checks are branch-predictable no-ops).
    pub fault_plan: FaultPlan,
    /// Collect routing telemetry (stage spans, counters, histograms, and
    /// the per-net route journal) into [`RouteOutcome::telemetry`]. Off by
    /// default: the disabled sink is a no-op and the routed layout is
    /// byte-identical either way.
    ///
    /// [`RouteOutcome::telemetry`]: crate::flow::RouteOutcome::telemetry
    pub telemetry: bool,
    /// ALT landmark count for the sequential stage's A\* heuristic: `> 0`
    /// builds per-stage landmark distance tables (`info_tile::landmarks`)
    /// and tightens the heuristic to the max of the geometric bound and
    /// the landmark lower bound. `0` (the default) keeps the heuristic
    /// purely geometric. The tightened heuristic is still admissible and
    /// consistent, so per-net path *costs* are unchanged — but equal-cost
    /// paths may be broken differently, so layouts are only guaranteed
    /// identical to the `0` setting when no ties exist.
    pub alt_landmarks: usize,
    /// Reuse epoch-stamped edge-legality verdicts across searches (the
    /// adjacency cache of `info_tile::space`). Lossless; `false` re-does
    /// the clearance/crossing geometry on every enumeration (the ablation
    /// baseline).
    pub legality_cache: bool,
    /// Collect traced read cells in the generation-stamped scratch arena
    /// instead of a per-search `BTreeSet`. Identical output either way;
    /// `false` is the ablation baseline.
    pub search_arena: bool,
    /// Negotiated-congestion sequential routing (DESIGN.md §4h): replace
    /// the two fixed shortest-first passes with a feature-ordered
    /// convergence loop — every net routes under history + present
    /// congestion costs, contested corridors escalate between
    /// iterations, and nets blocking a failed net are evicted and
    /// re-queued until the layout converges (or the iteration cap hands
    /// the stragglers to the terminal-aware rip-up fallback). Off by
    /// default; layouts in this mode are deterministic at every thread
    /// count but differ from the rip-up path's.
    pub congestion_mode: bool,
    /// Per-search A\* expansion-budget override for the sequential stage
    /// (`None` keeps the tile layer's default cap). A testing/ablation
    /// knob: shrinking it makes searches fail cheaply on demand, at the
    /// price of losing nets whose paths legitimately need the expansions.
    pub retry_expansion_budget: Option<usize>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            alpha: 0.1,
            beta: 1.0,
            gamma: 1.0,
            delta: 2.0,
            global_cells: 30,
            concurrent_enabled: true,
            weighted_mpsc: true,
            lp_enabled: true,
            lp_max_iterations: 50,
            peripheral_margin: 40_000,
            via_cost_factor: 4.0,
            threads: 1,
            search_window: true,
            stage_budget: None,
            fault_plan: FaultPlan::none(),
            telemetry: false,
            alt_landmarks: 0,
            legality_cache: true,
            search_arena: true,
            congestion_mode: false,
            retry_expansion_budget: None,
        }
    }
}

impl RouterConfig {
    /// The paper's parameterization, explicitly.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Configuration for the unweighted-MPSC ablation.
    pub fn with_unweighted_mpsc(mut self) -> Self {
        self.weighted_mpsc = false;
        self
    }

    /// Configuration with the LP optimization stage disabled.
    pub fn without_lp(mut self) -> Self {
        self.lp_enabled = false;
        self
    }

    /// Configuration with the concurrent stage disabled (pure sequential).
    pub fn without_concurrent(mut self) -> Self {
        self.concurrent_enabled = false;
        self
    }

    /// Overrides the global-cell grid (ablation A2).
    pub fn with_global_cells(mut self, n: usize) -> Self {
        self.global_cells = n.max(1);
        self
    }

    /// Sets the sequential-stage worker-thread count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the worker-thread count from the machine's available
    /// parallelism, capped at 8 (the published thread-scaling matrix
    /// tops out there, and dispatch overhead eats the returns beyond
    /// it on these circuit sizes). The bench binaries and CI use this;
    /// the library default stays single-threaded.
    pub fn with_threads_auto(self) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.with_threads(cores.min(8))
    }

    /// Disables the A\* search window (full-graph searches only).
    pub fn without_search_window(mut self) -> Self {
        self.search_window = false;
        self
    }

    /// Sets a per-stage wall-clock budget.
    pub fn with_stage_budget(mut self, budget: Duration) -> Self {
        self.stage_budget = Some(budget);
        self
    }

    /// Arms a fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables telemetry collection (spans, counters, route journal).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enables ALT landmark heuristics with `k` landmarks per sequential
    /// stage (0 disables them).
    pub fn with_alt_landmarks(mut self, k: usize) -> Self {
        self.alt_landmarks = k;
        self
    }

    /// Disables the edge-legality (adjacency) cache — every neighbor
    /// enumeration re-does its clearance/crossing geometry (ablation).
    pub fn without_legality_cache(mut self) -> Self {
        self.legality_cache = false;
        self
    }

    /// Collects traced read cells in a per-search `BTreeSet` instead of
    /// the scratch arena (ablation).
    pub fn without_search_arena(mut self) -> Self {
        self.search_arena = false;
        self
    }

    /// Enables negotiated-congestion sequential routing (see
    /// [`RouterConfig::congestion_mode`]).
    pub fn with_congestion_mode(mut self) -> Self {
        self.congestion_mode = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RouterConfig::default();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.delta, 2.0);
        assert_eq!(c.global_cells, 30);
        assert!(c.lp_enabled && c.concurrent_enabled && c.weighted_mpsc);
        assert_eq!(c.threads, 1);
        assert!(c.search_window, "windowed search is on by default");
        assert!(!c.without_search_window().search_window);
        assert!(!c.telemetry, "telemetry is off by default");
        assert!(c.with_telemetry().telemetry);
        assert_eq!(c.alt_landmarks, 0, "ALT landmarks are off by default");
        assert!(c.legality_cache, "legality cache is on by default");
        assert!(c.search_arena, "trace arena is on by default");
        assert_eq!(c.with_alt_landmarks(8).alt_landmarks, 8);
        assert!(!c.without_legality_cache().legality_cache);
        assert!(!c.without_search_arena().search_arena);
        assert!(!c.congestion_mode, "negotiated congestion is off by default");
        assert!(c.with_congestion_mode().congestion_mode);
    }

    #[test]
    fn threads_builder_clamps_zero() {
        assert_eq!(RouterConfig::default().with_threads(0).threads, 1);
        assert_eq!(RouterConfig::default().with_threads(4).threads, 4);
    }

    #[test]
    fn ablation_builders() {
        let c = RouterConfig::default().with_unweighted_mpsc().without_lp().with_global_cells(10);
        assert!(!c.weighted_mpsc);
        assert!(!c.lp_enabled);
        assert_eq!(c.global_cells, 10);
    }

    #[test]
    fn resilience_builders() {
        use crate::resilience::{FaultPlan, FaultSite};
        let c = RouterConfig::default();
        assert!(c.stage_budget.is_none());
        assert!(c.fault_plan.is_empty());
        let c = c
            .with_stage_budget(Duration::from_secs(5))
            .with_fault_plan(FaultPlan::single(FaultSite::LpFactorize));
        assert_eq!(c.stage_budget, Some(Duration::from_secs(5)));
        assert!(c.fault_plan.directive(FaultSite::LpFactorize).is_some());
        assert!(c.fault_plan.directive(FaultSite::AstarExpand).is_none());
    }
}
