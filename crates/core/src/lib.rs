#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Via-based RDL routing for InFO packages with irregular pad structures.
//!
//! This crate implements the five-stage flow of Wen, Cai, Hsu and Chang
//! (DAC 2020):
//!
//! 1. **Preprocessing** ([`preprocess`]) — peripheral I/O identification,
//!    fan-out region partitioning (Ohtsuki line extension + Lee merging),
//!    MST construction over the fan-out grid graph, and the circular model.
//! 2. **Weighted-MPSC-based concurrent routing** ([`assign`],
//!    [`concurrent`]) — layer assignment maximizing total chord weight
//!    (Eq. (2): detour rate + congestion overflow penalties), then pattern
//!    routing of the assigned nets along their MST paths.
//! 3. **Routing-graph construction** ([`info_tile::RoutingSpace`]) —
//!    global cells, frames, octagonal tiles, via insertion.
//! 4. **Sequential A\*-search routing** ([`sequential`]) — remaining nets
//!    routed one at a time on the multi-layer tile graph, with the graph
//!    rebuilt under each committed net.
//! 5. **LP-based layout optimization** ([`lpopt`]) — x/y/c variables,
//!    fixed/route/interactive constraints, iterative wirelength
//!    minimization with crossing repair.
//!
//! The entry point is [`InfoRouter`]:
//!
//! ```
//! use info_geom::{Point, Rect};
//! use info_model::{DesignRules, PackageBuilder};
//! use info_router::{InfoRouter, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = PackageBuilder::new(
//!     Rect::new(Point::new(0, 0), Point::new(500_000, 500_000)),
//!     DesignRules::default(),
//!     2,
//! );
//! let chip = b.add_chip(Rect::new(Point::new(50_000, 50_000), Point::new(200_000, 200_000)));
//! let io = b.add_io_pad(chip, Point::new(120_000, 120_000))?;
//! let bump = b.add_bump_pad(Point::new(400_000, 400_000))?;
//! b.add_net(io, bump)?;
//! let pkg = b.build()?;
//!
//! let outcome = InfoRouter::new(RouterConfig::default()).route(&pkg);
//! assert!(outcome.stats.routability_pct > 99.0);
//! # Ok(())
//! # }
//! ```

pub mod assign;
pub mod concurrent;
pub mod eco;
pub mod free_assign;
pub mod lpopt;
pub mod ordering;
pub mod pool;
pub mod preprocess;
pub mod resilience;
pub mod sequential;
pub mod serve;
pub mod trial;
pub mod warm;

mod config;
mod flow;

pub use config::RouterConfig;
pub use eco::{EcoChangeSet, EcoPlan, EcoStash, EcoStats};
pub use flow::{Completion, InfoRouter, NetStatus, RouteOutcome, StageTimings};
pub use info_tile::{CancelToken, SearchOptions, SearchStats};
pub use resilience::{
    FaultDirective, FaultKind, FaultPlan, FaultSite, FlowCtx, FlowDiagnostics, RouterError, Stage,
    StageOutcome,
};
pub use sequential::NegotiationStats;
pub use warm::WarmSpaceCache;
