//! Stage 4 — Sequential A\*-search routing (§III-D).
//!
//! Remaining nets are routed one at a time on the multi-layer octagonal
//! tile graph. After each committed net the affected global cells are
//! re-partitioned (frames split by the new wires, via sites refreshed),
//! exactly as the paper updates its routing graph after each net.

use crate::config::RouterConfig;
use crate::pool::{parallel_map, parallel_map_stats};
use crate::resilience::{panic_message, FaultSite, FlowCtx, RouterError, Stage};
use info_geom::{x_arch_len, Rect};
use info_model::{Layout, NetId, Package};
use info_telemetry::{AttemptOutcome, AttemptRecord, Counter, FailureReason, Pass, Sink};
use info_tile::{astar, realize, RoutingSpace, SpaceConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of the sequential stage.
#[derive(Debug, Clone, Default)]
pub struct SequentialResult {
    /// Nets committed by this stage.
    pub routed: Vec<NetId>,
    /// Nets that could not be routed.
    pub failed: Vec<NetId>,
    /// Nets never attempted (or aborted mid-search) because the flow was
    /// interrupted — cancel, check trip, or deadline. Every net here also
    /// appears in `failed`; the distinction lets an anytime caller report
    /// "unattempted" separately from "tried and unroutable".
    pub skipped: Vec<NetId>,
    /// Nets that failed for internal reasons (caught panic, injected
    /// fault) rather than geometry; each such failure cost exactly that
    /// net. Every net here also appears in `failed`.
    pub recovered: Vec<(NetId, RouterError)>,
    /// Aggregate A\* statistics over every search this stage ran,
    /// including discarded speculative plans — so the totals can vary
    /// with `threads` even though the routed layout never does.
    pub search: astar::SearchStats,
    /// Convergence statistics of the negotiated-congestion front
    /// (`Some` exactly when [`RouterConfig::congestion_mode`] is set).
    pub negotiation: Option<NegotiationStats>,
}

/// Convergence statistics of the negotiated-congestion front (DESIGN.md
/// §4h). All fields are deterministic at every thread count: iteration
/// outcomes derive from the committed layout, never from speculative
/// scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NegotiationStats {
    /// Iterations the convergence loop ran (at least 1, at most
    /// [`NEGOTIATION_MAX_ITERS`]).
    pub iterations: u32,
    /// True when the final iteration routed every queued net (no failures
    /// and no interrupt); false when the iteration cap or an interrupt
    /// handed the stragglers to the rip-up fallback. A declined run never
    /// claims convergence, even when the endgame later empties the failed
    /// set — the flag describes the negotiated *front*.
    pub converged: bool,
    /// True when the first iterations hit the mass-failure bail
    /// ([`NEGOTIATION_MASS_FAILURE`]): the front discarded its work and
    /// the stage re-ran the legacy two-pass + rip-up path, followed by
    /// the best-layout endgame loop on whatever rip-up left failed.
    pub declined: bool,
    /// Iterations of the post-rip-up endgame loop (declined runs only;
    /// 0 otherwise). Bounded by [`NEGOTIATION_MAX_ITERS`] and its own
    /// stagnation patience, and monotone in routability by construction:
    /// the endgame restores the best layout it ever saw.
    pub endgame_iterations: u32,
    /// Contested corridor cells observed in the *last* iteration (0 on
    /// convergence).
    pub final_overuse: u32,
    /// Total nets re-queued across all iterations (evicted victims plus
    /// retried failures).
    pub reroutes: u64,
    /// Total accumulated history cost after each iteration — monotone
    /// non-decreasing by construction (`tests/congestion_props.rs` pins
    /// this).
    pub history_totals: Vec<f64>,
}

/// Iteration cap of the negotiated-congestion loop: a layout that has not
/// converged by then goes to the terminal-aware rip-up fallback with
/// whatever history the loop accumulated.
pub const NEGOTIATION_MAX_ITERS: u32 = 16;
/// Victims evicted per failed net per iteration, ranked
/// nearest-to-terminal first like the rip-up candidate ordering.
const NEGOTIATION_VICTIMS_PER_FAILED: usize = 2;
/// Present-congestion weight as a multiple of the mean global-cell pitch.
/// Deliberately mild: geometric legality already encodes hard occupancy,
/// so present cost only breaks ties away from busy cells — a heavy
/// weight detours the whole layout and loosens the (geometric) heuristic
/// enough to blow up every search.
const NEGOTIATION_PRESENT_WEIGHT: f64 = 0.05;
/// History weight as a multiple of the mean global-cell pitch.
const NEGOTIATION_HISTORY_WEIGHT: f64 = 0.5;
/// History added to every contested corridor cell per failed iteration.
/// Uniform on purpose: both a global 2× step and a per-net
/// consecutive-failure scaling were tried, and each prices evicted
/// victims out of *their* re-routes — the cascade stops resolving and
/// the loop runs to the cap. Escalation must stay gentle enough that a
/// freed corridor is still affordable one iteration later.
const NEGOTIATION_HISTORY_STEP: f64 = 1.0;
/// Stagnation patience: iterations allowed without a new minimum of the
/// failed-net count before the loop stops negotiating and hands the
/// stragglers to the rip-up fallback. A converging run keeps setting
/// minimums (dense2's failure trajectory makes a new one every ≤ 3
/// iterations on the way to 0); a run that plateaus for this long is
/// churning victims, and every further iteration entrenches history the
/// fallback then has to route around.
const NEGOTIATION_PATIENCE: u32 = 4;
/// Failed-net count (floor of a 10%-of-batch scale) above which the loop
/// *declines*: it discards its commits, restores the stage-entry layout,
/// and the stage re-runs the legacy two-pass + rip-up front instead.
/// Negotiation is an endgame mechanism — terminal-ring escalation and
/// two-victim eviction resolve the last few walled nets. When failure is
/// *mass* (dense3's front leaves ~15 of 80, dense5's ~40 of 208),
/// per-failure eviction churns a large fraction of the committed layout,
/// the loop burns minutes re-proving walls, and the rip-up fallback then
/// starts from wreckage measurably worse than the plain layout it would
/// otherwise get — keeping the feature-ordered, congestion-priced first
/// iteration cost dense3 2.6 routability points versus legacy. Declining
/// makes mass-failure circuits route ≥ the legacy path by construction;
/// the endgame loop then negotiates on top of the legacy result.
const NEGOTIATION_MASS_FAILURE: usize = 8;
/// Stagnation patience of the post-rip-up endgame loop, in iterations
/// without a new routed-count maximum. Stricter than the front's
/// [`NEGOTIATION_PATIENCE`]: the endgame starts where rip-up already did
/// its best, every iteration re-routes the whole failed set plus evicted
/// victims (expensive on mass-failure circuits), and the best-layout
/// restore means a stalled loop is pure cost.
const NEGOTIATION_ENDGAME_PATIENCE: u32 = 2;

/// Derives the tile-space configuration from the router configuration.
pub fn space_config(package: &Package, cfg: &RouterConfig) -> SpaceConfig {
    let mut sc = SpaceConfig::from_package(package);
    sc.cells_x = cfg.global_cells;
    sc.cells_y = cfg.global_cells;
    sc.via_cost = cfg.via_cost_factor * package.rules().via_width as f64;
    sc.adjacency_cache = cfg.legality_cache;
    sc
}

/// Builds the stage-start routing space, with ALT landmark tables
/// installed when configured.
///
/// ALT tables over the stage-start graph are admissible for the whole
/// stage because the stage only adds blockage relative to this state
/// (rip-up never restores below it). Snapshots and restores share the
/// tables through the `Arc`; a panic-path rebuild drops them, which only
/// weakens the heuristic back to geometric.
pub(crate) fn build_stage_space(
    package: &Package,
    layout: &Layout,
    cfg: &RouterConfig,
    tel: &Sink,
) -> RoutingSpace {
    let mut space = RoutingSpace::build(package, layout, space_config(package, cfg));
    if cfg.alt_landmarks > 0 {
        // Each landmark's Dijkstra fills a disjoint table slice, so the
        // threaded build is bit-identical to the serial one (which is why
        // the warm-space cache key can keep ignoring `threads`).
        let lm = info_tile::Landmarks::build_threaded(
            &space,
            cfg.alt_landmarks,
            effective_threads(cfg),
        );
        space.set_landmarks(Some(std::sync::Arc::new(lm)));
        tel.count(Counter::LandmarkRebuilds, 1);
    }
    space
}

/// Routes `nets` sequentially over the tile graph, committing into
/// `layout`. Nets are attempted shortest-first; failures get one retry
/// pass after all other nets have been placed (the space may have gained
/// via sites from rebuilds).
///
/// This stage is infallible by construction: every per-net attempt runs
/// under its own panic guard, and an internal failure (caught panic,
/// injected `astar.expand` / `tile.via_insert` fault) marks only that net
/// unrouted — recorded in `recovered` — while the rest of the stage
/// continues. A tripped stage budget (or an interrupt on the flow's
/// cancel token) leaves the remaining nets in `failed` and `skipped`.
///
/// With `warm` set, the stage-start [`RoutingSpace`] (landmarks
/// installed) is fetched from — or, on a miss, built once and installed
/// into — the shared cache, so repeat jobs on the same circuit skip the
/// build. A cached clone is bit-identical to a fresh build, so the
/// routed layout is unaffected.
#[allow(clippy::too_many_arguments)]
pub fn route_sequential(
    package: &Package,
    layout: &mut Layout,
    nets: &[NetId],
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    warm: Option<&crate::warm::WarmSpaceCache>,
    tel: &Sink,
) -> SequentialResult {
    let mut space = match warm {
        Some(cache) => cache.get_or_build(package, layout, cfg, tel),
        None => build_stage_space(package, layout, cfg, tel),
    };
    route_sequential_in_space(package, layout, nets, cfg, ctx, &mut space, tel)
}

/// The body of [`route_sequential`], over an already-built routing
/// `space`. The ECO path ([`crate::eco`]) calls this directly with a
/// space it dirty-rebuilt from a cached base-layout build, so a delta
/// re-route pays per-cell invalidation instead of a full construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_sequential_in_space(
    package: &Package,
    layout: &mut Layout,
    nets: &[NetId],
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    space: &mut RoutingSpace,
    tel: &Sink,
) -> SequentialResult {
    let mut result = SequentialResult::default();
    let mut retry: Vec<NetId> = Vec::new();
    let threads = effective_threads(cfg);
    // One controller for the whole stage: the conflict rate the legacy
    // front observes seeds the batch size the negotiated queue starts
    // from (and vice versa on re-entry), so a congested circuit doesn't
    // re-learn its contention level at every pass boundary.
    let mut batcher = BatchController::new(threads);
    let mut stats = astar::SearchStats::default();
    // Nodes the *authoritative* failed attempt of each net expanded (the
    // committed sequential search, never a discarded speculative one), so
    // the rip-up ordering below is identical at every `threads` setting.
    let mut fail_expansions: BTreeMap<NetId, u64> = BTreeMap::new();

    let negotiated = cfg.congestion_mode
        && route_negotiated_front(
            package,
            layout,
            nets,
            cfg,
            ctx,
            threads,
            &mut batcher,
            &mut *space,
            &mut stats,
            tel,
            &mut result,
            &mut fail_expansions,
        );

    // Legacy two-pass front; when the negotiated loop above handled the
    // batch both passes run over empty lists. A *declined* negotiated
    // front (mass-failure bail) restored the stage-entry layout, so the
    // legacy front runs in full, exactly as if congestion mode were off.
    let mut order: Vec<NetId> = if negotiated { Vec::new() } else { nets.to_vec() };
    order.sort_by(|&x, &y| {
        let d = |id: NetId| {
            let n = package.net(id);
            x_arch_len(package.pad(n.a).center, package.pad(n.b).center)
        };
        d(x).total_cmp(&d(y)).then(x.cmp(&y))
    });

    for pass in 0..2 {
        let todo = if pass == 0 { std::mem::take(&mut order) } else { std::mem::take(&mut retry) };
        let journal_pass = if pass == 0 { Pass::First } else { Pass::Retry };
        if threads > 1 {
            route_pass_speculative(
                package,
                layout,
                &mut *space,
                &todo,
                cfg,
                ctx,
                threads,
                &mut batcher,
                &mut stats,
                tel,
                &mut |id, attempt| match attempt {
                    Attempt::Deadline => {
                        result.failed.push(id);
                        result.skipped.push(id);
                    }
                    Attempt::Routed(draft) => {
                        tel.record(draft.to_record(id, journal_pass, Vec::new()));
                        result.routed.push(id);
                    }
                    Attempt::Failed(draft) => {
                        tel.record(draft.to_record(id, journal_pass, Vec::new()));
                        if draft.was_cancelled() {
                            // The search was aborted, not refuted: no
                            // retry (the interrupt is sticky), and the
                            // net counts as skipped for anytime status.
                            result.failed.push(id);
                            result.skipped.push(id);
                            return;
                        }
                        fail_expansions.insert(id, draft.expansions);
                        if pass == 0 {
                            retry.push(id);
                        } else {
                            result.failed.push(id);
                        }
                    }
                    Attempt::Internal(e) => {
                        result.recovered.push((id, e));
                        result.failed.push(id);
                    }
                },
            );
            continue;
        }
        for id in todo {
            if ctx.interrupted() {
                result.failed.push(id);
                result.skipped.push(id);
                continue;
            }
            match guarded_route_net(package, layout, &mut *space, id, cfg, ctx, &mut stats, tel) {
                Ok((draft, Some(_))) => {
                    tel.record(draft.to_record(id, journal_pass, Vec::new()));
                    result.routed.push(id);
                }
                Ok((draft, None)) => {
                    tel.record(draft.to_record(id, journal_pass, Vec::new()));
                    if draft.was_cancelled() {
                        result.failed.push(id);
                        result.skipped.push(id);
                        continue;
                    }
                    fail_expansions.insert(id, draft.expansions);
                    if pass == 0 {
                        retry.push(id);
                    } else {
                        result.failed.push(id);
                    }
                }
                Err(e) => {
                    result.recovered.push((id, e));
                    result.failed.push(id);
                }
            }
        }
    }

    // Pass 3: bounded rip-up-and-reroute. A net that failed both passes
    // is usually boxed in by an earlier commit; evicting nearby nets and
    // re-routing everything often resolves it. Nets with the highest
    // detour rate — authoritative failed-attempt expansions per unit of
    // pad-pair X-architecture distance — go first: they searched hardest
    // relative to their size, so they are the most congestion-bound and
    // benefit most from picking their victims before the layout tightens
    // further. This pass always runs sequentially, so the order is
    // deterministic at every `threads` setting.
    for _round in 0..1 {
        if result.failed.is_empty() {
            break;
        }
        let mut boxed_in = std::mem::take(&mut result.failed);
        let rate = |id: NetId| {
            let n = package.net(id);
            let d = x_arch_len(package.pad(n.a).center, package.pad(n.b).center).max(1.0);
            fail_expansions.get(&id).copied().unwrap_or(0) as f64 / d
        };
        boxed_in.sort_by(|&x, &y| rate(y).total_cmp(&rate(x)).then(x.cmp(&y)));
        for id in boxed_in {
            if ctx.interrupted() {
                // These nets *were* attempted in passes 1–2, so they stay
                // out of `skipped` — only the rip-up rescue is forgone.
                result.failed.push(id);
                continue;
            }
            // Snapshot around the whole eviction search: a panic anywhere
            // inside leaves mid-eviction state that must be rolled back.
            let snapshot = layout.clone();
            let rip_t0 = std::time::Instant::now();
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                ripup_and_reroute(
                    package,
                    layout,
                    &mut *space,
                    id,
                    cfg,
                    &result.routed,
                    ctx,
                    threads,
                    &mut stats,
                    tel,
                )
            }));
            // Wall clock of the whole trial — snapshot, evictions,
            // re-routes, and restore included — so BENCH_rdl.json can
            // attribute sequential-stage time to rip-up work.
            tel.count(Counter::RipupWallUs, rip_t0.elapsed().as_micros() as u64);
            match attempt {
                Ok(Ok(true)) => result.routed.push(id),
                Ok(Ok(false)) => result.failed.push(id),
                Ok(Err(e)) => {
                    // ripup restored the layout itself; only record.
                    result.recovered.push((id, e));
                    result.failed.push(id);
                }
                Err(payload) => {
                    *layout = snapshot;
                    *space = RoutingSpace::build(package, layout, space_config(package, cfg));
                    result.recovered.push((
                        id,
                        RouterError::Panic {
                            stage: Stage::Sequential,
                            message: panic_message(payload.as_ref()),
                        },
                    ));
                    result.failed.push(id);
                }
            }
        }
    }
    // Declined negotiated runs get one more shot: the endgame loop
    // negotiates on top of the legacy + rip-up result with best-layout
    // restore, so it can only improve routability (DESIGN.md §4h). Runs
    // only on the declined path — a handled front already negotiated
    // these failures to stagnation, and re-entering would churn the same
    // walls under even higher history.
    if cfg.congestion_mode
        && result.negotiation.as_ref().is_some_and(|n| n.declined)
        && !result.failed.is_empty()
        && !ctx.interrupted()
    {
        negotiate_endgame(
            package,
            layout,
            cfg,
            ctx,
            threads,
            &mut batcher,
            &mut *space,
            &mut stats,
            tel,
            &mut result,
            &mut fail_expansions,
        );
    }
    // Edge-legality cache effectiveness, sampled from the surviving space.
    // Rip-up restores replace the space (and its tallies) by value, so
    // trial-only work is not included — the numbers describe the cache the
    // committed layout actually used.
    let (hits, misses) = space.adjacency_cache_stats();
    tel.count(Counter::LegalityCacheHits, hits);
    tel.count(Counter::LegalityCacheMisses, misses);
    result.search = stats;
    result
}

/// Worker threads the sequential stage actually uses. A fault plan with
/// order-sensitive sites forces single-threaded routing: [`FlowCtx::check`]
/// trigger counts depend on the exact order sites are passed, which
/// speculative planning (each plan passes `astar.expand` once, invalidated
/// plans twice) would perturb. Plans armed only at `pool.worker` keep the
/// configured thread count — that site exists precisely to kill
/// speculative workers, whose deaths the commit loop absorbs by
/// recomputing through the single-threaded path.
pub(crate) fn effective_threads(cfg: &RouterConfig) -> usize {
    if cfg.fault_plan.is_empty() || cfg.fault_plan.order_insensitive() {
        cfg.threads.max(1)
    } else {
        1
    }
}

/// Adaptive batch sizing for the speculative planner, driven by the
/// observed conflict rate: a conflict (a plan discarded stale because an
/// earlier commit in its batch rebuilt a cell it read, or a worker
/// error) means planning work was thrown away *and* the recompute ran
/// serially, so under contention smaller batches waste less; when every
/// plan lands clean the batch can grow and amortize pool dispatch over
/// more nets. Batch composition cannot change the routed layout — the
/// commit loop applies plans in net order and re-plans anything stale —
/// so the controller only moves wall time, never bytes.
struct BatchController {
    size: usize,
    min: usize,
    max: usize,
}

impl BatchController {
    /// Shrink when more than 1 in 4 plans conflicted…
    const HIGH: f64 = 0.25;
    /// …grow when fewer than 1 in 16 did.
    const LOW: f64 = 0.0625;

    fn new(threads: usize) -> Self {
        let t = threads.max(1);
        BatchController { size: t * 2, min: t, max: t * 8 }
    }

    /// Nets to plan in the next batch.
    fn batch(&self) -> usize {
        self.size
    }

    /// Feeds one completed batch's conflict count back into the size.
    fn observe(&mut self, batch_len: usize, conflicts: usize, tel: &Sink) {
        if batch_len == 0 {
            return;
        }
        let rate = conflicts as f64 / batch_len as f64;
        if rate > Self::HIGH {
            let next = (self.size / 2).max(self.min);
            if next < self.size {
                tel.count(Counter::SpeculativeBatchShrinks, 1);
            }
            self.size = next;
        } else if rate < Self::LOW {
            let next = (self.size * 2).min(self.max);
            if next > self.size {
                tel.count(Counter::SpeculativeBatchGrows, 1);
            }
            self.size = next;
        }
    }
}

/// How one net's attempt ended, for the speculative executor's caller.
enum Attempt {
    /// The stage deadline tripped before this net was attempted.
    Deadline,
    /// Committed into the layout.
    Routed(AttemptDraft),
    /// Geometric failure; the draft carries the nodes the authoritative
    /// attempt expanded (a fresh plan's own count, or the sequential
    /// recompute's for a stale one — either way the numbers the
    /// single-threaded loop would have recorded).
    Failed(AttemptDraft),
    /// Internal failure (caught panic); costs exactly this net.
    Internal(RouterError),
}

/// Everything the route journal needs about one *authoritative* attempt.
/// Drafts are computed where the search ran but recorded only at commit
/// points — the speculative executor's in-net-order emit, the sequential
/// loop, and the rip-up pass — so the journal is identical at every
/// thread count (discarded speculative plans never produce a record).
#[derive(Debug, Clone, Copy)]
struct AttemptDraft {
    windowed: bool,
    escalated: bool,
    expansions: u64,
    outcome: AttemptOutcome,
}

impl AttemptDraft {
    /// True when the attempt's search was aborted by the cancel token
    /// rather than finishing (an anytime caller must not treat this net
    /// as refuted).
    fn was_cancelled(self) -> bool {
        matches!(self.outcome, AttemptOutcome::Failed(FailureReason::Cancelled))
    }

    fn to_record(self, id: NetId, pass: Pass, victims: Vec<u32>) -> AttemptRecord {
        AttemptRecord {
            net: id.0,
            pass,
            windowed: self.windowed,
            escalated: self.escalated,
            expansions: self.expansions,
            outcome: self.outcome,
            victims,
        }
    }
}

/// Maps a search-layer failure onto the journal's failure taxonomy. An
/// exhausted open list after an escalation means the window failed to
/// contain the net *and* the full graph still had no path; without an
/// escalation, exhaustion is an authoritative no-path proof.
fn search_failure_reason(f: astar::SearchFailure, escalated: bool) -> FailureReason {
    match f {
        astar::SearchFailure::BlockedTerminal => FailureReason::Unreachable,
        astar::SearchFailure::Exhausted if escalated => FailureReason::WindowFenced,
        astar::SearchFailure::Exhausted => FailureReason::Unreachable,
        astar::SearchFailure::BudgetCapped { last_tile } => {
            FailureReason::Congested { tile: last_tile.0 }
        }
        astar::SearchFailure::NoViaPath { cell } => {
            FailureReason::ViaCapacity { cell: (cell.0 as u32, cell.1 as u32) }
        }
        astar::SearchFailure::Cancelled => FailureReason::Cancelled,
    }
}

/// Routes one pass of nets with speculative parallel planning, reporting
/// each net's outcome — in net order — through `emit`.
///
/// Determinism argument: outcomes are identical to the single-threaded
/// loop because commits happen on this thread, in net order, and a
/// speculative plan is applied only when every global cell it read is
/// untouched by earlier commits of its batch. Untouched cells keep both
/// their tile *content* and their tile *ids* (rebuilds never renumber
/// other cells), so re-planning against the committed state would
/// reproduce the speculative plan bit for bit — including A\*'s
/// tile-id heap tie-breaks. Stale or panicked plans are recomputed
/// through the exact single-threaded path.
#[allow(clippy::too_many_arguments)]
fn route_pass_speculative(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    todo: &[NetId],
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    threads: usize,
    batcher: &mut BatchController,
    stats: &mut astar::SearchStats,
    tel: &Sink,
    emit: &mut dyn FnMut(NetId, Attempt),
) {
    let mut start = 0;
    while start < todo.len() {
        let batch = &todo[start..(start + batcher.batch()).min(todo.len())];
        start += batch.len();
        // Plan read-only against the batch-start state on the
        // work-stealing pool. Worker panics (injected ones included — the
        // `pool.worker` fault site lives here) are converted to errors and
        // re-raised through the sequential recompute path below, which
        // owns the rollback.
        let (plans, pool_stats): (Vec<Result<PlanOutcome, RouterError>>, _) =
            parallel_map_stats(batch, threads, |_, &id| {
                catch_unwind(AssertUnwindSafe(|| {
                    ctx.check(FaultSite::PoolWorker)?;
                    plan_net(package, layout, space, id, cfg, ctx)
                }))
                .unwrap_or_else(|payload| {
                    Err(RouterError::Panic {
                        stage: Stage::Sequential,
                        message: panic_message(payload.as_ref()),
                    })
                })
            });
        tel.count(Counter::PoolSteals, pool_stats.steals);
        // Every plan's search ran, so every plan's search counts — even
        // ones discarded as stale below (this is why aggregate totals are
        // thread-variant). Absorbed in batch order for reproducibility at
        // a fixed thread count.
        for p in plans.iter().filter_map(|p| p.as_ref().ok()) {
            stats.absorb(&p.search);
        }
        // Commit in net order; track which cells each commit rebuilt.
        let mut dirty: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut all_dirty = false;
        let mut attempted = 0usize;
        let mut conflicts = 0usize;
        for (&id, plan) in batch.iter().zip(plans) {
            if ctx.interrupted() {
                emit(id, Attempt::Deadline);
                continue;
            }
            let fresh = match &plan {
                Ok(p) if !all_dirty => p.read_cells.iter().all(|c| !dirty.contains(c)),
                _ => false,
            };
            attempted += 1;
            if fresh {
                tel.count(Counter::SpeculativeCommits, 1);
            } else {
                conflicts += 1;
                tel.count(Counter::SpeculativeConflicts, 1);
            }
            let attempt = if fresh {
                match plan.expect("fresh implies planned") {
                    PlanOutcome { real: None, draft, .. } => Attempt::Failed(draft),
                    PlanOutcome { real: Some(real), draft, .. } => {
                        let commit = catch_unwind(AssertUnwindSafe(|| {
                            commit_plan(package, layout, space, id, real, ctx)
                        }));
                        match commit {
                            Ok(Ok(rebuilt)) => {
                                tel.count(Counter::CellsRebuilt, rebuilt.len() as u64);
                                dirty.extend(rebuilt);
                                Attempt::Routed(draft)
                            }
                            Ok(Err(e)) => Attempt::Internal(e),
                            Err(payload) => {
                                // Same rollback as `guarded_route_net`.
                                layout.remove_net(id);
                                *space = RoutingSpace::build(
                                    package,
                                    layout,
                                    space_config(package, cfg),
                                );
                                all_dirty = true;
                                Attempt::Internal(RouterError::Panic {
                                    stage: Stage::Sequential,
                                    message: panic_message(payload.as_ref()),
                                })
                            }
                        }
                    }
                }
            } else {
                match guarded_route_net(package, layout, space, id, cfg, ctx, stats, tel) {
                    Ok((draft, Some(rebuilt))) => {
                        dirty.extend(rebuilt);
                        Attempt::Routed(draft)
                    }
                    Ok((draft, None)) => Attempt::Failed(draft),
                    Err(e) => {
                        // The panic path rebuilt the whole space, which
                        // renumbers every tile id.
                        all_dirty = true;
                        Attempt::Internal(e)
                    }
                }
            };
            emit(id, attempt);
        }
        batcher.observe(attempted, conflicts, tel);
    }
}

/// What one per-net attempt produced: the journal draft plus, when the
/// net committed, the global cells the commit rebuilt.
type AttemptResult = Result<(AttemptDraft, Option<Vec<(usize, usize)>>), RouterError>;

/// One per-net attempt under a panic guard. On a caught panic the net's
/// (possibly partial) geometry is removed and the routing space rebuilt,
/// so the failure costs exactly this net. `Ok(Some(cells))` reports which
/// global cells the commit rebuilt.
#[allow(clippy::too_many_arguments)]
fn guarded_route_net(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    id: NetId,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    stats: &mut astar::SearchStats,
    tel: &Sink,
) -> AttemptResult {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        try_route_net(package, layout, space, id, cfg, ctx, stats, tel)
    }));
    match attempt {
        Ok(r) => r,
        Err(payload) => {
            layout.remove_net(id);
            *space = RoutingSpace::build(package, layout, space_config(package, cfg));
            Err(RouterError::Panic {
                stage: Stage::Sequential,
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Per-segment rects of a net's geometry, not its bounding hull: a long
/// route's hull can cover most of the die while the geometry only
/// touches a thin corridor of cells, and rebuild cost is per cell.
pub(crate) fn net_geometry_rects(layout: &Layout, n: NetId, out: &mut Vec<Rect>) {
    for r in layout.routes_of(n) {
        for s in r.path.segments() {
            out.push(Rect::new(s.a, s.b));
        }
    }
    for v in layout.vias_of(n) {
        out.push(Rect::new(v.center, v.center));
    }
}

/// What one negotiated iteration produced. `failed` carries the
/// authoritative expansion counts (the same numbers the legacy front
/// feeds the rip-up ordering).
struct PassTally {
    routed: Vec<NetId>,
    failed: BTreeMap<NetId, u64>,
    skipped: Vec<NetId>,
    internal: Vec<(NetId, RouterError)>,
}

/// Runs one negotiated iteration over `todo` — the same per-net machinery
/// as the legacy passes (speculative planning above one thread, the
/// guarded loop otherwise), journaled as [`Pass::Negotiated`].
#[allow(clippy::too_many_arguments)]
fn run_negotiated_pass(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    todo: &[NetId],
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    threads: usize,
    batcher: &mut BatchController,
    stats: &mut astar::SearchStats,
    tel: &Sink,
) -> PassTally {
    let mut t = PassTally {
        routed: Vec::new(),
        failed: BTreeMap::new(),
        skipped: Vec::new(),
        internal: Vec::new(),
    };
    let mut emit = |id: NetId, attempt: Attempt| match attempt {
        Attempt::Deadline => t.skipped.push(id),
        Attempt::Routed(draft) => {
            tel.record(draft.to_record(id, Pass::Negotiated, Vec::new()));
            t.routed.push(id);
        }
        Attempt::Failed(draft) => {
            tel.record(draft.to_record(id, Pass::Negotiated, Vec::new()));
            if draft.was_cancelled() {
                t.skipped.push(id);
            } else {
                t.failed.insert(id, draft.expansions);
            }
        }
        Attempt::Internal(e) => t.internal.push((id, e)),
    };
    if threads > 1 {
        route_pass_speculative(
            package, layout, space, todo, cfg, ctx, threads, batcher, stats, tel, &mut emit,
        );
    } else {
        for &id in todo {
            if ctx.interrupted() {
                emit(id, Attempt::Deadline);
                continue;
            }
            let attempt =
                match guarded_route_net(package, layout, space, id, cfg, ctx, stats, tel) {
                    Ok((draft, Some(_))) => Attempt::Routed(draft),
                    Ok((draft, None)) => Attempt::Failed(draft),
                    Err(e) => Attempt::Internal(e),
                };
            emit(id, attempt);
        }
    }
    t
}

/// Rebuilds the present-congestion counts from the committed stage nets:
/// one unit per distinct `(layer, cell)` a net's wires touch and one via
/// unit per distinct cell holding its vias. Runs only at iteration
/// boundaries, so every search within an iteration sees one frozen cost
/// field — which is also why update order cannot matter
/// (`tests/congestion_props.rs`).
fn refresh_present(layout: &Layout, space: &mut RoutingSpace, routed: &BTreeSet<NetId>) {
    let mut wire_cells: Vec<(usize, usize, usize)> = Vec::new();
    let mut via_cells: Vec<(usize, usize)> = Vec::new();
    for &id in routed {
        let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
        for r in layout.routes_of(id) {
            let l = r.layer.index();
            for s in r.path.segments() {
                for (cx, cy) in space.cells_touching(Rect::new(s.a, s.b)) {
                    seen.insert((l, cx, cy));
                }
            }
        }
        wire_cells.extend(seen);
        let mut vseen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for v in layout.vias_of(id) {
            if let Some(c) = space.cell_of(v.center) {
                vseen.insert(c);
            }
        }
        via_cells.extend(vseen);
    }
    if let Some(m) = space.congestion_mut() {
        m.clear_present();
        for (l, cx, cy) in wire_cells {
            m.note_present(l, cx, cy, 1);
        }
        for (cx, cy) in via_cells {
            m.note_via_present(cx, cy, 1);
        }
    }
}

/// Contested cells: the 3×3 cell ring around each failed net's
/// terminals, on that terminal's layer. The route journal shows failed
/// nets dying walled in right at a pad, so this is where competitors
/// must be priced out; corridor-wide escalation (the obvious PathFinder
/// transliteration) inflates costs over so much area that every search
/// slows down and the whole layout detours.
fn contested_cells(
    package: &Package,
    space: &RoutingSpace,
    failed: impl Iterator<Item = NetId>,
) -> BTreeSet<(usize, usize, usize)> {
    let (cells_x, cells_y) = (space.config().cells_x, space.config().cells_y);
    let mut contested: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for id in failed {
        let n = package.net(id);
        for pad in [n.a, n.b] {
            let l = package.pad_layer(pad).index();
            if let Some((cx, cy)) = space.cell_of(package.pad(pad).center) {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (x, y) = (cx as i64 + dx, cy as i64 + dy);
                        if x >= 0 && y >= 0 && (x as usize) < cells_x && (y as usize) < cells_y {
                            contested.insert((l, x as usize, y as usize));
                        }
                    }
                }
            }
        }
    }
    contested
}

/// Victims of one escalation round: for each failed net, the
/// [`NEGOTIATION_VICTIMS_PER_FAILED`] routed nets with geometry inside
/// its pad-pair corridor, nearest-to-terminal first (the rip-up
/// ranking).
fn select_victims(
    package: &Package,
    layout: &Layout,
    routed: &BTreeSet<NetId>,
    failed: impl Iterator<Item = NetId>,
    corridor_margin: i64,
    threads: usize,
) -> BTreeSet<NetId> {
    // Each failed net's corridor scan is pure in (package, layout), so
    // the per-net victim lists are computed on the work-stealing pool;
    // the union below is a BTreeSet, so merge order cannot matter.
    let failed: Vec<NetId> = failed.collect();
    let per_net: Vec<Vec<NetId>> = parallel_map(&failed, threads, |_, &id| {
        let n = package.net(id);
        let (pa, pb) = (package.pad(n.a).center, package.pad(n.b).center);
        let corridor = Rect::new(pa, pb).inflate(corridor_margin);
        let mut keyed: Vec<(i128, NetId)> = routed
            .iter()
            .copied()
            .filter_map(|c| {
                let mut d = i128::MAX;
                let mut inside = false;
                for r in layout.routes_of(c) {
                    for p in r.path.points() {
                        inside |= corridor.contains(*p);
                        d = d.min(info_geom::euclid_sq(*p, pa).min(info_geom::euclid_sq(*p, pb)));
                    }
                }
                if inside { Some((d, c)) } else { None }
            })
            .collect();
        keyed.sort();
        keyed.into_iter().take(NEGOTIATION_VICTIMS_PER_FAILED).map(|(_, c)| c).collect()
    });
    per_net.into_iter().flatten().collect()
}

/// The negotiated-congestion front (DESIGN.md §4h): replaces the legacy
/// two-pass front when [`RouterConfig::congestion_mode`] is set.
///
/// Every commit stays geometrically legal (this router never routes
/// through occupied tiles), so classic PathFinder overuse cannot occur
/// *inside* an iteration. The negotiated signal is instead the set of
/// failed nets: each failure marks its pad-pair corridor's cells as
/// contested, history escalates there between iterations, the routed
/// nets nearest the failed terminals are evicted, and everything
/// re-queues in feature order until an iteration ends with no failures.
/// Iteration boundaries also rebuild the present-congestion counts from
/// the committed layout, so history is the only state that persists —
/// monotone by construction.
///
/// Determinism: iteration decisions (failure set, contested cells,
/// victims, re-queue order) read only the committed layout and the
/// authoritative failure records — state `route_pass_speculative` already
/// keeps identical at every thread count — so the negotiated layout and
/// the iteration count are thread-invariant too.
///
/// Returns `false` when the front *declined* (mass-failure bail): the
/// layout is restored to its stage-entry state, the result lists are
/// cleared, and the caller must run the legacy front instead.
#[allow(clippy::too_many_arguments)]
fn route_negotiated_front(
    package: &Package,
    layout: &mut Layout,
    nets: &[NetId],
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    threads: usize,
    batcher: &mut BatchController,
    space: &mut RoutingSpace,
    stats: &mut astar::SearchStats,
    tel: &Sink,
    result: &mut SequentialResult,
    fail_expansions: &mut BTreeMap<NetId, u64>,
) -> bool {
    let t0 = std::time::Instant::now();
    // Declining must restore the exact stage-entry state; one clone up
    // front is far cheaper than the first iteration it may discard.
    let entry = layout.clone();
    let die = package.die();
    let cells = cfg.global_cells.max(1);
    let cell_step = ((die.width() + die.height()) / 2) as f64 / cells as f64;
    let (cells_x, cells_y) = (space.config().cells_x, space.config().cells_y);
    let layers = space.layer_count();
    let present_w = NEGOTIATION_PRESENT_WEIGHT * cell_step;
    let history_w = NEGOTIATION_HISTORY_WEIGHT * cell_step;
    space.set_congestion(Some(info_tile::CongestionMap::new(
        cells_x, cells_y, layers, present_w, history_w,
    )));
    let corridor_margin = 8 * (package.rules().min_spacing + package.rules().wire_width);

    let mut neg = NegotiationStats::default();
    let mut routed: BTreeSet<NetId> = BTreeSet::new();
    let mut queue: Vec<NetId> = crate::ordering::feature_order_threaded(package, space, nets, fail_expansions, threads);
    let mut last_failed: BTreeMap<NetId, u64>;
    let mut aborted = false;
    let mut best_failed = usize::MAX;
    let mut stagnant = 0u32;

    loop {
        neg.iterations += 1;
        tel.count(Counter::NegotiationIterations, 1);
        let iter_t0 = std::time::Instant::now();
        let tally = run_negotiated_pass(
            package, layout, space, &queue, cfg, ctx, threads, batcher, stats, tel,
        );
        for (id, e) in tally.internal {
            result.recovered.push((id, e));
            result.failed.push(id);
        }
        aborted |= !tally.skipped.is_empty();
        for id in tally.skipped {
            result.failed.push(id);
            result.skipped.push(id);
        }
        routed.extend(tally.routed.iter().copied());
        for (&id, &exp) in &tally.failed {
            fail_expansions.insert(id, exp);
        }
        last_failed = tally.failed;

        let contested = contested_cells(package, space, last_failed.keys().copied());
        neg.final_overuse = contested.len() as u32;
        tel.count(Counter::NegotiationOveruse, contested.len() as u64);
        neg.history_totals
            .push(space.congestion().map_or(0.0, |m| m.total_history()));
        tel.record_span("negotiation_iteration", iter_t0.elapsed().as_secs_f64());
        if last_failed.is_empty() {
            neg.converged = !aborted;
            break;
        }
        if last_failed.len() < best_failed {
            best_failed = last_failed.len();
            stagnant = 0;
        } else {
            stagnant += 1;
        }
        if ctx.interrupted() {
            break;
        }
        // Mass failure means this circuit is not negotiation's regime:
        // decline (restore the entry state, let the legacy front run)
        // rather than churning victims or handing rip-up the wreckage.
        // Checked after the interrupt — a cancelled run keeps its legal
        // partial layout instead of redoing work it has no budget for.
        if last_failed.len() > NEGOTIATION_MASS_FAILURE.max(nets.len() / 10) {
            neg.declined = true;
            break;
        }
        if neg.iterations >= NEGOTIATION_MAX_ITERS || stagnant >= NEGOTIATION_PATIENCE {
            break;
        }

        // Iteration boundary: escalate history on the contested cells (a
        // panic-path space rebuild drops the map; reinstall fresh rather
        // than silently degrading to plain shortest-path).
        if space.congestion().is_none() {
            space.set_congestion(Some(info_tile::CongestionMap::new(
                cells_x, cells_y, layers, present_w, history_w,
            )));
        }
        {
            let m = space.congestion_mut().expect("installed above");
            let mut via_cells: BTreeSet<(usize, usize)> = BTreeSet::new();
            for &(l, cx, cy) in &contested {
                m.add_history(l, cx, cy, NEGOTIATION_HISTORY_STEP);
                via_cells.insert((cx, cy));
            }
            for (cx, cy) in via_cells {
                m.add_via_history(cx, cy, NEGOTIATION_HISTORY_STEP);
            }
        }

        // Victims: routed nets with geometry inside a failed net's
        // corridor, nearest-to-terminal first — the rip-up ranking, but
        // negotiated evictions re-route under escalated history instead
        // of trial-and-restore.
        let victims =
            select_victims(package, layout, &routed, last_failed.keys().copied(), corridor_margin, threads);
        let mut touched: Vec<Rect> = Vec::new();
        for &v in &victims {
            net_geometry_rects(layout, v, &mut touched);
            layout.remove_net(v);
            routed.remove(&v);
        }
        if !touched.is_empty() {
            let rebuilt = space.rebuild_dirty_multi(package, layout, &touched);
            tel.count(Counter::CellsRebuilt, rebuilt.len() as u64);
        }
        refresh_present(layout, space, &routed);

        let requeue: Vec<NetId> =
            victims.iter().chain(last_failed.keys()).copied().collect();
        tel.count(Counter::NegotiationReroutes, requeue.len() as u64);
        neg.reroutes += requeue.len() as u64;
        queue = crate::ordering::feature_order_threaded(package, space, &requeue, fail_expansions, threads);
    }

    if neg.declined {
        // Mass-failure bail: discard every commit this front made and
        // hand the stage back exactly its entry state — the legacy front
        // then runs as if congestion mode were off, so a declined run
        // can never route fewer nets than the legacy path. The caught
        // internal errors stay in `recovered` (they happened), but their
        // nets get their normal legacy attempts.
        *layout = entry;
        *space = build_stage_space(package, layout, cfg, tel);
        result.routed.clear();
        result.failed.clear();
        result.skipped.clear();
        fail_expansions.clear();
        tel.record_span("negotiation", t0.elapsed().as_secs_f64());
        result.negotiation = Some(neg);
        return false;
    }
    // Unconverged stragglers go to the shared rip-up fallback.
    result.failed.extend(last_failed.keys().copied());
    result.routed.extend(routed.iter().copied());
    // Strip the cost layers so the fallback (and any later consumer of
    // this space) searches exactly like the legacy path.
    space.set_congestion(None);
    tel.record_span("negotiation", t0.elapsed().as_secs_f64());
    result.negotiation = Some(neg);
    true
}

/// The post-rip-up endgame loop of a *declined* negotiated run: the
/// legacy front and rip-up have done their best, and whatever is still
/// failed gets negotiated on top of that result. Structure per
/// iteration: escalate history around the (already proven) failures,
/// evict their corridor victims, re-route the batch under the inflated
/// costs — escalate-*first*, unlike the front, because rip-up just
/// demonstrated these nets fail at baseline costs.
///
/// Routability is monotone by construction: the loop snapshots every new
/// routed-count maximum and restores the best layout at exit, so a
/// declined negotiated run routes ≥ the legacy path — strictly more
/// whenever any iteration recovers a net rip-up could not. Bounded by
/// [`NEGOTIATION_MAX_ITERS`] and [`NEGOTIATION_ENDGAME_PATIENCE`]; a
/// cancel token stops it between commits and the best layout still wins.
#[allow(clippy::too_many_arguments)]
fn negotiate_endgame(
    package: &Package,
    layout: &mut Layout,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    threads: usize,
    batcher: &mut BatchController,
    space: &mut RoutingSpace,
    stats: &mut astar::SearchStats,
    tel: &Sink,
    result: &mut SequentialResult,
    fail_expansions: &mut BTreeMap<NetId, u64>,
) {
    let t0 = std::time::Instant::now();
    let die = package.die();
    let cells = cfg.global_cells.max(1);
    let cell_step = ((die.width() + die.height()) / 2) as f64 / cells as f64;
    let (cells_x, cells_y) = (space.config().cells_x, space.config().cells_y);
    let layers = space.layer_count();
    let present_w = NEGOTIATION_PRESENT_WEIGHT * cell_step;
    let history_w = NEGOTIATION_HISTORY_WEIGHT * cell_step;
    let corridor_margin = 8 * (package.rules().min_spacing + package.rules().wire_width);

    let mut routed: BTreeSet<NetId> = std::mem::take(&mut result.routed).into_iter().collect();
    let mut failed: BTreeMap<NetId, u64> = std::mem::take(&mut result.failed)
        .into_iter()
        .map(|id| (id, fail_expansions.get(&id).copied().unwrap_or(0)))
        .collect();
    let mut skipped: BTreeSet<NetId> = BTreeSet::new();

    // Best-seen state, seeded with the rip-up result the loop starts
    // from. Restored at exit whenever the final iteration left fewer
    // nets routed — eviction is speculative here, so a regression is
    // possible mid-loop but can never escape the stage.
    let mut best_layout = layout.clone();
    let mut best_routed = routed.clone();
    let mut best_failed = failed.clone();

    space.set_congestion(Some(info_tile::CongestionMap::new(
        cells_x, cells_y, layers, present_w, history_w,
    )));
    refresh_present(layout, space, &routed);

    let mut iters = 0u32;
    let mut stagnant = 0u32;
    let mut aborted = false;
    let mut reroutes = 0u64;
    let mut history_totals: Vec<f64> = Vec::new();
    while iters < NEGOTIATION_MAX_ITERS && !failed.is_empty() && !ctx.interrupted() && !aborted {
        iters += 1;
        tel.count(Counter::NegotiationIterations, 1);
        let iter_t0 = std::time::Instant::now();

        let contested = contested_cells(package, space, failed.keys().copied());
        tel.count(Counter::NegotiationOveruse, contested.len() as u64);
        if space.congestion().is_none() {
            space.set_congestion(Some(info_tile::CongestionMap::new(
                cells_x, cells_y, layers, present_w, history_w,
            )));
        }
        {
            let m = space.congestion_mut().expect("installed above");
            let mut via_cells: BTreeSet<(usize, usize)> = BTreeSet::new();
            for &(l, cx, cy) in &contested {
                m.add_history(l, cx, cy, NEGOTIATION_HISTORY_STEP);
                via_cells.insert((cx, cy));
            }
            for (cx, cy) in via_cells {
                m.add_via_history(cx, cy, NEGOTIATION_HISTORY_STEP);
            }
        }

        let victims =
            select_victims(package, layout, &routed, failed.keys().copied(), corridor_margin, threads);
        let mut touched: Vec<Rect> = Vec::new();
        for &v in &victims {
            net_geometry_rects(layout, v, &mut touched);
            layout.remove_net(v);
            routed.remove(&v);
        }
        if !touched.is_empty() {
            let rebuilt = space.rebuild_dirty_multi(package, layout, &touched);
            tel.count(Counter::CellsRebuilt, rebuilt.len() as u64);
        }
        refresh_present(layout, space, &routed);

        let requeue: Vec<NetId> = victims.iter().chain(failed.keys()).copied().collect();
        tel.count(Counter::NegotiationReroutes, requeue.len() as u64);
        reroutes += requeue.len() as u64;
        let queue = crate::ordering::feature_order_threaded(package, space, &requeue, fail_expansions, threads);
        let tally = run_negotiated_pass(
            package, layout, space, &queue, cfg, ctx, threads, batcher, stats, tel,
        );
        for (id, e) in tally.internal {
            result.recovered.push((id, e));
            failed.insert(id, 0);
        }
        aborted |= !tally.skipped.is_empty();
        skipped.extend(tally.skipped.iter().copied());
        routed.extend(tally.routed.iter().copied());
        for (&id, &exp) in &tally.failed {
            fail_expansions.insert(id, exp);
        }
        failed = tally.failed;
        history_totals.push(space.congestion().map_or(0.0, |m| m.total_history()));
        tel.record_span("negotiation_endgame_iteration", iter_t0.elapsed().as_secs_f64());

        if routed.len() > best_routed.len() {
            best_layout = layout.clone();
            best_routed = routed.clone();
            best_failed = failed.clone();
            stagnant = 0;
        } else {
            stagnant += 1;
            if stagnant >= NEGOTIATION_ENDGAME_PATIENCE {
                break;
            }
        }
    }

    if routed.len() < best_routed.len() {
        *layout = best_layout;
        routed = best_routed;
        failed = best_failed;
        *space = build_stage_space(package, layout, cfg, tel);
    } else {
        space.set_congestion(None);
    }

    let final_overuse = contested_cells(package, space, failed.keys().copied()).len() as u32;
    result.routed.extend(routed.iter().copied());
    result.failed.extend(failed.keys().copied());
    for &id in &skipped {
        if !routed.contains(&id) && !failed.contains_key(&id) {
            result.failed.push(id);
            result.skipped.push(id);
        }
    }
    if let Some(neg) = result.negotiation.as_mut() {
        neg.endgame_iterations = iters;
        neg.reroutes += reroutes;
        neg.final_overuse = final_overuse;
        neg.history_totals.extend(history_totals);
    }
    tel.record_span("negotiation_endgame", t0.elapsed().as_secs_f64());
}

/// Tries to free a path for `id` by evicting nearby routed nets: up to
/// six single victims, then the nearest pair. The failed net and every
/// evicted net must all re-route for an eviction to stick; otherwise the
/// layout **and the routing space** are restored exactly — the space by
/// value from a pre-eviction clone, which is far cheaper than the
/// corridor-wide rebuild it replaces and leaves bit-identical state (a
/// clone carries its original revision tag precisely because it *is*
/// that state).
#[allow(clippy::too_many_arguments)]
fn ripup_and_reroute(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    id: NetId,
    cfg: &RouterConfig,
    routed: &[NetId],
    ctx: &FlowCtx,
    threads: usize,
    stats: &mut astar::SearchStats,
    tel: &Sink,
) -> Result<bool, RouterError> {
    let net = package.net(id);
    let (pa, pb) = (package.pad(net.a).center, package.pad(net.b).center);
    let corridor = info_geom::Rect::new(pa, pb)
        .inflate(8 * (package.rules().min_spacing + package.rules().wire_width));
    // Routed nets with geometry inside the corridor, ranked by how close
    // that geometry comes to either blocked terminal. A failed net is
    // usually starved right at a pad (the route journal shows such nets
    // dying with a tiny reachable component), and the wall around a pad
    // is whichever routes hug *that pad* — not the nets whose own pads
    // happen to sit near the corridor's center, which is what the old
    // pad-midpoint ranking rewarded and why the true blocker could sort
    // past the eviction cutoff.
    //
    // The per-candidate scan is read-only and pure per net, so it runs
    // on the work-stealing pool; eviction trials and commits below stay
    // strictly serial, in ranked order, which keeps the layout
    // thread-invariant (the ranking itself is order-independent: results
    // come back in candidate order and the sort key is deterministic).
    let scan_layout: &Layout = layout;
    let mut keyed: Vec<(NetId, i128, i128)> = parallel_map(routed, threads, |_, &c| {
        let mut da = i128::MAX;
        let mut db = i128::MAX;
        let mut inside = false;
        for r in scan_layout.routes_of(c) {
            for p in r.path.points() {
                inside |= corridor.contains(*p);
                da = da.min(info_geom::euclid_sq(*p, pa));
                db = db.min(info_geom::euclid_sq(*p, pb));
            }
        }
        if inside { Some((c, da, db)) } else { None }
    })
    .into_iter()
    .flatten()
    .collect();
    keyed.sort_by_key(|&(n, da, db)| (da.min(db), n));
    let candidates: Vec<NetId> = keyed.iter().map(|&(n, ..)| n).collect();
    // Eviction sets: up to six single victims, then terminal-aware pairs.
    // A wall around a pad can be two routes deep (the journal shows
    // single evictions enlarging the starved component without freeing
    // it), so try the two nets nearest each terminal together, and one
    // net per terminal for nets pinched at both ends.
    let mut eviction_sets: Vec<Vec<NetId>> =
        candidates.iter().take(6).map(|&v| vec![v]).collect();
    let mut by_a = keyed.clone();
    by_a.sort_by_key(|&(n, da, _)| (da, n));
    let mut by_b = keyed;
    by_b.sort_by_key(|&(n, _, db)| (db, n));
    let mut push_pair = |x: NetId, y: NetId| {
        if x != y {
            let pair = vec![x.min(y), x.max(y)];
            if !eviction_sets.contains(&pair) {
                eviction_sets.push(pair);
            }
        }
    };
    if by_a.len() >= 2 {
        push_pair(by_a[0].0, by_a[1].0);
        push_pair(by_b[0].0, by_b[1].0);
        push_pair(by_a[0].0, by_b[0].0);
    }
    for victims in eviction_sets {
        if ctx.interrupted() {
            return Ok(false);
        }
        tel.count(Counter::RipupAttempts, 1);
        let victim_ids: Vec<u32> = victims.iter().map(|v| v.0).collect();
        let snapshot = layout.clone();
        let space_snapshot = space.clone();
        // Incremental rebuild over each victim's own geometry: removing a
        // net can only change cells its shapes touch, so the corridor —
        // whose cells the removals leave untouched — needs no rebuild.
        let mut touched: Vec<Rect> = Vec::new();
        for &v in &victims {
            net_geometry_rects(layout, v, &mut touched);
            layout.remove_net(v);
        }
        let rebuilt = space.rebuild_dirty_multi(package, layout, &touched);
        tel.count(Counter::CellsRebuilt, rebuilt.len() as u64);
        // try_route_net rebuilds the space over each commit's own bbox.
        // One journal record per eviction-set trial: the target's own
        // draft when it decides the trial, or — when the target routed
        // but a victim could not re-route — the target's draft with the
        // victim's failure substituted (that victim is why the set fell
        // through).
        let attempt: Result<(bool, AttemptDraft), RouterError> = (|| {
            let (draft, committed) =
                try_route_net(package, layout, space, id, cfg, ctx, stats, tel)?;
            if committed.is_none() {
                return Ok((false, draft));
            }
            for &v in &victims {
                let (vdraft, vcommitted) =
                    try_route_net(package, layout, space, v, cfg, ctx, stats, tel)?;
                if vcommitted.is_none() {
                    return Ok((false, AttemptDraft { outcome: vdraft.outcome, ..draft }));
                }
            }
            Ok((true, draft))
        })();
        if let Ok((stuck, draft)) = &attempt {
            tel.record(draft.to_record(id, Pass::RipUp, victim_ids));
            if *stuck {
                tel.count(Counter::RipupCommits, 1);
                return Ok(true);
            }
        }
        // Restore exactly — both by value, so no rebuild runs at all on
        // the (common) failure path.
        *layout = snapshot;
        *space = space_snapshot;
        tel.count(Counter::SnapshotRestores, 1);
        // An internal failure during eviction aborts the search for this
        // net (the layout is already restored); geometric failure tries
        // the next eviction set.
        attempt?;
    }
    Ok(false)
}

/// What a read-only planning attempt produced, plus every global cell it
/// read — tiles and via sites touched by A\*, and the cells covering the
/// proposal's clearance halo (which bound the layout geometry the
/// crossing and clearance checks depend on). The speculative executor
/// applies `real` only while this read set is disjoint from the cells
/// rebuilt by earlier commits in the same batch.
struct PlanOutcome {
    /// The validated realization, or `None` on geometric failure.
    real: Option<realize::RealizedNet>,
    /// Sorted global cells the plan read.
    read_cells: Vec<(usize, usize)>,
    /// Statistics of this plan's one A\* search.
    search: astar::SearchStats,
    /// The journal draft of this attempt (recorded only if the plan is
    /// applied, or recomputed, at an authoritative commit point).
    draft: AttemptDraft,
}

/// Adds `cells` and their one-cell ring to `read` (neighbor enumeration
/// in the tile space reads at most the 4-adjacent cells of a tile).
fn extend_ring<I: IntoIterator<Item = (usize, usize)>>(
    read: &mut BTreeSet<(usize, usize)>,
    cells: I,
    space: &RoutingSpace,
) {
    let (nx, ny) = (space.config().cells_x, space.config().cells_y);
    for (cx, cy) in cells {
        for dy in [-1i64, 0, 1] {
            for dx in [-1i64, 0, 1] {
                let (x, y) = (cx as i64 + dx, cy as i64 + dy);
                if x >= 0 && y >= 0 && (x as usize) < nx && (y as usize) < ny {
                    read.insert((x as usize, y as usize));
                }
            }
        }
    }
}

/// Plans one net without mutating anything: A\* search, realization,
/// turn-rule validation, crossing rejection, clearance trial — everything
/// [`try_route_net`] checks before its commit, in the same order.
fn plan_net(
    package: &Package,
    layout: &Layout,
    space: &RoutingSpace,
    id: NetId,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
) -> Result<PlanOutcome, RouterError> {
    let net = package.net(id);
    let src = (package.pad_layer(net.a), package.pad(net.a).center);
    let dst = (package.pad_layer(net.b), package.pad(net.b).center);
    ctx.check(FaultSite::AstarExpand)?;
    let opts = astar::SearchOptions {
        windowed: cfg.search_window,
        arena: cfg.search_arena,
        expansion_budget: cfg.retry_expansion_budget,
        ..Default::default()
    };
    let mut search = astar::SearchStats::default();
    let (found, trace) = astar::route_traced_cancellable(
        space,
        id,
        src,
        dst,
        opts,
        Some(ctx.token()),
        &mut search,
    );
    let mut read = BTreeSet::new();
    extend_ring(&mut read, trace, space);
    let escalated = search.window_escalations > 0;
    let draft = move |outcome: AttemptOutcome| AttemptDraft {
        windowed: opts.windowed,
        escalated,
        expansions: search.nodes_expanded,
        outcome,
    };
    let reject = |read: BTreeSet<(usize, usize)>, reason: FailureReason| {
        Ok(PlanOutcome {
            real: None,
            read_cells: read.into_iter().collect(),
            search,
            draft: draft(AttemptOutcome::Failed(reason)),
        })
    };
    let found = match found {
        Ok(found) => found,
        Err(f) => return reject(read, search_failure_reason(f, escalated)),
    };
    let Some(real) = realize::realize(&found, src, dst) else {
        return reject(read, FailureReason::RealizeRejected);
    };
    // The remaining checks read layout geometry near the proposal: any
    // route that could cross it, or any shape that could violate spacing
    // against it, has a point inside this halo — so its cells complete
    // the read set.
    if let Some(b) = real.bbox() {
        let margin = space.config().clearance + space.config().via_width;
        read.extend(space.cells_touching(b.inflate(margin)));
    }
    // Validate the realization before committing.
    if real.routes.iter().any(|(_, pl)| pl.validate().is_err()) {
        return reject(read, FailureReason::RealizeRejected);
    }
    // Reject hard crossings against foreign nets (the tile path should
    // avoid them; realization corner cases can still clip a boundary).
    for (layer, pl) in &real.routes {
        for r in layout.routes_on(*layer) {
            if r.net != id && pl.crosses(&r.path) {
                return reject(read, FailureReason::CrossingRejected);
            }
        }
    }
    // Clearance trial: realization may stray slightly outside the tile
    // path; never commit geometry the DRC would reject.
    let proposal =
        crate::trial::Proposal { routes: real.routes.clone(), vias: real.vias.clone() };
    if !crate::trial::clearance_ok(package, layout, id, &proposal) {
        return reject(read, FailureReason::ClearanceRejected);
    }
    Ok(PlanOutcome {
        real: Some(real),
        read_cells: read.into_iter().collect(),
        search,
        draft: draft(AttemptOutcome::Routed { f: found.f_accept, g: found.g_accept }),
    })
}

/// Commits a validated plan: adds its geometry to the layout and rebuilds
/// the dirty cells of the space, returning them. The fault check runs
/// before any mutation, so an `Err` leaves the layout untouched.
fn commit_plan(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    id: NetId,
    real: realize::RealizedNet,
    ctx: &FlowCtx,
) -> Result<Vec<(usize, usize)>, RouterError> {
    ctx.check(FaultSite::TileViaInsert)?;
    // Dirty rects per wire segment and via, not the geometry's bounding
    // hull — rebuild cost is per touched cell, and a diagonal route's
    // hull is mostly empty space.
    let mut dirty: Vec<Rect> = Vec::new();
    for (_, pl) in &real.routes {
        for s in pl.segments() {
            dirty.push(Rect::new(s.a, s.b));
        }
    }
    for (at, _, _) in &real.vias {
        dirty.push(Rect::new(*at, *at));
    }
    for (layer, pl) in real.routes {
        layout.add_route(id, layer, pl);
    }
    for (at, top, bot) in real.vias {
        layout.add_via(id, at, package.rules().via_width, top, bot, false);
    }
    Ok(space.rebuild_dirty_multi(package, layout, &dirty))
}

/// Attempts one net; on success commits geometry and rebuilds the dirty
/// part of the space, returning the rebuilt cells.
///
/// `Ok(None)` is a geometric failure (no path / realization rejected) —
/// the normal retry path. `Err` is an internal failure (injected fault);
/// both fault checks run before any mutation, so an `Err` leaves the
/// layout untouched.
#[allow(clippy::too_many_arguments)]
fn try_route_net(
    package: &Package,
    layout: &mut Layout,
    space: &mut RoutingSpace,
    id: NetId,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    stats: &mut astar::SearchStats,
    tel: &Sink,
) -> AttemptResult {
    let outcome = plan_net(package, layout, space, id, cfg, ctx)?;
    stats.absorb(&outcome.search);
    let Some(real) = outcome.real else {
        return Ok((outcome.draft, None));
    };
    let rebuilt = commit_plan(package, layout, space, id, real, ctx)?;
    tel.count(Counter::CellsRebuilt, rebuilt.len() as u64);
    Ok((outcome.draft, Some(rebuilt)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{drc, DesignRules, PackageBuilder};

    fn simple_package(nets: usize) -> info_model::Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 800_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 700_000)));
        for i in 0..nets {
            let y = 150_000 + 80_000 * i as i64;
            let io = b.add_io_pad(c, Point::new(380_000, y)).unwrap();
            let g = b.add_bump_pad(Point::new(700_000, y)).unwrap();
            b.add_net(io, g).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn routes_all_simple_nets() {
        let pkg = simple_package(4);
        let cfg = RouterConfig::default().with_global_cells(8);
        let mut layout = Layout::new(&pkg);
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let res = route_sequential(&pkg, &mut layout, &nets, &cfg, &crate::resilience::FlowCtx::default(), None, &Sink::disabled());
        assert_eq!(res.failed.len(), 0, "failed: {:?}", res.failed);
        for n in pkg.nets() {
            assert!(drc::is_connected(&pkg, &layout, n.id), "{} disconnected", n.id);
        }
        // Each net crosses from the top layer to the bottom (bump pads):
        // at least one via per net.
        assert!(layout.via_count() >= 4);
    }

    #[test]
    fn sequential_respects_existing_geometry() {
        let pkg = simple_package(2);
        let cfg = RouterConfig::default().with_global_cells(8);
        let mut layout = Layout::new(&pkg);
        // Route net 0 first, then net 1 must avoid it.
        let res0 = route_sequential(&pkg, &mut layout, &[NetId(0)], &cfg, &crate::resilience::FlowCtx::default(), None, &Sink::disabled());
        assert_eq!(res0.routed.len(), 1);
        let res1 = route_sequential(&pkg, &mut layout, &[NetId(1)], &cfg, &crate::resilience::FlowCtx::default(), None, &Sink::disabled());
        assert_eq!(res1.routed.len(), 1);
        let report = drc::check(&pkg, &layout);
        assert!(
            report
                .violations()
                .iter()
                .all(|v| !matches!(v, info_model::drc::Violation::Crossing { .. })),
            "{:?}",
            report.violations()
        );
    }

    #[test]
    fn parallel_threads_produce_identical_layouts() {
        let pkg = simple_package(6);
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let route_with_threads = |threads: usize| {
            let cfg = RouterConfig::default().with_global_cells(10).with_threads(threads);
            let mut layout = Layout::new(&pkg);
            let res = route_sequential(
                &pkg,
                &mut layout,
                &nets,
                &cfg,
                &crate::resilience::FlowCtx::default(),
                None,
                &Sink::disabled(),
            );
            (layout.canonical_hash(), res.routed, res.failed)
        };
        let baseline = route_with_threads(1);
        for threads in [2, 4, 8] {
            let got = route_with_threads(threads);
            assert_eq!(got, baseline, "threads={threads} diverged from threads=1");
        }
    }

    #[test]
    fn fault_plan_forces_single_thread() {
        use crate::resilience::{FaultDirective, FaultKind, FaultPlan, FaultSite};
        let cfg = RouterConfig::default()
            .with_threads(8)
            .with_fault_plan(FaultPlan::single(FaultSite::AstarExpand));
        assert_eq!(effective_threads(&cfg), 1);
        assert_eq!(effective_threads(&RouterConfig::default().with_threads(8)), 8);
        // A pool-worker-only plan is order-insensitive: the configured
        // thread count survives, which is what lets the thread-scaling
        // fault tests actually run multi-threaded.
        let pool_only = RouterConfig::default()
            .with_threads(8)
            .with_fault_plan(FaultPlan::single_panic(FaultSite::PoolWorker));
        assert_eq!(effective_threads(&pool_only), 8);
        // Mixing in any other site re-arms the single-thread fallback.
        let mixed = RouterConfig::default().with_threads(8).with_fault_plan(
            FaultPlan::single_panic(FaultSite::PoolWorker).with(FaultDirective {
                site: FaultSite::LpFactorize,
                kind: FaultKind::Error,
                skip: 0,
                fires: 1,
            }),
        );
        assert_eq!(effective_threads(&mixed), 1);
    }

    #[test]
    fn batch_controller_tracks_conflict_rate() {
        let tel = Sink::disabled();
        let mut b = BatchController::new(4);
        assert_eq!(b.batch(), 8);
        // Clean batches grow the size up to threads * 8…
        b.observe(8, 0, &tel);
        assert_eq!(b.batch(), 16);
        b.observe(16, 0, &tel);
        b.observe(32, 1, &tel); // 1/32 < LOW still grows
        assert_eq!(b.batch(), 32);
        b.observe(32, 0, &tel);
        assert_eq!(b.batch(), 32, "clamped at threads * 8");
        // …heavy conflicts halve it down to the thread count…
        b.observe(32, 16, &tel);
        assert_eq!(b.batch(), 16);
        b.observe(16, 15, &tel);
        b.observe(8, 8, &tel);
        b.observe(4, 4, &tel);
        assert_eq!(b.batch(), 4, "clamped at threads");
        // …and a moderate rate holds steady.
        b.observe(4, 1, &tel); // 0.25 is not > HIGH
        assert_eq!(b.batch(), 4);
        b.observe(0, 0, &tel); // empty batch is a no-op
        assert_eq!(b.batch(), 4);
    }

    #[test]
    fn failed_ripup_restores_untouched_geometry_exactly() {
        // One wire layer. Net 0's I/O pad is fenced in by obstacles, so it
        // can never route. Net 1 (second chip, outside the fence) routes
        // through net 0's corridor, making it an eviction candidate.
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 800_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(300_000, 300_000)));
        let io0 = b.add_io_pad(c1, Point::new(200_000, 200_000)).unwrap();
        let g0 = b.add_bump_pad(Point::new(700_000, 200_000)).unwrap();
        b.add_net(io0, g0).unwrap();
        let c2 = b.add_chip(Rect::new(Point::new(450_000, 150_000), Point::new(550_000, 250_000)));
        let io1 = b.add_io_pad(c2, Point::new(500_000, 200_000)).unwrap();
        let g1 = b.add_bump_pad(Point::new(600_000, 500_000)).unwrap();
        b.add_net(io1, g1).unwrap();
        for fence in [
            Rect::new(Point::new(50_000, 50_000), Point::new(350_000, 60_000)),
            Rect::new(Point::new(50_000, 340_000), Point::new(350_000, 350_000)),
            Rect::new(Point::new(50_000, 50_000), Point::new(60_000, 350_000)),
            Rect::new(Point::new(340_000, 50_000), Point::new(350_000, 350_000)),
        ] {
            b.add_obstacle(info_model::WireLayer(0), fence).unwrap();
        }
        let pkg = b.build().unwrap();
        let cfg = RouterConfig::default().with_global_cells(10);
        let ctx = crate::resilience::FlowCtx::default();
        let mut layout = Layout::new(&pkg);
        let res =
            route_sequential(&pkg, &mut layout, &[NetId(1)], &cfg, &ctx, None, &Sink::disabled());
        assert_eq!(res.routed, vec![NetId(1)], "net 1 must route: {res:?}");

        let mut space = RoutingSpace::build(&pkg, &layout, space_config(&pkg, &cfg));
        let before = layout.canonical_hash();
        let got = ripup_and_reroute(
            &pkg,
            &mut layout,
            &mut space,
            NetId(0),
            &cfg,
            &[NetId(1)],
            &ctx,
            2,
            &mut astar::SearchStats::default(),
            &Sink::disabled(),
        )
        .expect("no internal failure");
        assert!(!got, "fenced net cannot route even after evictions");
        assert_eq!(
            layout.canonical_hash(),
            before,
            "failed rip-up must restore every untouched net's geometry exactly"
        );
        assert!(drc::is_connected(&pkg, &layout, NetId(1)));
    }

    #[test]
    fn impossible_net_reported_failed() {
        // One wire layer; a pad fully fenced in by an obstacle ring cannot
        // escape (no via escape exists with a single layer).
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 800_000)),
            DesignRules::default(),
            1,
        );
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(300_000, 300_000)));
        let io = b.add_io_pad(c, Point::new(200_000, 200_000)).unwrap();
        let io2 = b.add_io_pad(c, Point::new(150_000, 150_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 400_000)).unwrap();
        let g2 = b.add_bump_pad(Point::new(700_000, 600_000)).unwrap();
        b.add_net(io, g).unwrap();
        b.add_net(io2, g2).unwrap();
        // Fence: four obstacle bars enclosing the chip area completely.
        b.add_obstacle(info_model::WireLayer(0), Rect::new(Point::new(50_000, 50_000), Point::new(350_000, 60_000))).unwrap();
        b.add_obstacle(info_model::WireLayer(0), Rect::new(Point::new(50_000, 340_000), Point::new(350_000, 350_000))).unwrap();
        b.add_obstacle(info_model::WireLayer(0), Rect::new(Point::new(50_000, 50_000), Point::new(60_000, 350_000))).unwrap();
        b.add_obstacle(info_model::WireLayer(0), Rect::new(Point::new(340_000, 50_000), Point::new(350_000, 350_000))).unwrap();
        let pkg = b.build().unwrap();
        let cfg = RouterConfig::default().with_global_cells(10);
        let mut layout = Layout::new(&pkg);
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let res = route_sequential(&pkg, &mut layout, &nets, &cfg, &crate::resilience::FlowCtx::default(), None, &Sink::disabled());
        assert_eq!(res.failed.len(), 2, "fenced nets cannot route: {res:?}");
    }
}
