//! Stage 1 — Preprocessing (§III-A).
//!
//! Finds the regularity inside the irregular pad structure: identifies
//! peripheral I/O pads whose nets can be routed concurrently through the
//! fan-out region, partitions the fan-out region into grids, builds the
//! fan-out grid graph and its MST, pre-routes the candidates along the
//! MST, estimates congestion, and constructs the circular model.

use crate::config::RouterConfig;
use crate::resilience::{FaultSite, FlowCtx, RouterError};
use info_geom::{x_arch_len, Point, Rect};
use info_model::{NetId, Package, PadId, PadKind};
use info_tile::{line_extension_partition, merge_cells, CellGraph, MstEdge};

/// Where a net enters the fan-out region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessInfo {
    /// The pad behind this access point.
    pub pad: PadId,
    /// The fan-out access point (on the fan-in boundary for peripheral
    /// I/O pads; the pad center for bump pads).
    pub at: Point,
    /// Index of the fan-out grid containing the access point.
    pub grid: usize,
    /// Position on the circular model boundary.
    pub circle: usize,
}

/// A net eligible for fan-out concurrent routing, with its pre-route and
/// congestion metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateNet {
    /// The net.
    pub net: NetId,
    /// First terminal's access.
    pub a: AccessInfo,
    /// Second terminal's access.
    pub b: AccessInfo,
    /// Pre-routed path as fan-out grid indices (MST path).
    pub pre_route: Vec<usize>,
    /// Detour rate `r_d(n)`: pre-route length over terminal distance.
    pub detour_rate: f64,
    /// Largest MST-edge overflow along the pre-route (`f_max`).
    pub f_max: f64,
    /// Average MST-edge overflow along the pre-route (`f_avg`).
    pub f_avg: f64,
}

impl CandidateNet {
    /// Chord weight per the paper's Eq. (2).
    pub fn weight(&self, cfg: &RouterConfig) -> f64 {
        let log_delta = |x: f64| x.ln() / cfg.delta.ln();
        let denom = cfg.alpha * self.detour_rate
            + cfg.beta * log_delta(cfg.delta + self.f_max)
            + cfg.gamma * log_delta(cfg.delta + self.f_avg);
        if denom <= 0.0 {
            f64::MAX / 1e6
        } else {
            1.0 / denom
        }
    }
}

/// The preprocessing result feeding stages 2–3.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Merged fan-out grids.
    pub grids: Vec<Rect>,
    /// Fan-out grid graph.
    pub graph: CellGraph,
    /// MST edges of the grid graph.
    pub mst: Vec<MstEdge>,
    /// Concurrent-routing candidates in circular order of their first
    /// access point.
    pub candidates: Vec<CandidateNet>,
    /// Total number of circle positions allocated.
    pub circle_points: usize,
    /// Per-MST-edge capacities (wires that fit through the shared border).
    pub capacities: Vec<f64>,
    /// Per-MST-edge demands (pre-routes crossing the edge).
    pub demands: Vec<f64>,
}

/// Projects a point inside a rectangle onto its nearest boundary point.
fn project_to_boundary(r: Rect, p: Point) -> Point {
    let d_left = p.x - r.lo.x;
    let d_right = r.hi.x - p.x;
    let d_bot = p.y - r.lo.y;
    let d_top = r.hi.y - p.y;
    let m = d_left.min(d_right).min(d_bot).min(d_top);
    if m == d_left {
        Point::new(r.lo.x, p.y)
    } else if m == d_right {
        Point::new(r.hi.x, p.y)
    } else if m == d_bot {
        Point::new(p.x, r.lo.y)
    } else {
        Point::new(p.x, r.hi.y)
    }
}

/// Runs preprocessing over a package.
///
/// Fails only on structural problems (degenerate fan-out partition) or an
/// injected `preprocess.partition` fault; the flow degrades to routing
/// every net sequentially in that case.
pub fn preprocess(
    package: &Package,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
) -> Result<Preprocessed, RouterError> {
    // --- Fan-out region partitioning (§III-A2).
    let holes: Vec<Rect> = package.chips().iter().map(|c| c.outline).collect();
    let raw = line_extension_partition(package.die(), &holes);
    ctx.check(FaultSite::PreprocessPartition)?;
    // Merge only genuinely fragmented slivers: an aggressive minimum size
    // here would fuse narrow corridors with their mouths and erase the
    // very capacity bottlenecks the congestion model must see.
    let min_dim = package.die().width().min(package.die().height()) / 40;
    let grids = merge_cells(raw, min_dim.max(1), usize::MAX);
    if grids.is_empty() {
        return Err(RouterError::Preprocess(format!(
            "fan-out partition of die {} produced no grids",
            package.die()
        )));
    }
    let graph = CellGraph::build(grids.clone());
    let mst = graph.mst();

    // --- Peripheral I/O identification (§III-A1).
    let pitch = (package.rules().wire_width + package.rules().min_spacing) as f64;
    let access_of = |pad_id: PadId| -> Option<Point> {
        let pad = package.pad(pad_id);
        match pad.kind {
            PadKind::Io { chip } => {
                let outline = package.chip(chip).outline;
                let b = project_to_boundary(outline, pad.center);
                let dist = info_geom::euclid(b, pad.center);
                if dist <= cfg.peripheral_margin as f64 {
                    Some(b)
                } else {
                    None
                }
            }
            PadKind::Bump => {
                // Bump pads already live in the fan-out region unless a
                // chip shadows them in plan view.
                if package.chips().iter().any(|c| c.outline.contains(pad.center)) {
                    None
                } else {
                    Some(pad.center)
                }
            }
        }
    };

    // --- Candidate collection + MST pre-routing (§III-A3).
    struct RawCand {
        net: NetId,
        pads: [PadId; 2],
        at: [Point; 2],
        grid: [usize; 2],
        path: Vec<usize>,
    }
    let mut raw_cands: Vec<RawCand> = Vec::new();
    for n in package.nets() {
        // Cooperative budget: stop collecting candidates when the stage
        // runs over; uncollected nets simply route sequentially.
        if ctx.interrupted() {
            break;
        }
        let (Some(pa), Some(pb)) = (access_of(n.a), access_of(n.b)) else {
            continue;
        };
        // Nudge access points into the fan-out region if they sit exactly
        // on a chip boundary shared with a grid.
        let (Some(ga), Some(gb)) = (graph.cell_containing(pa), graph.cell_containing(pb)) else {
            continue;
        };
        let Some(path) = graph.mst_path(&mst, ga, gb) else {
            continue;
        };
        raw_cands.push(RawCand { net: n.id, pads: [n.a, n.b], at: [pa, pb], grid: [ga, gb], path });
    }

    // --- Congestion estimation: capacities and demands per MST edge.
    let mut capacities = Vec::with_capacity(mst.len());
    for e in &mst {
        capacities.push((e.shared as f64 / pitch).max(1.0));
    }
    let edge_index = |a: usize, b: usize| -> Option<usize> {
        mst.iter().position(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    };
    let mut demands = vec![0.0f64; mst.len()];
    for c in &raw_cands {
        for w in c.path.windows(2) {
            if let Some(ei) = edge_index(w[0], w[1]) {
                demands[ei] += 1.0;
            }
        }
    }

    // --- Circular model (§III-A3): Euler-tour the MST; on the first visit
    // of each grid, lay down its access points ordered by angle around the
    // grid center. The tour order around the tree is exactly the boundary
    // walk of a closed shape enclosing the MST.
    let mut tree_adj: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for e in &mst {
        tree_adj[e.a].push(e.b);
        tree_adj[e.b].push(e.a);
    }
    for l in tree_adj.iter_mut() {
        l.sort_unstable();
    }
    // Access points per grid: (angle, candidate index, terminal 0/1).
    let mut per_grid: Vec<Vec<(f64, usize, usize)>> = vec![Vec::new(); graph.len()];
    for (ci, c) in raw_cands.iter().enumerate() {
        for t in 0..2 {
            let g = c.grid[t];
            let center = grids[g].center();
            let v = c.at[t] - center;
            let angle = (v.dy as f64).atan2(v.dx as f64);
            per_grid[g].push((angle, ci, t));
        }
    }
    for l in per_grid.iter_mut() {
        l.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    }
    let mut circle_of: Vec<[usize; 2]> = vec![[usize::MAX; 2]; raw_cands.len()];
    let mut next_pos = 0usize;
    let mut visited = vec![false; graph.len()];
    // Iterative DFS from grid 0 (and any other components).
    for root in 0..graph.len() {
        if visited[root] {
            continue;
        }
        let mut stack = vec![root];
        visited[root] = true;
        while let Some(v) = stack.pop() {
            for &(_, ci, t) in &per_grid[v] {
                circle_of[ci][t] = next_pos;
                next_pos += 1;
            }
            for &w in tree_adj[v].iter().rev() {
                if !visited[w] {
                    visited[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    let circle_points = next_pos;

    // --- Finalize candidates with rates.
    let mut candidates = Vec::with_capacity(raw_cands.len());
    for (ci, c) in raw_cands.iter().enumerate() {
        // Pre-route length through grid centers.
        let mut length = 0.0;
        let mut prev = c.at[0];
        for &g in &c.path {
            let center = grids[g].center();
            length += x_arch_len(prev, center);
            prev = center;
        }
        length += x_arch_len(prev, c.at[1]);
        let direct = x_arch_len(c.at[0], c.at[1]).max(1.0);
        let mut f_max = 0.0f64;
        let mut f_sum = 0.0f64;
        let mut edges = 0usize;
        for w in c.path.windows(2) {
            if let Some(ei) = edge_index(w[0], w[1]) {
                let ov = if capacities[ei] >= demands[ei] {
                    0.0
                } else {
                    demands[ei] / capacities[ei]
                };
                f_max = f_max.max(ov);
                f_sum += ov;
                edges += 1;
            }
        }
        candidates.push(CandidateNet {
            net: c.net,
            a: AccessInfo { pad: c.pads[0], at: c.at[0], grid: c.grid[0], circle: circle_of[ci][0] },
            b: AccessInfo { pad: c.pads[1], at: c.at[1], grid: c.grid[1], circle: circle_of[ci][1] },
            pre_route: c.path.clone(),
            detour_rate: (length / direct).max(1.0),
            f_max,
            f_avg: if edges == 0 { 0.0 } else { f_sum / edges as f64 },
        });
    }

    Ok(Preprocessed { grids, graph, mst, candidates, circle_points, capacities, demands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_model::{DesignRules, PackageBuilder};

    /// Two chips side by side with peripheral pads facing each other.
    fn two_chip() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
        let c2 = b.add_chip(Rect::new(Point::new(650_000, 150_000), Point::new(900_000, 450_000)));
        // Peripheral pads: near the inner edges.
        let a1 = b.add_io_pad(c1, Point::new(330_000, 250_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(670_000, 250_000)).unwrap();
        // A deep interior pad (not peripheral with the default margin).
        let d1 = b.add_io_pad(c1, Point::new(225_000, 300_000)).unwrap();
        let d2 = b.add_io_pad(c2, Point::new(775_000, 300_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(d1, d2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fanout_partition_avoids_chips() {
        let pkg = two_chip();
        let pre = preprocess(&pkg, &RouterConfig::default(), &crate::resilience::FlowCtx::default()).unwrap();
        assert!(!pre.grids.is_empty());
        for g in &pre.grids {
            for c in pkg.chips() {
                assert!(!g.overlaps_interior(c.outline), "grid {g} overlaps chip");
            }
        }
        // MST spans the fan-out region.
        assert_eq!(pre.mst.len(), pre.grids.len() - 1, "fan-out region is connected");
    }

    #[test]
    fn peripheral_identification() {
        let pkg = two_chip();
        let pre = preprocess(&pkg, &RouterConfig::default(), &crate::resilience::FlowCtx::default()).unwrap();
        // Only the peripheral pair qualifies; the deep pair does not.
        assert_eq!(pre.candidates.len(), 1);
        let c = &pre.candidates[0];
        assert_eq!(c.net, NetId(0));
        // Access points sit on the chip boundaries (x = 350k and 650k).
        assert_eq!(c.a.at.x, 350_000);
        assert_eq!(c.b.at.x, 650_000);
        assert!(c.detour_rate >= 1.0);
        assert!(c.f_max >= 0.0 && c.f_avg <= c.f_max + 1e-12);
    }

    #[test]
    fn wider_margin_admits_interior_pads() {
        let pkg = two_chip();
        let cfg = RouterConfig { peripheral_margin: 200_000, ..RouterConfig::default() };
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(pre.candidates.len(), 2);
        // Circle positions are unique.
        let mut seen = std::collections::BTreeSet::new();
        for c in &pre.candidates {
            assert!(seen.insert(c.a.circle));
            assert!(seen.insert(c.b.circle));
        }
        assert_eq!(pre.circle_points, 4);
    }

    #[test]
    fn weight_decreases_with_congestion() {
        let cfg = RouterConfig::default();
        let base = CandidateNet {
            net: NetId(0),
            a: AccessInfo { pad: info_model::PadId(0), at: Point::origin(), grid: 0, circle: 0 },
            b: AccessInfo { pad: info_model::PadId(1), at: Point::origin(), grid: 0, circle: 1 },
            pre_route: vec![],
            detour_rate: 1.0,
            f_max: 0.0,
            f_avg: 0.0,
        };
        let mut congested = base.clone();
        congested.f_max = 3.0;
        congested.f_avg = 2.0;
        let mut detoured = base.clone();
        detoured.detour_rate = 5.0;
        assert!(base.weight(&cfg) > congested.weight(&cfg));
        assert!(base.weight(&cfg) > detoured.weight(&cfg));
        assert!(base.weight(&cfg).is_finite());
    }

    #[test]
    fn bump_pad_under_chip_excluded() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
        let a1 = b.add_io_pad(c1, Point::new(330_000, 250_000)).unwrap();
        // Bump directly under the chip.
        let g1 = b.add_bump_pad(Point::new(200_000, 300_000)).unwrap();
        let a2 = b.add_io_pad(c1, Point::new(330_000, 350_000)).unwrap();
        let g2 = b.add_bump_pad(Point::new(700_000, 300_000)).unwrap();
        b.add_net(a1, g1).unwrap();
        b.add_net(a2, g2).unwrap();
        let pkg = b.build().unwrap();
        let pre = preprocess(&pkg, &RouterConfig::default(), &crate::resilience::FlowCtx::default()).unwrap();
        // Only the net to the open-area bump qualifies.
        assert_eq!(pre.candidates.len(), 1);
        assert_eq!(pre.candidates[0].net, NetId(1));
    }
}
