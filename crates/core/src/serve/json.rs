//! Strict, dependency-free JSON for the job server.
//!
//! Hand-rolled because the service boundary must not pull in a serde
//! stack, and because the server's robustness contract — *adversarial
//! input returns a typed error, never a panic* — wants a parser whose
//! failure modes are all explicit:
//!
//! - recursion depth is capped ([`MAX_DEPTH`]), so a deeply nested
//!   payload cannot overflow the stack;
//! - numbers must match the JSON grammar **and** land on a finite `f64`
//!   (`NaN`/`Infinity` tokens and overflowing exponents are rejected);
//! - exactly one top-level value is allowed; trailing garbage is an
//!   error, not ignored;
//! - strings must be valid UTF-8 escapes (lone surrogates are rejected).
//!
//! The writer emits the same dialect the parser accepts, so serve
//! responses round-trip.

use std::fmt;

/// Deepest array/object nesting the parser will follow.
pub const MAX_DEPTH: usize = 64;

/// One JSON value. Object member order is preserved (insertion order),
/// which keeps serve responses deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (the parser never produces NaN or ±∞).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

}

/// Serializes the value (the dialect [`parse`] accepts); `to_string()`
/// comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Where and why a parse failed. `offset` is a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value from `text` (strict; see module docs).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut n: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            n = n << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy the unescaped run verbatim (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number does not fit a finite f64"));
        }
        Ok(Json::Num(n))
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // Unrepresentable in JSON; the parser can never produce one, and
        // serve-layer constructors only emit finite values. Null is the
        // honest encoding if one slips through.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let text = r#"{"op":"route","id":"j-1","n":3.5,"neg":-2,"flag":true,"list":[1,2,null],"nested":{"k":"v \"quoted\" é"}}"#;
        let v = parse(text).expect("parses");
        let again = parse(&v.to_string()).expect("round-trips");
        assert_eq!(v, again);
        assert_eq!(v.get("op").and_then(Json::as_str), Some("route"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.5));
        assert_eq!(v.get("list").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn rejects_non_finite_and_bad_numbers() {
        for bad in ["NaN", "Infinity", "-Infinity", "1e999", "01", "1.", ".5", "+1", "--1"] {
            assert!(parse(bad).is_err(), "{bad} must be rejected");
        }
        assert_eq!(parse("-0.5e2"), Ok(Json::Num(-50.0)));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":1,").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err(), "over-deep nesting must be a typed error");
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(parse(r#""😀""#), Ok(Json::Str("😀".to_string())));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn integers_write_without_fraction() {
        assert_eq!(Json::Num(8.0).to_string(), "8");
        assert_eq!(Json::Num(-3.25).to_string(), "-3.25");
    }
}
