//! Routing-as-a-service: a hardened job front end over the flow.
//!
//! The server accepts many routing jobs concurrently on a fixed worker
//! pool and applies three layers of hardening on top of the flow's own
//! stage guards:
//!
//! 1. **Fine-grained cancellation** — every job owns a
//!    [`CancelToken`] threaded through [`InfoRouter::with_cancel_token`]
//!    into the innermost A\* expansion loop, the rip-up pass, and the LP
//!    sweeps. [`JobServer::cancel`] (or the job's `deadline_ms`) lands
//!    within one checkpoint interval, not at the next stage boundary.
//! 2. **Anytime answers** — an interrupted job still returns its legal
//!    partial layout: [`Completion::Degraded`], per-net status, and the
//!    routability it reached (the flow's DRC verification runs either
//!    way).
//! 3. **Fault isolation** — each job attempt runs under `catch_unwind`
//!    with one retry after a backoff; the queue is bounded and rejects
//!    with a typed reason instead of buffering without limit; malformed
//!    job lines produce [`RouterError::BadInput`], never a panic.
//!
//! Jobs on the same circuit share a [`WarmSpaceCache`], so repeat jobs
//! skip the sequential stage's routing-space construction. All of this
//! is observational: a job's routed layout is byte-identical to the
//! same configuration run through [`InfoRouter::route`] directly.
//!
//! The wire protocol ([`serve_lines`]) is JSON lines: one request object
//! per line in, one response object per line out, correlated by `id`
//! (responses may interleave across jobs). See `README.md` for the
//! schema.
//!
//! [`Completion::Degraded`]: crate::flow::Completion::Degraded

pub mod json;

use crate::config::RouterConfig;
use crate::eco::EcoChangeSet;
use crate::flow::{Completion, InfoRouter, RouteOutcome};
use crate::resilience::{panic_message, FaultPlan, FaultSite, FlowCtx, RouterError};
use crate::warm::{fnv1a, WarmSpaceCache};
use info_model::{parse_package, write_package, NetId, Package, PadId};
use info_tile::CancelToken;
use json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One routing job, ready to run.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen correlation id (unique among live jobs).
    pub id: String,
    /// The circuit to route.
    pub package: Arc<Package>,
    /// Router configuration for this job.
    pub cfg: RouterConfig,
    /// Job-level wall-clock budget; an over-budget job returns its legal
    /// partial layout as a degraded answer.
    pub deadline: Option<Duration>,
    /// `Some` makes this an ECO job: the change set is applied as a delta
    /// re-route against the server's cached prior for (circuit, config) —
    /// full-routed on the spot when no prior is cached yet.
    pub changes: Option<EcoChangeSet>,
}

/// Why a submission was turned away at the door (backpressure — the job
/// never entered the queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The bounded queue is full; resubmit after results drain.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A live (queued or running) job already uses this id.
    DuplicateId,
}

impl Reject {
    /// Stable reason string for wire responses.
    pub fn as_str(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::ShuttingDown => "shutting_down",
            Reject::DuplicateId => "duplicate_id",
        }
    }
}

/// Job-server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Distinct (circuit, config) spaces the warm cache holds.
    pub warm_capacity: usize,
    /// Service-layer fault plan (sites `serve.parse`, `serve.worker`,
    /// `serve.cancel`); trigger counts are shared across all jobs.
    pub fault_plan: FaultPlan,
    /// Checkpoints to allow before an injected `serve.cancel` fault trips
    /// the job's token (deterministic mid-search cancel).
    pub cancel_after_checks: u64,
    /// Pause before the single retry of a failed job attempt.
    pub retry_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            warm_capacity: 4,
            fault_plan: FaultPlan::none(),
            cancel_after_checks: 1,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// How one job ended.
#[derive(Debug)]
pub struct JobResult {
    /// The job's correlation id.
    pub id: String,
    /// True when the first attempt failed internally and the retry ran.
    pub retried: bool,
    /// Wall-clock time from dequeue to completion.
    pub elapsed: Duration,
    /// The route outcome, or the typed error that stopped the job.
    pub outcome: Result<Box<RouteOutcome>, RouterError>,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<JobRequest>,
    /// Live tokens by job id — queued and running jobs alike, so a cancel
    /// always has something to trip.
    tokens: BTreeMap<String, CancelToken>,
    shutdown: bool,
}

/// Identifies a prior outcome an ECO job can build on: fingerprints of
/// the circuit text and the router configuration (everything that shapes
/// the base route).
type PriorKey = (u64, u64);

/// Prior outcomes the server remembers for ECO jobs (bounded LRU).
const PRIOR_CAPACITY: usize = 8;

#[derive(Debug)]
struct Inner {
    cfg: ServeConfig,
    state: Mutex<QueueState>,
    work: Condvar,
    warm: Arc<WarmSpaceCache>,
    /// Base outcomes ECO jobs re-route against, most recent first. Route
    /// jobs and ECO results both publish here; the warm-space cache keyed
    /// on the prior layout hash then makes repeat edits start warm.
    priors: Mutex<VecDeque<(PriorKey, Arc<RouteOutcome>)>>,
    /// Serve-layer fault checks; one context for the server's lifetime so
    /// directive trigger counts span jobs.
    fctx: FlowCtx,
}

impl Inner {
    fn prior_key(package: &Package, cfg: &RouterConfig) -> PriorKey {
        (fnv1a(&write_package(package)), fnv1a(&format!("{cfg:?}")))
    }

    fn prior_lookup(&self, key: PriorKey) -> Option<Arc<RouteOutcome>> {
        let mut ps = lock(&self.priors);
        let pos = ps.iter().position(|(k, _)| *k == key)?;
        let hit = ps.remove(pos)?;
        let out = Arc::clone(&hit.1);
        ps.push_front(hit);
        Some(out)
    }

    fn prior_publish(&self, key: PriorKey, out: Arc<RouteOutcome>) {
        let mut ps = lock(&self.priors);
        ps.retain(|(k, _)| *k != key);
        ps.push_front((key, out));
        ps.truncate(PRIOR_CAPACITY);
    }
}

/// A running worker pool (see the module docs).
#[derive(Debug)]
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl JobServer {
    /// Starts the pool. Results arrive on the returned channel in
    /// completion order (not submission order).
    pub fn start(cfg: ServeConfig) -> (JobServer, mpsc::Receiver<JobResult>) {
        let (tx, rx) = mpsc::channel();
        let inner = Arc::new(Inner {
            warm: Arc::new(WarmSpaceCache::new(cfg.warm_capacity)),
            priors: Mutex::new(VecDeque::new()),
            fctx: FlowCtx::new(cfg.fault_plan),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                tokens: BTreeMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let tx = tx.clone();
                thread::Builder::new()
                    .name(format!("rdl-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &tx))
                    .unwrap_or_else(|e| panic!("spawning worker thread: {e}"))
            })
            .collect();
        (JobServer { inner, workers }, rx)
    }

    /// The shared warm cache (observability; tests assert hit counts).
    pub fn warm_cache(&self) -> &Arc<WarmSpaceCache> {
        &self.inner.warm
    }

    /// Enqueues a job, or rejects it with a typed reason. Never blocks.
    pub fn submit(&self, req: JobRequest) -> Result<(), Reject> {
        let mut st = lock(&self.inner.state);
        if st.shutdown {
            return Err(Reject::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            return Err(Reject::QueueFull {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        if st.tokens.contains_key(&req.id) {
            return Err(Reject::DuplicateId);
        }
        let token = CancelToken::new();
        token.arm_job_deadline(req.deadline);
        st.tokens.insert(req.id.clone(), token);
        st.queue.push_back(req);
        drop(st);
        self.inner.work.notify_one();
        Ok(())
    }

    /// Cancels a live job by id. A running job stops within one
    /// checkpoint interval and returns its degraded partial answer; a
    /// queued job returns [`RouterError::Cancelled`] without routing.
    /// False when no live job has this id.
    pub fn cancel(&self, id: &str) -> bool {
        let st = lock(&self.inner.state);
        match st.tokens.get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        lock(&self.inner.state).queue.len()
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.work.notify_all();
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Mutex lock that shrugs off poisoning: queue state is only ever
/// mutated under short, panic-free critical sections, and a poisoned
/// inner value is still coherent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(inner: &Inner, tx: &mpsc::Sender<JobResult>) {
    loop {
        let job = {
            let mut st = lock(&inner.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let token = lock(&inner.state)
            .tokens
            .get(&job.id)
            .cloned()
            .unwrap_or_default();
        let result = run_job(inner, &job, &token);
        lock(&inner.state).tokens.remove(&job.id);
        if tx.send(result).is_err() {
            // Receiver dropped: nobody wants results any more; keep
            // draining so shutdown still completes.
        }
    }
}

/// Runs one job under the service-grade guard: `catch_unwind` isolation
/// and a single retry with backoff for internal (non-cancel) failures.
fn run_job(inner: &Inner, job: &JobRequest, token: &CancelToken) -> JobResult {
    let t0 = Instant::now();
    // Injected `serve.cancel`: arm a deterministic mid-search trip on the
    // job's own token instead of failing the job.
    if inner.fctx.check(FaultSite::ServeCancel).is_err() {
        token.trip_after_checks(inner.cfg.cancel_after_checks.max(1));
    }
    let mut retried = false;
    let mut attempt_no = 0;
    let outcome = loop {
        attempt_no += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| attempt_job(inner, job, token)));
        let err = match attempt {
            Ok(Ok(out)) => break Ok(out),
            Ok(Err(e)) => e,
            Err(payload) => {
                RouterError::Serve(format!("worker panic: {}", panic_message(payload.as_ref())))
            }
        };
        // Cancel and bad input are answers, not failures — no retry. An
        // internal failure gets exactly one more attempt after a pause.
        let retryable = !matches!(err, RouterError::Cancelled | RouterError::BadInput { .. });
        if retryable && attempt_no == 1 {
            retried = true;
            thread::sleep(inner.cfg.retry_backoff);
            continue;
        }
        break Err(err);
    };
    JobResult {
        id: job.id.clone(),
        retried,
        elapsed: t0.elapsed(),
        outcome,
    }
}

fn attempt_job(
    inner: &Inner,
    job: &JobRequest,
    token: &CancelToken,
) -> Result<Box<RouteOutcome>, RouterError> {
    if token.is_cancelled() {
        return Err(RouterError::Cancelled);
    }
    // Injected `serve.worker` faults fire here — after dequeue, before
    // any routing commits — as an error or a panic per the directive.
    inner.fctx.check(FaultSite::ServeWorker)?;
    let router = InfoRouter::new(job.cfg)
        .with_warm_cache(Arc::clone(&inner.warm))
        .with_cancel_token(token.clone());
    let key = Inner::prior_key(&job.package, &job.cfg);
    let Some(changes) = &job.changes else {
        // Plain route: publish the outcome so later ECO jobs on this
        // (circuit, config) re-route the delta instead of the die.
        let out = Arc::new(router.route(&job.package));
        inner.prior_publish(key, Arc::clone(&out));
        return Ok(Box::new((*out).clone()));
    };
    // ECO: take the cached prior, or full-route the base on the spot (the
    // cold first edit pays one full route; everything after is a delta).
    let prior = match inner.prior_lookup(key) {
        Some(p) => p,
        None => {
            let out = Arc::new(router.route(&job.package));
            inner.prior_publish(key, Arc::clone(&out));
            out
        }
    };
    let plan = changes.plan(&job.package)?;
    let out = Arc::new(router.reroute_delta(&job.package, &prior, changes)?);
    // Publish the edited design's outcome too: a follow-up ECO that sends
    // the edited netlist as its base starts from this delta's result.
    inner.prior_publish(Inner::prior_key(&plan.package, &job.cfg), Arc::clone(&out));
    Ok(Box::new((*out).clone()))
}

// ---------------------------------------------------------------------------
// Wire protocol: JSON lines
// ---------------------------------------------------------------------------

/// Limits a parsed numeric field to a sane integral range.
fn int_field(v: &Json, key: &str, lo: u64, hi: u64) -> Result<Option<u64>, RouterError> {
    let Some(field) = v.get(key) else {
        return Ok(None);
    };
    let bad = |reason: String| RouterError::BadInput { reason };
    let n = field
        .as_f64()
        .ok_or_else(|| bad(format!("field '{key}' must be a number")))?;
    if n.fract() != 0.0 || n < lo as f64 || n > hi as f64 {
        return Err(bad(format!(
            "field '{key}' must be an integer in [{lo}, {hi}]"
        )));
    }
    Ok(Some(n as u64))
}

fn bool_field(v: &Json, key: &str) -> Result<Option<bool>, RouterError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f.as_bool().map(Some).ok_or(RouterError::BadInput {
            reason: format!("field '{key}' must be a boolean"),
        }),
    }
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Route a circuit (or, when the job carries a change set, apply it
    /// as an ECO delta against the cached prior).
    Route(
        Box<JobRequest>,
        /* include per-net status in the response */ bool,
    ),
    /// Cancel a live job by id.
    Cancel(String),
    /// Drain and stop the server.
    Shutdown,
}

/// Parses the shared `config` object of `route`/`eco` requests.
fn parse_config(v: &Json) -> Result<(RouterConfig, Option<Duration>, bool), RouterError> {
    let bad = |reason: String| RouterError::BadInput { reason };
    let mut cfg = RouterConfig::default();
    let mut deadline = None;
    let mut net_status = false;
    if let Some(c) = v.get("config") {
        if c.as_obj().is_none() {
            return Err(bad("field 'config' must be an object".into()));
        }
        if let Some(n) = int_field(c, "global_cells", 1, 512)? {
            cfg.global_cells = n as usize;
        }
        if let Some(n) = int_field(c, "threads", 1, 64)? {
            cfg.threads = n as usize;
        }
        if let Some(n) = int_field(c, "alt_landmarks", 0, 64)? {
            cfg.alt_landmarks = n as usize;
        }
        if let Some(b) = bool_field(c, "lp")? {
            cfg.lp_enabled = b;
        }
        if let Some(b) = bool_field(c, "concurrent")? {
            cfg.concurrent_enabled = b;
        }
        if let Some(b) = bool_field(c, "window")? {
            cfg.search_window = b;
        }
        if let Some(b) = bool_field(c, "congestion")? {
            cfg.congestion_mode = b;
        }
        if let Some(ms) = int_field(c, "stage_budget_ms", 0, 86_400_000)? {
            cfg.stage_budget = Some(Duration::from_millis(ms));
        }
        if let Some(ms) = int_field(c, "deadline_ms", 0, 86_400_000)? {
            deadline = Some(Duration::from_millis(ms));
        }
        if let Some(b) = bool_field(c, "net_status")? {
            net_status = b;
        }
    }
    Ok((cfg, deadline, net_status))
}

/// Parses the `changes` object of an `eco` request:
/// `{"remove": [net, ...], "add": [[padA, padB], ...],
///   "re_pair": [[net, padA, padB], ...]}` — indices into the base
/// netlist's net/pad tables. Semantic validation (unknown ids, pad
/// conflicts) happens when the change set is planned against the
/// package, so malformed edits come back as typed rejections.
fn parse_changes(v: &Json) -> Result<EcoChangeSet, RouterError> {
    let bad = |reason: String| RouterError::BadInput { reason };
    let c = v
        .get("changes")
        .ok_or_else(|| bad("eco requires object field 'changes'".into()))?;
    if c.as_obj().is_none() {
        return Err(bad("field 'changes' must be an object".into()));
    }
    let index = |item: &Json, what: &str| -> Result<usize, RouterError> {
        let n = item
            .as_f64()
            .ok_or_else(|| bad(format!("'changes.{what}' entries must be numbers")))?;
        if n.fract() != 0.0 || !(0.0..=1e9).contains(&n) {
            return Err(bad(format!(
                "'changes.{what}' entries must be non-negative integers"
            )));
        }
        Ok(n as usize)
    };
    let tuple = |item: &Json, what: &str, arity: usize| -> Result<Vec<usize>, RouterError> {
        let arr = item.as_arr().filter(|a| a.len() == arity).ok_or_else(|| {
            bad(format!(
                "'changes.{what}' entries must be {arity}-element arrays"
            ))
        })?;
        arr.iter().map(|x| index(x, what)).collect()
    };
    let mut changes = EcoChangeSet::new();
    if let Some(items) = c.get("remove") {
        let arr = items
            .as_arr()
            .ok_or_else(|| bad("'changes.remove' must be an array".into()))?;
        for item in arr {
            changes = changes.remove_net(NetId::from_index(index(item, "remove")?));
        }
    }
    if let Some(items) = c.get("add") {
        let arr = items
            .as_arr()
            .ok_or_else(|| bad("'changes.add' must be an array".into()))?;
        for item in arr {
            let t = tuple(item, "add", 2)?;
            changes = changes.add_net(PadId::from_index(t[0]), PadId::from_index(t[1]));
        }
    }
    if let Some(items) = c.get("re_pair") {
        let arr = items
            .as_arr()
            .ok_or_else(|| bad("'changes.re_pair' must be an array".into()))?;
        for item in arr {
            let t = tuple(item, "re_pair", 3)?;
            changes = changes.re_pair(
                NetId::from_index(t[0]),
                PadId::from_index(t[1]),
                PadId::from_index(t[2]),
            );
        }
    }
    Ok(changes)
}

/// Parses one JSON-lines request. Every malformed input — bad JSON, bad
/// schema, bad netlist — is a typed [`RouterError::BadInput`].
pub fn parse_request(line: &str) -> Result<Request, RouterError> {
    let bad = |reason: String| RouterError::BadInput { reason };
    let v = json::parse(line).map_err(|e| bad(e.to_string()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'op'".into()))?;
    match op {
        "shutdown" => Ok(Request::Shutdown),
        "cancel" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("cancel requires string field 'id'".into()))?;
            Ok(Request::Cancel(id.to_string()))
        }
        "route" | "eco" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("{op} requires string field 'id'")))?;
            if id.is_empty() || id.len() > 256 {
                return Err(bad("field 'id' must be 1..=256 characters".into()));
            }
            let text = v
                .get("netlist")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("{op} requires string field 'netlist'")))?;
            let package = parse_package(text).map_err(|e| bad(format!("netlist: {e}")))?;
            let (cfg, deadline, net_status) = parse_config(&v)?;
            let changes = if op == "eco" {
                Some(parse_changes(&v)?)
            } else {
                None
            };
            Ok(Request::Route(
                Box::new(JobRequest {
                    id: id.to_string(),
                    package: Arc::new(package),
                    cfg,
                    deadline,
                    changes,
                }),
                net_status,
            ))
        }
        other => Err(bad(format!("unknown op '{other}'"))),
    }
}

/// Renders one job result as a wire response object.
pub fn response_json(r: &JobResult, include_net_status: bool) -> Json {
    let mut members = vec![("id".to_string(), Json::Str(r.id.clone()))];
    match &r.outcome {
        Ok(out) => {
            let status = match (out.cancelled, out.completion) {
                (true, _) => "cancelled",
                (false, Completion::Degraded) => "degraded",
                (false, Completion::Full) => "done",
            };
            members.push(("status".to_string(), Json::Str(status.to_string())));
            members.push((
                "hash".to_string(),
                Json::Str(format!("{:016x}", out.layout.canonical_hash())),
            ));
            members.push((
                "routability_pct".to_string(),
                Json::Num(out.stats.routability_pct),
            ));
            let count = |s: crate::flow::NetStatus| {
                out.net_status.iter().filter(|(_, st)| *st == s).count() as f64
            };
            members.push((
                "routed".to_string(),
                Json::Num(count(crate::flow::NetStatus::Routed)),
            ));
            members.push((
                "failed".to_string(),
                Json::Num(count(crate::flow::NetStatus::Failed)),
            ));
            members.push((
                "skipped".to_string(),
                Json::Num(count(crate::flow::NetStatus::Skipped)),
            ));
            if let Some(eco) = &out.eco {
                members.push((
                    "eco".to_string(),
                    Json::Obj(vec![
                        (
                            "nets_rerouted".to_string(),
                            Json::Num(eco.nets_rerouted as f64),
                        ),
                        ("nets_reused".to_string(), Json::Num(eco.nets_reused as f64)),
                        ("dirty_rects".to_string(), Json::Num(eco.dirty_rects as f64)),
                        (
                            "cells_invalidated".to_string(),
                            Json::Num(eco.cells_invalidated as f64),
                        ),
                        ("space_warm_hit".to_string(), Json::Bool(eco.space_warm_hit)),
                        (
                            "lp_dirty_nets".to_string(),
                            Json::Num(eco.lp_dirty_nets as f64),
                        ),
                        (
                            "lp_warm_basis_reuses".to_string(),
                            Json::Num(eco.lp_warm_basis_reuses as f64),
                        ),
                    ]),
                ));
            }
            if let Some(neg) = &out.negotiation {
                members.push((
                    "negotiation".to_string(),
                    Json::Obj(vec![
                        ("iterations".to_string(), Json::Num(neg.iterations as f64)),
                        ("converged".to_string(), Json::Bool(neg.converged)),
                        ("declined".to_string(), Json::Bool(neg.declined)),
                        (
                            "final_overuse".to_string(),
                            Json::Num(neg.final_overuse as f64),
                        ),
                    ]),
                ));
            }
            if include_net_status {
                let nets = out
                    .net_status
                    .iter()
                    .map(|(id, st)| {
                        Json::Obj(vec![
                            ("net".to_string(), Json::Num(id.0 as f64)),
                            ("status".to_string(), Json::Str(st.as_str().to_string())),
                        ])
                    })
                    .collect();
                members.push(("nets".to_string(), Json::Arr(nets)));
            }
        }
        Err(e) => {
            let status = match e {
                RouterError::Cancelled => "cancelled",
                RouterError::BadInput { .. } => "rejected",
                _ => "error",
            };
            members.push(("status".to_string(), Json::Str(status.to_string())));
            members.push(("error".to_string(), Json::Str(e.to_string())));
        }
    }
    if r.retried {
        members.push(("retried".to_string(), Json::Bool(true)));
    }
    members.push((
        "runtime_ms".to_string(),
        Json::Num((r.elapsed.as_secs_f64() * 1e3 * 1e3).round() / 1e3),
    ));
    Json::Obj(members)
}

fn reject_json(id: &str, reject: &Reject) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("status".to_string(), Json::Str("rejected".to_string())),
        ("error".to_string(), Json::Str(reject.as_str().to_string())),
    ])
}

fn error_json(reason: &RouterError) -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("rejected".to_string())),
        ("error".to_string(), Json::Str(reason.to_string())),
    ])
}

/// Serves JSON-lines requests from `input` until EOF or a `shutdown` op,
/// writing one response object per line to `output` as each job
/// completes. Responses interleave across jobs; correlate by `id`.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    let (server, results) = JobServer::start(cfg);
    let out = Mutex::new(output);
    // Per-job response options, keyed by id (currently just net_status).
    let wants_nets = Mutex::new(BTreeMap::<String, bool>::new());
    let write_line = |value: &Json| -> std::io::Result<()> {
        let mut w = lock(&out);
        writeln!(w, "{value}")?;
        w.flush()
    };
    thread::scope(|scope| -> std::io::Result<()> {
        let write_line = &write_line;
        let wants_nets = &wants_nets;
        let drain = scope.spawn(move || -> std::io::Result<()> {
            for r in results {
                let nets = lock(wants_nets).remove(&r.id).unwrap_or(false);
                write_line(&response_json(&r, nets))?;
            }
            Ok(())
        });
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // The whole per-line handling is unwind-guarded: an injected
            // (or real) parse-path panic must cost one response, not the
            // server.
            let handled = catch_unwind(AssertUnwindSafe(|| -> std::io::Result<bool> {
                let parsed = server
                    .inner
                    .fctx
                    .check(FaultSite::ServeParse)
                    .and_then(|()| parse_request(&line));
                match parsed {
                    Err(e) => write_line(&error_json(&e))?,
                    Ok(Request::Shutdown) => return Ok(true),
                    Ok(Request::Cancel(id)) => {
                        let found = server.cancel(&id);
                        write_line(&Json::Obj(vec![
                            ("id".to_string(), Json::Str(id)),
                            (
                                "status".to_string(),
                                Json::Str(
                                    if found { "cancelling" } else { "unknown_id" }.to_string(),
                                ),
                            ),
                        ]))?;
                    }
                    Ok(Request::Route(req, nets)) => {
                        let id = req.id.clone();
                        lock(wants_nets).insert(id.clone(), nets);
                        if let Err(reject) = server.submit(*req) {
                            lock(wants_nets).remove(&id);
                            write_line(&reject_json(&id, &reject))?;
                        }
                    }
                }
                Ok(false)
            }));
            match handled {
                Ok(Ok(true)) => break,
                Ok(Ok(false)) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    let e = RouterError::Serve(format!(
                        "request handler panic: {}",
                        panic_message(payload.as_ref())
                    ));
                    write_line(&error_json(&e))?;
                }
            }
        }
        // Drain: stop the pool (waits for queued + running jobs), which
        // drops the results sender and ends the drain thread.
        server.shutdown();
        match drain.join() {
            Ok(r) => r,
            Err(_) => Ok(()),
        }
    })
}

/// Serves JSON-lines connections on a unix socket at `path` (removing a
/// stale socket file first). Connections are handled one at a time; jobs
/// *within* a connection run concurrently on the worker pool, and the
/// warm cache persists across connections. Loops until a connection
/// sends a `shutdown` op.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, cfg: ServeConfig) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        // One shared warm cache across connections would require the
        // JobServer to outlive serve_lines; keep the per-connection pool
        // simple and let the OS-level client reuse one connection for
        // warm behavior. A shutdown op ends the whole listener.
        let mut saw_shutdown = ShutdownSniffer {
            inner: reader,
            saw: false,
        };
        serve_lines(&mut saw_shutdown, stream, cfg.clone())?;
        if saw_shutdown.saw {
            let _ = std::fs::remove_file(path);
            return Ok(());
        }
    }
}

/// BufRead adapter that remembers whether a `"op":"shutdown"` line went
/// through — how the unix-socket loop knows to stop listening.
#[cfg(unix)]
struct ShutdownSniffer<R: BufRead> {
    inner: R,
    saw: bool,
}

#[cfg(unix)]
impl<R: BufRead> std::io::Read for ShutdownSniffer<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

#[cfg(unix)]
impl<R: BufRead> BufRead for ShutdownSniffer<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let buf = self.inner.fill_buf()?;
        if !self.saw {
            self.saw = String::from_utf8_lossy(buf).contains("\"shutdown\"");
        }
        Ok(buf)
    }
    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    fn tiny_netlist() -> String {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(600_000, 400_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(
            Point::new(50_000, 50_000),
            Point::new(200_000, 350_000),
        ));
        let io = b
            .add_io_pad(c, Point::new(180_000, 200_000))
            .expect("io pad");
        let g = b
            .add_bump_pad(Point::new(450_000, 200_000))
            .expect("bump pad");
        b.add_net(io, g).expect("net");
        info_model::write_package(&b.build().expect("package"))
    }

    fn route_line(id: &str, netlist: &str) -> String {
        Json::Obj(vec![
            ("op".to_string(), Json::Str("route".to_string())),
            ("id".to_string(), Json::Str(id.to_string())),
            ("netlist".to_string(), Json::Str(netlist.to_string())),
            (
                "config".to_string(),
                Json::Obj(vec![("global_cells".to_string(), Json::Num(8.0))]),
            ),
        ])
        .to_string()
    }

    #[test]
    fn serve_lines_routes_and_shuts_down() {
        let netlist = tiny_netlist();
        let input = format!("{}\n{{\"op\":\"shutdown\"}}\n", route_line("j1", &netlist));
        let mut out = Vec::new();
        serve_lines(input.as_bytes(), &mut out, ServeConfig::default()).expect("serve runs");
        let text = String::from_utf8(out).expect("utf8");
        let resp = json::parse(text.lines().next().expect("one response")).expect("json");
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("j1"));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("done"));
        assert!(resp.get("hash").and_then(Json::as_str).is_some());
    }

    #[test]
    fn malformed_lines_get_typed_rejections_not_panics() {
        let input = "not json at all\n{\"op\":\"route\"}\n{\"op\":\"route\",\"id\":\"x\",\"netlist\":\"garbage netlist\"}\n{\"op\":\"shutdown\"}\n";
        let mut out = Vec::new();
        serve_lines(input.as_bytes(), &mut out, ServeConfig::default()).expect("serve survives");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one rejection per bad line: {text}");
        for l in lines {
            let v = json::parse(l).expect("responses are valid json");
            assert_eq!(v.get("status").and_then(Json::as_str), Some("rejected"));
            assert!(v.get("error").is_some());
        }
    }

    #[test]
    fn queue_backpressure_rejects_with_reason() {
        let netlist = tiny_netlist();
        let pkg = Arc::new(parse_package(&netlist).expect("netlist"));
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let (server, rx) = JobServer::start(cfg);
        let req = |id: &str| JobRequest {
            id: id.to_string(),
            package: Arc::clone(&pkg),
            cfg: RouterConfig::default().with_global_cells(8),
            deadline: None,
            changes: None,
        };
        // Two submissions race one worker; a third must overflow either
        // the queue (capacity 1) or the duplicate-id check.
        server.submit(req("a")).expect("first fits");
        let mut saw_reject = false;
        for i in 0..64 {
            match server.submit(req(&format!("j{i}"))) {
                Ok(()) => {}
                Err(Reject::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_reject = true;
                    break;
                }
                Err(other) => panic!("unexpected reject: {other:?}"),
            }
        }
        assert!(saw_reject, "bounded queue must reject at some depth");
        assert!(server.submit(req("a")).is_err() || server.cancel("a"));
        drop(rx);
        server.shutdown();
    }

    #[test]
    fn duplicate_live_id_is_rejected() {
        let netlist = tiny_netlist();
        let pkg = Arc::new(parse_package(&netlist).expect("netlist"));
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServeConfig::default()
        };
        let (server, rx) = JobServer::start(cfg);
        let req = |id: &str| JobRequest {
            id: id.to_string(),
            package: Arc::clone(&pkg),
            cfg: RouterConfig::default().with_global_cells(8),
            deadline: None,
            changes: None,
        };
        server.submit(req("same")).expect("first");
        // Immediately resubmitting the same id must hit either the
        // duplicate check (still live) — tolerate the tiny race where the
        // job already completed.
        if let Err(e) = server.submit(req("same")) {
            assert_eq!(e, Reject::DuplicateId);
        }
        let first = rx.recv().expect("result");
        assert!(first.outcome.is_ok());
        server.shutdown();
    }
}
