//! Shared warm-start cache for the sequential stage's routing space.
//!
//! Building the stage-start [`RoutingSpace`] — partitioning, tile
//! splitting, via-site insertion, ALT landmark tables — is pure in
//! (package, layout, space configuration), and for repeat jobs on the
//! same circuit the layout at the sequential stage's start is identical
//! (the earlier stages are deterministic). A [`WarmSpaceCache`] shared
//! across jobs therefore lets every job after the first start from a
//! clone of the already-built space instead of rebuilding it.
//!
//! Correctness rests on two facts:
//!
//! - the key captures *every* input the build reads: a fingerprint of
//!   the package text, the layout's canonical hash at stage start, and
//!   each [`RouterConfig`] field that flows into [`space_config`] or the
//!   landmark build;
//! - `RoutingSpace: Clone` is bit-identical (snapshot/restore in the
//!   rip-up pass already depends on this), so a warm start routes the
//!   same layout, byte for byte, as a cold one.
//!
//! The cache is a small bounded LRU behind a mutex, but the expensive
//! work never happens under it: entries are held by `Arc`, so a hit
//! takes the lock only long enough to clone the pointer and refresh
//! recency — the deep copy the job routes on is made after the lock is
//! released. Cold lookups are single-flight: the first job for a key
//! marks it as building and constructs the space outside the lock while
//! racing jobs wait on a condvar and then take the installed entry as a
//! hit, instead of every cold job redoing the whole build (the stampede
//! the serve load test used to pay on its first wave of identical jobs).
//!
//! [`space_config`]: crate::sequential::space_config

use crate::config::RouterConfig;
use info_model::{write_package, Layout, Package};
use info_telemetry::{Counter, Sink};
use info_tile::RoutingSpace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Everything the stage-start space build reads, collapsed to a
/// comparable key. Two jobs with equal keys build bit-identical spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WarmKey {
    /// FNV-1a hash of the package's canonical text serialization — the
    /// same bytes `parse_package` round-trips, so two packages with equal
    /// fingerprints describe the same circuit.
    package_fp: u64,
    /// Layout state the space was built against (stage-start layout).
    layout_hash: u64,
    global_cells: usize,
    via_cost_bits: u64,
    legality_cache: bool,
    // `threads` is deliberately absent: the build's output is
    // bit-identical at every thread count (the landmark tables are
    // per-landmark independent — see `Landmarks::build_threaded`), so
    // jobs running at different thread counts share one entry.
    alt_landmarks: usize,
}

pub(crate) fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl WarmKey {
    fn new(package: &Package, layout: &Layout, cfg: &RouterConfig) -> Self {
        WarmKey {
            package_fp: fnv1a(&write_package(package)),
            layout_hash: layout.canonical_hash(),
            global_cells: cfg.global_cells,
            via_cost_bits: (cfg.via_cost_factor * package.rules().via_width as f64).to_bits(),
            legality_cache: cfg.legality_cache,
            alt_landmarks: cfg.alt_landmarks,
        }
    }
}

/// Lock-guarded cache state: the LRU itself plus the keys currently
/// being built (single-flight markers).
#[derive(Debug, Default)]
struct CacheState {
    /// Most-recently-used at the front.
    entries: VecDeque<(WarmKey, Arc<RoutingSpace>)>,
    /// Keys some thread is building right now; racing lookups wait on
    /// the condvar instead of redoing the build.
    building: Vec<WarmKey>,
}

/// Bounded, thread-safe cache of stage-start routing spaces keyed by
/// circuit + configuration (see the module docs).
#[derive(Debug)]
pub struct WarmSpaceCache {
    capacity: usize,
    state: Mutex<CacheState>,
    /// Signalled whenever a build finishes (successfully or not).
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Clears a single-flight marker when the build ends — by any path,
/// including a panic unwinding through `build_stage_space` (waiters must
/// wake and build for themselves rather than hang).
struct BuildingGuard<'a> {
    cache: &'a WarmSpaceCache,
    key: &'a WarmKey,
}

impl Drop for BuildingGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.cache.state.lock().unwrap_or_else(|e| e.into_inner());
        st.building.retain(|k| k != self.key);
        drop(st);
        self.cache.ready.notify_all();
    }
}

impl WarmSpaceCache {
    /// A cache holding at most `capacity` distinct (circuit, config)
    /// spaces; the least recently used entry is evicted beyond that.
    pub fn new(capacity: usize) -> Self {
        WarmSpaceCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState::default()),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the stage-start space for this (package, layout, config),
    /// cloned from the cache when warm, or built — and installed — when
    /// cold. Counts the outcome into `tel` either way.
    ///
    /// The deep copy a hit returns is made *after* the lock is released
    /// (only the `Arc` is cloned under it), and concurrent cold lookups
    /// for one key run exactly one build: the rest wait and count as
    /// hits on the installed entry.
    pub fn get_or_build(
        &self,
        package: &Package,
        layout: &Layout,
        cfg: &RouterConfig,
        tel: &Sink,
    ) -> RoutingSpace {
        let key = WarmKey::new(package, layout, cfg);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(pos) = st.entries.iter().position(|(k, _)| *k == key) {
                // Refresh recency; the expensive deep clone happens
                // outside the lock, off the shared Arc.
                let hit = st.entries.remove(pos).expect("position came from iter");
                let shared = Arc::clone(&hit.1);
                st.entries.push_front(hit);
                drop(st);
                self.hits.fetch_add(1, Ordering::Relaxed);
                tel.count(Counter::WarmSpaceHits, 1);
                return (*shared).clone();
            }
            if !st.building.contains(&key) {
                break;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.building.push(key.clone());
        drop(st);
        let _guard = BuildingGuard { cache: self, key: &key };
        let space = crate::sequential::build_stage_space(package, layout, cfg, tel);
        // The deep clone that becomes the cached entry is made *before*
        // the lock: cloning a dense space takes real time, and holding
        // the cache mutex across it would stall every concurrent lookup
        // for every key (the serialization point the serve load test
        // used to pay on its cold wave).
        let entry = Arc::new(space.clone());
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.entries.iter().any(|(k, _)| *k == key) {
            st.entries.push_front((key.clone(), entry));
            st.entries.truncate(self.capacity);
        }
        drop(st);
        self.misses.fetch_add(1, Ordering::Relaxed);
        tel.count(Counter::WarmSpaceMisses, 1);
        space
    }

    /// Lifetime (hits, misses) across every job that used this cache.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    fn tiny_package() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(600_000, 400_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(50_000, 50_000), Point::new(200_000, 350_000)));
        let io = b.add_io_pad(c, Point::new(180_000, 200_000)).expect("io pad");
        let g = b.add_bump_pad(Point::new(450_000, 200_000)).expect("bump pad");
        b.add_net(io, g).expect("net");
        b.build().expect("package")
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let pkg = tiny_package();
        let layout = Layout::new(&pkg);
        let cfg = RouterConfig::default().with_global_cells(6);
        let cache = WarmSpaceCache::new(4);
        let tel = Sink::disabled();
        let _ = cache.get_or_build(&pkg, &layout, &cfg, &tel);
        let _ = cache.get_or_build(&pkg, &layout, &cfg, &tel);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn config_change_misses() {
        let pkg = tiny_package();
        let layout = Layout::new(&pkg);
        let cache = WarmSpaceCache::new(4);
        let tel = Sink::disabled();
        let _ = cache.get_or_build(&pkg, &layout, &RouterConfig::default().with_global_cells(6), &tel);
        let _ = cache.get_or_build(&pkg, &layout, &RouterConfig::default().with_global_cells(8), &tel);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recent() {
        let pkg = tiny_package();
        let layout = Layout::new(&pkg);
        let cache = WarmSpaceCache::new(1);
        let tel = Sink::disabled();
        let a = RouterConfig::default().with_global_cells(6);
        let b = RouterConfig::default().with_global_cells(8);
        let _ = cache.get_or_build(&pkg, &layout, &a, &tel);
        let _ = cache.get_or_build(&pkg, &layout, &b, &tel);
        // `a` was evicted by `b`, so it misses again.
        let _ = cache.get_or_build(&pkg, &layout, &a, &tel);
        assert_eq!(cache.stats(), (0, 3));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn thread_count_does_not_split_the_cache() {
        // Jobs at different thread counts must share one warm entry: the
        // stage-start build (landmark tables included) is bit-identical
        // at every thread count, so `threads` stays out of the key.
        let pkg = tiny_package();
        let layout = Layout::new(&pkg);
        let cache = WarmSpaceCache::new(4);
        let tel = Sink::disabled();
        let base = RouterConfig::default().with_global_cells(6).with_alt_landmarks(3);
        let _ = cache.get_or_build(&pkg, &layout, &base.with_threads(1), &tel);
        let _ = cache.get_or_build(&pkg, &layout, &base.with_threads(8), &tel);
        assert_eq!(cache.stats(), (1, 1), "threads=8 must hit the threads=1 entry");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_cold_lookups_build_once() {
        let pkg = tiny_package();
        let layout = Layout::new(&pkg);
        let cfg = RouterConfig::default().with_global_cells(6);
        let cache = WarmSpaceCache::new(4);
        let tel = Sink::disabled();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _ = cache.get_or_build(&pkg, &layout, &cfg, &tel);
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "single-flight: one cold build for one key");
        assert_eq!(hits, 7, "every waiter takes the installed entry");
        assert_eq!(cache.len(), 1);
    }
}
