//! Stage 2a — Weighted-MPSC-based layer assignment (§III-B1).

use crate::config::RouterConfig;
use crate::preprocess::Preprocessed;
use crate::resilience::{FaultSite, FlowCtx, RouterError};
use info_mpsc::{peel_layers, Chord};

/// Layer assignment of the concurrent-routing candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `per_layer[k]` = candidate indices assigned to wire layer `k`.
    pub per_layer: Vec<Vec<usize>>,
    /// Candidates left for sequential routing.
    pub unassigned: Vec<usize>,
}

impl Assignment {
    /// Total number of candidates assigned to some layer.
    pub fn assigned_count(&self) -> usize {
        self.per_layer.iter().map(Vec::len).sum()
    }
}

/// Assigns candidates to wire layers by peeling maximum-weight planar
/// subsets of the circular model, one wire layer at a time.
///
/// With `cfg.weighted_mpsc == false` the chords carry unit weights
/// (plain Supowit MPSC — the paper's Fig. 5 "before" behavior).
///
/// Fails on a malformed circular model (peel error) or an injected
/// `assign.peel` fault; the flow then routes every candidate sequentially.
pub fn assign_layers(
    pre: &Preprocessed,
    cfg: &RouterConfig,
    wire_layers: usize,
    ctx: &FlowCtx,
) -> Result<Assignment, RouterError> {
    let chords: Vec<Chord> = pre
        .candidates
        .iter()
        .map(|c| {
            let w = if cfg.weighted_mpsc { c.weight(cfg) } else { 1.0 };
            Chord::new(c.a.circle, c.b.circle, w)
        })
        .collect();
    ctx.check(FaultSite::AssignPeel)?;
    match peel_layers(pre.circle_points, &chords, wire_layers) {
        Ok(asg) => Ok(Assignment { per_layer: asg.layers, unassigned: asg.unassigned }),
        Err(e) => {
            // Malformed circle (should not happen — preprocessing allocates
            // unique positions). The flow degrades to all-sequential.
            Err(RouterError::Assign(format!("MPSC peel rejected the circular model: {e:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use info_geom::{Point, Rect};
    use info_model::{DesignRules, PackageBuilder};

    /// Two chips with several facing peripheral pads → parallel candidate
    /// nets that are planar in the circular model.
    fn parallel_nets_package(n: usize) -> info_model::Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            3,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(400_000, 600_000)));
        let c2 = b.add_chip(Rect::new(Point::new(800_000, 200_000), Point::new(1_100_000, 600_000)));
        for i in 0..n {
            let y = 250_000 + 60_000 * i as i64;
            let a = b.add_io_pad(c1, Point::new(380_000, y)).unwrap();
            let z = b.add_io_pad(c2, Point::new(820_000, y)).unwrap();
            b.add_net(a, z).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_nets_share_a_layer() {
        let pkg = parallel_nets_package(4);
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(pre.candidates.len(), 4);
        let asg = assign_layers(&pre, &cfg, 3, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(asg.assigned_count(), 4);
        // Parallel facing nets are planar: first layer takes them all.
        assert_eq!(asg.per_layer[0].len(), 4, "{asg:?}");
    }

    #[test]
    fn zero_layers_assigns_nothing() {
        let pkg = parallel_nets_package(2);
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        let asg = assign_layers(&pre, &cfg, 0, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(asg.assigned_count(), 0);
        assert_eq!(asg.unassigned.len(), 2);
    }

    #[test]
    fn unweighted_flag_changes_only_weights() {
        let pkg = parallel_nets_package(3);
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        let w = assign_layers(&pre, &cfg, 3, &crate::resilience::FlowCtx::default()).unwrap();
        let u = assign_layers(&pre, &cfg.with_unweighted_mpsc(), 3, &crate::resilience::FlowCtx::default()).unwrap();
        // On an uncongested instance both assign everything.
        assert_eq!(w.assigned_count(), 3);
        assert_eq!(u.assigned_count(), 3);
    }
}
