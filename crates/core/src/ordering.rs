//! Feature-driven net ordering for the negotiated-congestion driver
//! (DESIGN.md §4h).
//!
//! The legacy sequential stage orders nets shortest-first and lets the
//! rip-up pass pay for every ordering mistake. The negotiated driver
//! instead routes the *hardest* nets first, where "hard" is scored from
//! three deterministic features of the stage-start state:
//!
//! - **detour rate** — authoritative failed-attempt A\* expansions per
//!   unit of pad-pair X-architecture distance (how hard the net searched
//!   relative to its size the last time it failed; 0 before any failure);
//! - **walled-ness** — blocked-tile fraction of the 3×3 global-cell
//!   neighborhood around each terminal, on that terminal's layer (a pad
//!   starved at the source dies no matter how empty the middle is);
//! - **bbox congestion** — mean blocked-tile fraction over every wire
//!   layer of the cells touching the pad-pair bounding box.
//!
//! All three read only the package, the routing space, and the
//! failed-expansion map — state that is identical at every thread count —
//! so the resulting order is thread-invariant by construction
//! (`tests/ordering_differential.rs` pins this).

use info_geom::{x_arch_len, Rect};
use info_model::{NetId, Package, WireLayer};
use info_tile::RoutingSpace;
use std::collections::BTreeMap;

/// Ordering features of one net (all finite, all `≥ 0`; the fractions are
/// in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFeatures {
    /// The net.
    pub net: NetId,
    /// Pad-pair X-architecture distance (nm).
    pub length: f64,
    /// Mean blocked-tile fraction of the pad-pair bounding box, over all
    /// wire layers.
    pub bbox_congestion: f64,
    /// Mean blocked-tile fraction of the 3×3 cell neighborhoods around
    /// the two terminals, each on its own pad layer.
    pub walledness: f64,
    /// Failed-attempt expansions per nm of pad-pair distance (0 until the
    /// net has an authoritative failure on record).
    pub detour_rate: f64,
}

/// Blocked-tile fraction of one `(layer, cell)`; empty cells count as
/// open (0.0).
fn cell_fraction(space: &RoutingSpace, layer: WireLayer, cx: usize, cy: usize) -> f64 {
    let (blocked, total) = space.cell_occupancy(layer, cx, cy);
    if total == 0 {
        0.0
    } else {
        blocked as f64 / total as f64
    }
}

/// Mean blocked-tile fraction of the 3×3 cell ring around `cell` on
/// `layer`, clipped to the grid.
fn ring_fraction(space: &RoutingSpace, layer: WireLayer, cell: (usize, usize)) -> f64 {
    let (nx, ny) = (space.config().cells_x, space.config().cells_y);
    let mut sum = 0.0;
    let mut n = 0usize;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            let (x, y) = (cell.0 as i64 + dx, cell.1 as i64 + dy);
            if x >= 0 && y >= 0 && (x as usize) < nx && (y as usize) < ny {
                sum += cell_fraction(space, layer, x as usize, y as usize);
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Computes the ordering features of `nets` against the current space.
pub fn net_features(
    package: &Package,
    space: &RoutingSpace,
    nets: &[NetId],
    fail_expansions: &BTreeMap<NetId, u64>,
) -> Vec<NetFeatures> {
    net_features_threaded(package, space, nets, fail_expansions, 1)
}

/// [`net_features`] over a worker pool: each net's features read only the
/// shared (package, space, failure-map) state, so the per-net closure is
/// pure and [`parallel_map`](crate::pool::parallel_map) returns the rows
/// in net order — the output is byte-identical at every thread count.
pub fn net_features_threaded(
    package: &Package,
    space: &RoutingSpace,
    nets: &[NetId],
    fail_expansions: &BTreeMap<NetId, u64>,
    threads: usize,
) -> Vec<NetFeatures> {
    crate::pool::parallel_map(nets, threads, |_, &id| {
        {
            let n = package.net(id);
            let (pa, pb) = (package.pad(n.a).center, package.pad(n.b).center);
            let length = x_arch_len(pa, pb);
            let detour_rate =
                fail_expansions.get(&id).copied().unwrap_or(0) as f64 / length.max(1.0);
            let walledness = {
                let mut sum = 0.0;
                let mut terms = 0usize;
                for (pad, p) in [(n.a, pa), (n.b, pb)] {
                    if let Some(cell) = space.cell_of(p) {
                        sum += ring_fraction(space, package.pad_layer(pad), cell);
                        terms += 1;
                    }
                }
                if terms == 0 { 0.0 } else { sum / terms as f64 }
            };
            let bbox_congestion = {
                let cells = space.cells_touching(Rect::new(pa, pb));
                let layers = space.layer_count();
                let mut sum = 0.0;
                let mut terms = 0usize;
                for &(cx, cy) in &cells {
                    for l in 0..layers {
                        sum += cell_fraction(space, WireLayer(l as u8), cx, cy);
                        terms += 1;
                    }
                }
                if terms == 0 { 0.0 } else { sum / terms as f64 }
            };
            NetFeatures { net: id, length, bbox_congestion, walledness, detour_rate }
        }
    })
}

/// Orders `nets` hardest-first in coarse tiers: each feature is
/// normalized by its maximum over the batch (so no single scale
/// dominates), summed, and *bucketed* to quarter steps — within a tier
/// the order stays shortest-first (then net id), which the legacy front
/// showed packs a layout well. The buckets matter: raw continuous scores
/// would reorder the entire queue by congestion estimates alone, and the
/// estimates are only strong signals at their extremes. A batch with no
/// failures and a uniform space degrades to plain shortest-first.
pub fn feature_order(
    package: &Package,
    space: &RoutingSpace,
    nets: &[NetId],
    fail_expansions: &BTreeMap<NetId, u64>,
) -> Vec<NetId> {
    feature_order_threaded(package, space, nets, fail_expansions, 1)
}

/// [`feature_order`] with the feature computation spread over `threads`
/// workers. The scoring, bucketing, and sort all run on the caller's
/// thread against the order-preserved feature rows, so the returned
/// order is identical at every thread count.
pub fn feature_order_threaded(
    package: &Package,
    space: &RoutingSpace,
    nets: &[NetId],
    fail_expansions: &BTreeMap<NetId, u64>,
    threads: usize,
) -> Vec<NetId> {
    let feats = net_features_threaded(package, space, nets, fail_expansions, threads);
    let max_of = |f: fn(&NetFeatures) -> f64| {
        feats.iter().map(f).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE)
    };
    let (md, mw, mb) = (
        max_of(|f| f.detour_rate),
        max_of(|f| f.walledness),
        max_of(|f| f.bbox_congestion),
    );
    let mut scored: Vec<(i64, f64, NetId)> = feats
        .iter()
        .map(|f| {
            let score = f.detour_rate / md + f.walledness / mw + f.bbox_congestion / mb;
            ((score * 4.0).round() as i64, f.length, f.net)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
    scored.into_iter().map(|(_, _, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;
    use crate::sequential::space_config;
    use info_geom::Point;
    use info_model::{DesignRules, Layout, PackageBuilder};

    fn pkg() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 800_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 700_000)));
        for i in 0..3 {
            let y = 150_000 + 120_000 * i as i64;
            let io = b.add_io_pad(c, Point::new(380_000, y)).unwrap();
            let g = b.add_bump_pad(Point::new(700_000, y)).unwrap();
            b.add_net(io, g).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn features_are_deterministic_and_bounded() {
        let pkg = pkg();
        let cfg = RouterConfig::default().with_global_cells(8);
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, space_config(&pkg, &cfg));
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let fails = BTreeMap::new();
        let a = net_features(&pkg, &space, &nets, &fails);
        let b = net_features(&pkg, &space, &nets, &fails);
        assert_eq!(a, b, "features must be a pure function of the inputs");
        for f in &a {
            assert!((0.0..=1.0).contains(&f.bbox_congestion), "{f:?}");
            assert!((0.0..=1.0).contains(&f.walledness), "{f:?}");
            assert!(f.detour_rate >= 0.0 && f.length > 0.0, "{f:?}");
        }
    }

    #[test]
    fn failed_nets_sort_first() {
        let pkg = pkg();
        let cfg = RouterConfig::default().with_global_cells(8);
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, space_config(&pkg, &cfg));
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let mut fails = BTreeMap::new();
        fails.insert(NetId(2), 500_000u64);
        let order = feature_order(&pkg, &space, &nets, &fails);
        assert_eq!(order[0], NetId(2), "the net with a failure on record goes first: {order:?}");
        // Without failures the order degrades to shortest-first + id.
        let base = feature_order(&pkg, &space, &nets, &BTreeMap::new());
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn threaded_features_match_serial() {
        let pkg = pkg();
        let cfg = RouterConfig::default().with_global_cells(8);
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, space_config(&pkg, &cfg));
        let nets: Vec<NetId> = pkg.nets().iter().map(|n| n.id).collect();
        let mut fails = BTreeMap::new();
        fails.insert(NetId(1), 250_000u64);
        let serial = net_features(&pkg, &space, &nets, &fails);
        for threads in [2, 4, 8] {
            let par = net_features_threaded(&pkg, &space, &nets, &fails, threads);
            assert_eq!(serial, par, "feature rows must be thread-invariant ({threads} threads)");
            assert_eq!(
                feature_order(&pkg, &space, &nets, &fails),
                feature_order_threaded(&pkg, &space, &nets, &fails, threads),
            );
        }
    }
}
