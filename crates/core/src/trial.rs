//! Pre-commit clearance trial: a realized net is only committed when its
//! geometry keeps the minimum spacing to everything already in the layout
//! (and to pads/obstacles). Nets failing the trial fall through to later,
//! more careful stages instead of poisoning the layout.

use info_geom::{Coord, Octagon, Point, Polyline, Rect};
use info_model::{Layout, NetId, Package, WireLayer};

/// Proposed geometry of one net.
#[derive(Debug, Clone, Default)]
pub struct Proposal {
    /// Planar routes `(layer, centerline)`.
    pub routes: Vec<(WireLayer, Polyline)>,
    /// Vias `(center, top, bottom)`.
    pub vias: Vec<(Point, WireLayer, WireLayer)>,
}

impl Proposal {
    /// Bounding box of the proposal.
    pub fn bbox(&self) -> Option<Rect> {
        let mut pts = self
            .routes
            .iter()
            .flat_map(|(_, p)| p.points().iter().copied())
            .chain(self.vias.iter().map(|(p, _, _)| *p));
        let first = pts.next()?;
        let (mut lo, mut hi) = (first, first);
        for p in pts {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Rect::new(lo, hi))
    }
}

/// Whether the proposal clears all foreign geometry by the design rules.
///
/// Checks, per layer: proposed wire centerlines vs foreign wires
/// (`≥ s + s_w`), vs foreign/unowned pads and obstacles (`≥ s + s_w/2`
/// edge), vs foreign vias; and proposed via octagons against the same
/// (`≥ s` edge-to-edge). Same-net geometry is exempt.
pub fn clearance_ok(
    package: &Package,
    layout: &Layout,
    net: NetId,
    proposal: &Proposal,
) -> bool {
    let rules = package.rules();
    let s = rules.min_spacing as f64;
    let half_w = rules.wire_width as f64 / 2.0;
    let tol = 0.5f64;

    let mut pad_nets = vec![None; package.pads().len()];
    for n in package.nets() {
        pad_nets[n.a.index()] = Some(n.id);
        pad_nets[n.b.index()] = Some(n.id);
    }

    // Collect foreign solids per layer lazily through closures would
    // re-scan; just gather them once per spanned layer.
    let layers: std::collections::BTreeSet<WireLayer> = proposal
        .routes
        .iter()
        .map(|(l, _)| *l)
        .chain(proposal.vias.iter().flat_map(|(_, t, b)| {
            (t.0..=b.0).map(WireLayer)
        }))
        .collect();

    let reach: Coord = rules.min_spacing + rules.wire_width + rules.via_width;
    let prop_bbox = match proposal.bbox() {
        Some(b) => b.inflate(reach),
        None => return true,
    };

    for &layer in &layers {
        // Foreign items on this layer near the proposal. The trial checks
        // the *rules*, exactly; escape-lane keepouts around unrouted pads
        // live in the tile space (search steering), not here (legality).
        let mut solids: Vec<(Octagon, f64)> = Vec::new(); // (shape, extra gap)
        for p in package.pads() {
            let owner = pad_nets[p.id.index()];
            if package.pad_layer(p.id) == layer
                && owner != Some(net)
                && p.bbox().intersects(prop_bbox)
            {
                solids.push((p.shape(), 0.0));
            }
        }
        for o in package.obstacles() {
            if o.layer == layer && o.rect.intersects(prop_bbox) {
                solids.push((Octagon::from_rect(o.rect), 0.0));
            }
        }
        for v in layout.vias_on(layer) {
            if v.net != net && v.shape().bbox().intersects(prop_bbox) {
                solids.push((v.shape(), 0.0));
            }
        }
        let foreign_wires: Vec<info_geom::Segment> = layout
            .routes_on(layer)
            .filter(|r| r.net != net)
            .flat_map(|r| r.path.segments())
            .filter(|seg| {
                let (lo, hi) = seg.bbox();
                Rect::new(lo, hi).intersects(prop_bbox)
            })
            .collect();

        // Proposed wires on this layer.
        for (l, pl) in &proposal.routes {
            if *l != layer {
                continue;
            }
            for seg in pl.segments() {
                for (solid, extra) in &solids {
                    if solid.distance_to_segment(seg) - half_w < s + extra - tol {
                        return false;
                    }
                }
                for fw in &foreign_wires {
                    if seg.distance_to_segment(*fw) - 2.0 * half_w < s - tol {
                        return false;
                    }
                }
            }
        }
        // Proposed vias spanning this layer.
        for &(at, top, bot) in &proposal.vias {
            if layer < top || layer > bot {
                continue;
            }
            let shape = Octagon::regular(at, rules.via_width);
            for (solid, extra) in &solids {
                if shape.distance_to_octagon(solid) < s + extra - tol {
                    return false;
                }
            }
            for fw in &foreign_wires {
                if shape.distance_to_segment(*fw) - half_w < s - tol {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_model::{DesignRules, PackageBuilder};

    fn pkg_two_nets() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let a1 = b.add_io_pad(c1, Point::new(250_000, 200_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(750_000, 200_000)).unwrap();
        let b1 = b.add_io_pad(c1, Point::new(250_000, 300_000)).unwrap();
        let b2 = b.add_io_pad(c2, Point::new(750_000, 300_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(b1, b2).unwrap();
        b.build().unwrap()
    }

    fn pl(pts: &[(i64, i64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn clean_route_passes() {
        let pkg = pkg_two_nets();
        let layout = Layout::new(&pkg);
        let prop = Proposal {
            routes: vec![(WireLayer(0), pl(&[(250_000, 200_000), (750_000, 200_000)]))],
            vias: vec![],
        };
        assert!(clearance_ok(&pkg, &layout, NetId(0), &prop));
    }

    #[test]
    fn route_through_foreign_pad_rejected() {
        let pkg = pkg_two_nets();
        let layout = Layout::new(&pkg);
        // Net 0's wire slicing through net 1's pad at (250k, 300k).
        let prop = Proposal {
            routes: vec![(WireLayer(0), pl(&[(150_000, 300_000), (400_000, 300_000)]))],
            vias: vec![],
        };
        assert!(!clearance_ok(&pkg, &layout, NetId(0), &prop));
    }

    #[test]
    fn route_near_foreign_wire_rejected() {
        let pkg = pkg_two_nets();
        let mut layout = Layout::new(&pkg);
        layout.add_route(NetId(1), WireLayer(0), pl(&[(300_000, 250_000), (700_000, 250_000)]));
        // 3 µm parallel offset < 4 µm required.
        let prop = Proposal {
            routes: vec![(WireLayer(0), pl(&[(300_000, 253_000), (700_000, 253_000)]))],
            vias: vec![],
        };
        assert!(!clearance_ok(&pkg, &layout, NetId(0), &prop));
        // 4 µm is legal.
        let prop_ok = Proposal {
            routes: vec![(WireLayer(0), pl(&[(300_000, 254_000), (700_000, 254_000)]))],
            vias: vec![],
        };
        assert!(clearance_ok(&pkg, &layout, NetId(0), &prop_ok));
    }

    #[test]
    fn via_too_close_to_foreign_via_rejected() {
        let pkg = pkg_two_nets();
        let mut layout = Layout::new(&pkg);
        layout.add_via(NetId(1), Point::new(500_000, 250_000), 5_000, WireLayer(0), WireLayer(1), false);
        let prop = Proposal {
            routes: vec![],
            vias: vec![(Point::new(505_000, 250_000), WireLayer(0), WireLayer(1))],
        };
        assert!(!clearance_ok(&pkg, &layout, NetId(0), &prop));
        let prop_far = Proposal {
            routes: vec![],
            vias: vec![(Point::new(520_000, 250_000), WireLayer(0), WireLayer(1))],
        };
        assert!(clearance_ok(&pkg, &layout, NetId(0), &prop_far));
    }

    #[test]
    fn own_geometry_exempt() {
        let pkg = pkg_two_nets();
        let mut layout = Layout::new(&pkg);
        layout.add_route(NetId(0), WireLayer(0), pl(&[(250_000, 200_000), (500_000, 200_000)]));
        // Extending the same net right next to itself is fine.
        let prop = Proposal {
            routes: vec![(WireLayer(0), pl(&[(500_000, 200_000), (750_000, 200_000)]))],
            vias: vec![],
        };
        assert!(clearance_ok(&pkg, &layout, NetId(0), &prop));
    }
}
