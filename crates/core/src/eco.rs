//! Incremental ECO re-route: route the delta, not the die (DESIGN.md §4i).
//!
//! A production routing service is dominated by small edits — a few nets
//! added, removed, or re-paired after an initial route. This module
//! applies an [`EcoChangeSet`] against a prior [`RouteOutcome`] instead
//! of re-running the five-stage flow:
//!
//! - untouched nets keep their prior geometry byte for byte;
//! - the routing space is taken from the shared [`WarmSpaceCache`] keyed
//!   on the *prior layout hash* (so every edit against the same base —
//!   and every repeat of the same edit — shares one build), then only
//!   the cells under the edit's dirty rects are invalidated through the
//!   epoch-stamped [`RoutingSpace::rebuild_dirty_multi`];
//! - only impacted nets are re-routed through the existing sequential
//!   machinery: the fresh nets of the edit, prior failures with a dirty
//!   rect near a terminal (the route journal shows failures die walled
//!   in at a pad, so only freed space *there* can unlock them), and
//!   any kept net whose segments intersect a dirty rect (defensive — a
//!   DRC-legal prior never has one);
//! - the LP re-runs only on components touched by the edit
//!   ([`crate::lpopt::optimize_seeded`]), with [`Model::solve_warm`]
//!   reuse inside exactly as in a full run.
//!
//! Net removals renumber [`NetId`]s, so the edit produces a *derived*
//! package ([`EcoPlan::package`]) — the design a full route would be
//! given — and the returned outcome is expressed over it. Routing,
//! however, runs in a universe whose ids match the prior layout: for a
//! removals-only edit that universe is the base package itself (which is
//! what makes the warm-space key shareable), and geometry is re-labeled
//! into derived ids only at the very end.
//!
//! Determinism: given the same base package, prior outcome, change set,
//! and configuration, the ECO layout is byte-identical across runs and
//! thread counts — it inherits the sequential stage's determinism and
//! adds no iteration order of its own (change sets are canonicalized by
//! sorting before application, which also makes application insensitive
//! to the order edits were recorded in).
//!
//! [`WarmSpaceCache`]: crate::warm::WarmSpaceCache
//! [`RoutingSpace::rebuild_dirty_multi`]: info_tile::RoutingSpace::rebuild_dirty_multi
//! [`Model::solve_warm`]: info_lp::Model::solve_warm

use crate::flow::{Completion, InfoRouter, NetStatus, RouteOutcome, StageTimings};
use crate::lpopt;
use crate::resilience::{FlowCtx, FlowDiagnostics, RouterError};
use crate::sequential::{
    build_stage_space, net_geometry_rects, route_sequential_in_space, SequentialResult,
};
use crate::trial::{clearance_ok, Proposal};
use info_geom::{Coord, GridIndex, Point, Polyline, Rect, Segment};
use info_model::{drc, stats::LayoutStats, Layout, NetId, Package, PadId, WireLayer};
use info_telemetry::Sink;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// One batch of netlist edits against a routed base design.
///
/// Edits are recorded in any order; application canonicalizes by sorting,
/// so two change sets holding the same edits are interchangeable. A
/// change set is *invalid* — [`EcoChangeSet::plan`] returns a typed
/// [`RouterError::BadInput`] — when it references unknown net or pad
/// ids, edits the same net twice (e.g. removing a net that is also
/// re-paired), or leaves a pad terminating two nets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EcoChangeSet {
    removals: Vec<NetId>,
    additions: Vec<(PadId, PadId)>,
    re_pairs: Vec<(NetId, PadId, PadId)>,
}

impl EcoChangeSet {
    /// An empty change set (applying it reproduces the prior layout).
    pub fn new() -> Self {
        EcoChangeSet::default()
    }

    /// Schedules the removal of a base net.
    pub fn remove_net(mut self, id: NetId) -> Self {
        self.removals.push(id);
        self
    }

    /// Schedules a new net between two base pads.
    pub fn add_net(mut self, a: PadId, b: PadId) -> Self {
        self.additions.push((a, b));
        self
    }

    /// Schedules re-pairing a base net onto a new pad pair (its old
    /// geometry is dropped and the net is routed fresh).
    pub fn re_pair(mut self, id: NetId, a: PadId, b: PadId) -> Self {
        self.re_pairs.push((id, a, b));
        self
    }

    /// True when no edit is recorded.
    pub fn is_empty(&self) -> bool {
        self.removals.is_empty() && self.additions.is_empty() && self.re_pairs.is_empty()
    }

    /// Scheduled removals (unsorted, as recorded).
    pub fn removals(&self) -> &[NetId] {
        &self.removals
    }

    /// Scheduled additions (unsorted, as recorded).
    pub fn additions(&self) -> &[(PadId, PadId)] {
        &self.additions
    }

    /// Scheduled re-pairings (unsorted, as recorded).
    pub fn re_pairs(&self) -> &[(NetId, PadId, PadId)] {
        &self.re_pairs
    }

    /// Validates this change set against `package` and derives the edited
    /// design: the package a full route would be given, the net-id map
    /// for kept nets, and the fresh/dead partitions the delta re-route
    /// works from.
    ///
    /// # Errors
    ///
    /// [`RouterError::BadInput`] for unknown ids, overlapping edits
    /// (same net removed and re-paired, a net edited twice, a pad pair
    /// added twice), a self-loop, a bump-to-bump pair, or a pad left
    /// terminating two nets.
    pub fn plan(&self, package: &Package) -> Result<EcoPlan, RouterError> {
        let bad = |reason: String| RouterError::BadInput { reason };
        let nets_len = package.nets().len();
        let pads_len = package.pads().len();
        let check_pad = |p: PadId| -> Result<(), RouterError> {
            if p.index() >= pads_len {
                return Err(bad(format!("eco: unknown pad {p:?}")));
            }
            Ok(())
        };

        // Canonical order: application must not depend on recording order.
        let mut removals = self.removals.clone();
        removals.sort_unstable();
        let mut re_pairs = self.re_pairs.clone();
        re_pairs.sort_unstable_by_key(|&(n, _, _)| n);
        let mut additions = self.additions.clone();
        additions.sort_unstable();

        if removals.windows(2).any(|w| w[0] == w[1]) {
            return Err(bad("eco: a net is removed twice".into()));
        }
        if re_pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(bad("eco: a net is re-paired twice".into()));
        }
        if additions.windows(2).any(|w| w[0] == w[1]) {
            return Err(bad("eco: a pad pair is added twice".into()));
        }
        for &id in &removals {
            if id.index() >= nets_len {
                return Err(bad(format!("eco: unknown net {id:?} in removal")));
            }
        }
        let removed: BTreeSet<NetId> = removals.iter().copied().collect();
        for &(id, a, b) in &re_pairs {
            if id.index() >= nets_len {
                return Err(bad(format!("eco: unknown net {id:?} in re-pair")));
            }
            if removed.contains(&id) {
                return Err(bad(format!(
                    "eco: net {id:?} is both removed and re-paired"
                )));
            }
            check_pad(a)?;
            check_pad(b)?;
        }
        for &(a, b) in &additions {
            check_pad(a)?;
            check_pad(b)?;
        }

        // Final net list of the edited design: kept nets in base order
        // (re-pairs substituted in place), additions appended. Each entry
        // remembers where it came from.
        let re_pair_of: BTreeMap<NetId, (PadId, PadId)> =
            re_pairs.iter().map(|&(n, a, b)| (n, (a, b))).collect();
        let mut pairs: Vec<(PadId, PadId)> = Vec::new();
        let mut net_map: BTreeMap<NetId, NetId> = BTreeMap::new();
        let mut fresh: Vec<NetId> = Vec::new();
        for n in package.nets() {
            if removed.contains(&n.id) {
                continue;
            }
            let derived = NetId::from_index(pairs.len());
            net_map.insert(n.id, derived);
            match re_pair_of.get(&n.id) {
                Some(&(a, b)) => {
                    pairs.push((a, b));
                    fresh.push(derived);
                }
                None => pairs.push((n.a, n.b)),
            }
        }
        for &(a, b) in &additions {
            fresh.push(NetId::from_index(pairs.len()));
            pairs.push((a, b));
        }

        // Pad-disjointness and pair validity, with typed reasons (the
        // builder would also reject, but less helpfully).
        let mut used: BTreeMap<PadId, usize> = BTreeMap::new();
        for &(a, b) in &pairs {
            if a == b {
                return Err(bad(format!("eco: self-loop on pad {a:?}")));
            }
            if !package.pad(a).is_io() && !package.pad(b).is_io() {
                return Err(bad(format!("eco: pair {a:?}-{b:?} connects two bump pads")));
            }
            for p in [a, b] {
                *used.entry(p).or_insert(0) += 1;
                if used[&p] > 1 {
                    return Err(bad(format!("eco: pad {p:?} would terminate two nets")));
                }
            }
        }

        // Fixed vias survive on kept nets whose pairing is unchanged; a
        // re-paired net's pre-assigned stack refers to geometry that no
        // longer makes sense for the new pair.
        let pre_vias: Vec<(
            NetId,
            info_geom::Point,
            info_model::WireLayer,
            info_model::WireLayer,
        )> = package
            .pre_vias()
            .iter()
            .filter(|pv| !re_pair_of.contains_key(&pv.net))
            .filter_map(|pv| {
                net_map
                    .get(&pv.net)
                    .map(|&d| (d, pv.center, pv.top, pv.bottom))
            })
            .collect();

        let derived = rebuild_package(package, &pairs, &pre_vias)?;
        let mut dead: Vec<NetId> = removals;
        dead.extend(re_pairs.iter().map(|&(n, _, _)| n));
        dead.sort_unstable();
        Ok(EcoPlan {
            package: derived,
            net_map,
            fresh,
            dead,
            union_is_base: self.additions.is_empty() && self.re_pairs.is_empty(),
        })
    }
}

/// A validated change set applied to a base design (see
/// [`EcoChangeSet::plan`]).
#[derive(Debug, Clone)]
pub struct EcoPlan {
    /// The edited design — what a from-scratch route would be given, and
    /// the package the ECO outcome is expressed over.
    pub package: Package,
    /// Kept nets: base id → id in [`EcoPlan::package`].
    pub net_map: BTreeMap<NetId, NetId>,
    /// Ids (in [`EcoPlan::package`]) that must be routed fresh:
    /// additions plus re-paired nets.
    pub fresh: Vec<NetId>,
    /// Base ids whose prior geometry the edit drops (removals and
    /// re-pairs), in ascending order.
    pub dead: Vec<NetId>,
    /// Removals-only edits route in the base package itself, which makes
    /// the warm-space key — (base package, prior layout hash) — shared
    /// across every such edit against the same prior.
    pub(crate) union_is_base: bool,
}

/// Telemetry of one delta re-route (carried on [`RouteOutcome::eco`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EcoStats {
    /// Nets removed by the change set.
    pub nets_removed: usize,
    /// Nets added by the change set.
    pub nets_added: usize,
    /// Nets re-paired by the change set.
    pub nets_re_paired: usize,
    /// Nets the delta actually re-routed (fresh + impacted + retried
    /// prior failures), including stash replays.
    pub nets_rerouted: usize,
    /// Fresh nets re-attached verbatim from a prior ECO's deletion stash
    /// instead of searched (subset of `nets_rerouted`).
    pub nets_replayed: usize,
    /// Kept nets whose prior geometry was reused untouched.
    pub nets_reused: usize,
    /// Dirty rects the edit produced (per-segment, not hulls).
    pub dirty_rects: usize,
    /// Global cells invalidated by the epoch-stamped dirty rebuild (0
    /// when the space was built fresh against the stripped layout).
    pub cells_invalidated: usize,
    /// True when the routing space came out of the shared warm cache
    /// instead of a cold build.
    pub space_warm_hit: bool,
    /// True when the space was patched via `rebuild_dirty_multi` (the
    /// removals-only fast path) rather than rebuilt from the layout.
    pub space_dirty_rebuild: bool,
    /// Nets seeding the dirty LP pass (0 = LP skipped entirely).
    pub lp_dirty_nets: usize,
    /// Warm-basis (`solve_warm`) reuses inside the dirty LP pass.
    pub lp_warm_basis_reuses: usize,
    /// LP components skipped as disjoint from the dirty seed.
    pub lp_components_skipped: usize,
}

/// The committed geometry of a net an ECO deleted, carried on the ECO's
/// outcome so a later ECO that re-adds the identical pad pair can
/// re-attach it verbatim instead of searching.
///
/// Threading the *last* net through an otherwise-complete dense layout
/// is the one case tile-graph search can lose — a from-layout space
/// rebuild need not regenerate via sites at the old flexible positions,
/// so the thin freed corridor may not exist in the graph even though the
/// geometry fits — and a delete→restore round trip is exactly that case.
/// Replay closes it: entries are validated against the current layout
/// before re-attachment (crossing check + clearance trial, the same
/// gates a searched plan passes) and fall back to ordinary search when
/// stale, so a stash can never make a layout less legal.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoStash {
    /// The dead net's pad pair (pad ids survive net edits).
    pads: (PadId, PadId),
    /// Its planar routes `(layer, centerline)`.
    routes: Vec<(WireLayer, Polyline)>,
    /// Its vias `(center, width, top, bottom)`.
    vias: Vec<(Point, Coord, WireLayer, WireLayer)>,
}

/// Derives the edited design from `base` with `pairs` as the net list
/// and `pre_vias` re-attached. [`Package::with_nets`] shares the
/// validated floorplan (pads never move under a net edit), so this is
/// linear in the edit — rebuilding through `PackageBuilder` would repeat
/// the quadratic pad-spacing sweep on every ECO, which on dense pad
/// fields costs more than the delta route itself.
fn rebuild_package(
    base: &Package,
    pairs: &[(PadId, PadId)],
    pre_vias: &[(
        NetId,
        info_geom::Point,
        info_model::WireLayer,
        info_model::WireLayer,
    )],
) -> Result<Package, RouterError> {
    base.with_nets(pairs, pre_vias)
        .map_err(|e| RouterError::BadInput {
            reason: format!("eco: edited package: {e}"),
        })
}

/// Cheap per-net geometry fingerprint — used to detect which kept nets
/// the sequential machinery actually moved (rip-up victims included), so
/// the LP's dirty seed covers them.
fn fingerprint(layout: &Layout, n: NetId) -> (usize, usize, u64) {
    (
        layout.routes_of(n).count(),
        layout.vias_of(n).count(),
        layout.net_wirelength(n).to_bits(),
    )
}

/// Exact segment-vs-rect intersection (endpoints inside, or the segment
/// crosses an edge) — bounding boxes of 45° segments overlap freely
/// without the geometry touching, so the impacted-net test cannot use
/// rect-vs-rect.
fn seg_hits_rect(s: Segment, r: Rect) -> bool {
    r.contains(s.a) || r.contains(s.b) || r.edges().iter().any(|e| e.touches(s))
}

/// The dead nets' committed shapes, exact and layer-tagged: wire segments
/// per layer, via footprints per layer span.
struct DeadGeometry {
    segs: Vec<(WireLayer, Segment)>,
    vias: Vec<(WireLayer, WireLayer, Rect)>,
}

impl DeadGeometry {
    fn collect(layout: &Layout, dead: &[NetId]) -> Self {
        let mut segs = Vec::new();
        let mut vias = Vec::new();
        for &d in dead {
            for r in layout.routes_of(d) {
                for s in r.path.segments() {
                    segs.push((r.layer, s));
                }
            }
            for v in layout.vias_of(d) {
                let (lo, hi) = if v.bottom.0 <= v.top.0 {
                    (v.bottom, v.top)
                } else {
                    (v.top, v.bottom)
                };
                vias.push((lo, hi, Rect::centered_square(v.center, v.width / 2)));
            }
        }
        DeadGeometry { segs, vias }
    }

    /// True when `n`'s committed geometry *truly* touches dead geometry on
    /// a shared layer. On a DRC-legal prior this never fires for a
    /// removal (kept nets sit at least a clearance away); it is the
    /// defensive path for priors carrying violations.
    fn touches_net(&self, layout: &Layout, n: NetId) -> bool {
        for r in layout.routes_of(n) {
            for s in r.path.segments() {
                if self.segs.iter().any(|&(l, d)| l == r.layer && s.touches(d)) {
                    return true;
                }
                if self.vias.iter().any(|&(lo, hi, vr)| {
                    lo.0 <= r.layer.0 && r.layer.0 <= hi.0 && seg_hits_rect(s, vr)
                }) {
                    return true;
                }
            }
        }
        for v in layout.vias_of(n) {
            let vr = Rect::centered_square(v.center, v.width / 2);
            let (vlo, vhi) = if v.bottom.0 <= v.top.0 {
                (v.bottom, v.top)
            } else {
                (v.top, v.bottom)
            };
            if self
                .segs
                .iter()
                .any(|&(l, d)| vlo.0 <= l.0 && l.0 <= vhi.0 && seg_hits_rect(d, vr))
            {
                return true;
            }
            if self
                .vias
                .iter()
                .any(|&(lo, hi, dr)| lo.0 <= vhi.0 && vlo.0 <= hi.0 && dr.intersects(vr))
            {
                return true;
            }
        }
        false
    }
}

/// The implementation behind [`InfoRouter::reroute_delta`].
pub(crate) fn reroute_delta(
    router: &InfoRouter,
    package: &Package,
    prior: &RouteOutcome,
    changes: &EcoChangeSet,
) -> Result<RouteOutcome, RouterError> {
    let plan = changes.plan(package)?;
    let cfg = router.config();

    // Empty change set: the answer is the prior outcome, byte for byte —
    // nothing re-routed, nothing rebuilt.
    if changes.is_empty() {
        let mut out = prior.clone();
        out.concurrent_routed = 0;
        out.sequential_routed = 0;
        out.timings = StageTimings::default();
        out.completion = Completion::Full;
        out.cancelled = false;
        out.lp_mid = None;
        out.lp_final = None;
        out.diagnostics = FlowDiagnostics::default();
        out.telemetry = None;
        out.negotiation = None;
        out.eco = Some(EcoStats {
            nets_reused: package.nets().len(),
            ..EcoStats::default()
        });
        return Ok(out);
    }

    let tel = if cfg.telemetry {
        Sink::enabled()
    } else {
        Sink::disabled()
    };
    let ctx = match &router.cancel {
        Some(token) => FlowCtx::with_token(cfg.fault_plan, token.clone()),
        None => FlowCtx::new(cfg.fault_plan),
    };

    // Routing universe: ids that match the prior layout. Removals-only
    // edits route in the base package; anything else routes directly in
    // the derived package with prior geometry re-labeled through net_map.
    let uni: &Package = if plan.union_is_base {
        package
    } else {
        &plan.package
    };
    let keep: BTreeMap<NetId, NetId> = if plan.union_is_base {
        plan.net_map.keys().map(|&k| (k, k)).collect()
    } else {
        plan.net_map.clone()
    };

    // Dirty rects: the dead nets' prior geometry, per segment. The same
    // walk stashes that geometry (keyed by the dead net's pad pair) so a
    // later ECO restoring the pair can re-attach it without a search.
    let mut dirty: Vec<Rect> = Vec::new();
    let mut stash_new: Vec<EcoStash> = Vec::new();
    for &d in &plan.dead {
        net_geometry_rects(&prior.layout, d, &mut dirty);
        let n = package.net(d);
        let routes: Vec<(WireLayer, Polyline)> = prior
            .layout
            .routes_of(d)
            .map(|r| (r.layer, r.path.clone()))
            .collect();
        // A dead net the prior never routed has nothing worth replaying —
        // an empty entry must not exist, or a later restore would
        // "re-attach" nothing and declare the net routed.
        if routes.is_empty() {
            continue;
        }
        stash_new.push(EcoStash {
            pads: (n.a, n.b),
            routes,
            vias: prior
                .layout
                .vias_of(d)
                .map(|v| (v.center, v.width, v.top, v.bottom))
                .collect(),
        });
    }

    // Start layout: kept geometry only, in universe ids.
    let mut layout = Layout::new(uni);
    for r in prior.layout.routes() {
        if let Some(&u) = keep.get(&r.net) {
            layout.add_route(u, r.layer, r.path.clone());
        }
    }
    for v in prior.layout.vias() {
        if let Some(&u) = keep.get(&v.net) {
            layout.add_via(u, v.center, v.width, v.top, v.bottom, v.fixed);
        }
    }

    // Impacted nets, via the grid index: kept nets whose committed
    // segments truly intersect the dead geometry (defensive — a DRC-legal
    // prior has none), plus prior failures the edit freed terminal space
    // for. Fresh nets always route (the set is empty by construction in
    // base mode).
    let mut to_route: BTreeSet<NetId> = plan.fresh.iter().copied().collect();
    if !dirty.is_empty() {
        let dead_geom = DeadGeometry::collect(&prior.layout, &plan.dead);
        let mut index: GridIndex<NetId> =
            GridIndex::with_capacity_hint(uni.die(), layout.route_count().max(1));
        let mut rects: Vec<Rect> = Vec::new();
        for (&_old, &u) in &keep {
            rects.clear();
            net_geometry_rects(&layout, u, &mut rects);
            for r in &rects {
                index.insert(*r, u);
            }
        }
        // Bounding-box prefilter through the index, exact confirm after:
        // only a net whose shapes truly touch the dead geometry moves.
        let mut candidates: BTreeSet<NetId> = BTreeSet::new();
        for d in &dirty {
            index.for_each_in(*d, |_, rect, &net| {
                if rect.intersects(*d) {
                    candidates.insert(net);
                }
            });
        }
        for &u in &candidates {
            if dead_geom.touches_net(&layout, u) {
                to_route.insert(u);
            }
        }
        // Prior failures are retried only when the edit frees space in a
        // terminal neighborhood. The route journal shows failed nets
        // dying walled in right at a pad (the same observation rip-up's
        // victim ranking is built on), so freed space anywhere else on
        // the pad-pair span cannot unlock them — and each futile retry
        // re-runs the failure's full escalating search, which is what an
        // ECO exists to avoid.
        let retry_reach = 8 * (uni.rules().min_spacing + uni.rules().wire_width);
        for (old, st) in &prior.net_status {
            if *st == NetStatus::Routed {
                continue;
            }
            let Some(&u) = keep.get(old) else { continue };
            let n = uni.net(u);
            let hot_a = Rect::new(uni.pad(n.a).center, uni.pad(n.a).center).inflate(retry_reach);
            let hot_b = Rect::new(uni.pad(n.b).center, uni.pad(n.b).center).inflate(retry_reach);
            if dirty
                .iter()
                .any(|d| d.intersects(hot_a) || d.intersects(hot_b))
            {
                to_route.insert(u);
            }
        }
    }
    // Nets in to_route must not carry stale geometry into their own
    // re-route (an impacted net would collide with itself).
    let moved: Vec<NetId> = to_route
        .iter()
        .copied()
        .filter(|&u| layout.has_geometry(u))
        .collect();
    for &u in &moved {
        net_geometry_rects(&layout, u, &mut dirty);
        layout.remove_net(u);
    }

    // The routing space. Removals-only edits reuse the warm build keyed
    // on the *prior* layout (shared by every edit against this base) and
    // invalidate only the dirty cells; other edits build against the
    // stripped layout — warm-keyed on (edited package, stripped layout),
    // so repeating the same edit starts warm.
    let t_seq = Instant::now();
    let mut stats = EcoStats {
        nets_removed: changes.removals.len(),
        nets_added: changes.additions.len(),
        nets_re_paired: changes.re_pairs.len(),
        dirty_rects: dirty.len(),
        ..EcoStats::default()
    };
    let before: BTreeMap<NetId, (usize, usize, u64)> = keep
        .values()
        .map(|&u| (u, fingerprint(&layout, u)))
        .collect();
    let mut replayed: Vec<NetId> = Vec::new();
    let mut order: Vec<NetId> = Vec::new();
    // When nothing needs a search — the common deletion-only ECO — no
    // code path consults the routing space, so neither the warm-space
    // clone nor the dirty-cell rebuild is paid at all: the edit reduces
    // to layout bookkeeping plus the final DRC sweep.
    let seq = if to_route.is_empty() {
        SequentialResult::default()
    } else {
        let mut space = match (&router.warm, plan.union_is_base) {
            (Some(cache), true) => {
                let (h0, _) = cache.stats();
                let mut space = cache.get_or_build(package, &prior.layout, cfg, &tel);
                stats.space_warm_hit = cache.stats().0 > h0;
                stats.cells_invalidated = space.rebuild_dirty_multi(package, &layout, &dirty).len();
                stats.space_dirty_rebuild = true;
                // The edit only *freed* space relative to the stage the ALT
                // tables were built for, so they may overestimate and break
                // admissibility; fall back to the geometric heuristic.
                space.set_landmarks(None);
                space
            }
            (Some(cache), false) => {
                let (h0, _) = cache.stats();
                let space = cache.get_or_build(uni, &layout, cfg, &tel);
                stats.space_warm_hit = cache.stats().0 > h0;
                space
            }
            (None, _) => build_stage_space(uni, &layout, cfg, &tel),
        };

        // Re-attach stashed geometry: a fresh net whose pad pair matches a
        // net a prior ECO deleted replays the stashed route verbatim when it
        // is still legal against the current layout (see [`EcoStash`] — the
        // from-layout space need not contain the thin freed corridor, so
        // search alone cannot guarantee a delete→restore round trip).
        if !prior.eco_stash.is_empty() {
            for &u in &plan.fresh {
                let n = uni.net(u);
                let Some(entry) = prior
                    .eco_stash
                    .iter()
                    .find(|e| e.pads == (n.a, n.b) || e.pads == (n.b, n.a))
                else {
                    continue;
                };
                if entry.routes.is_empty() {
                    continue; // nothing to re-attach: search from scratch
                }
                let proposal = Proposal {
                    routes: entry.routes.clone(),
                    vias: entry
                        .vias
                        .iter()
                        .map(|&(at, _, top, bot)| (at, top, bot))
                        .collect(),
                };
                let crosses = proposal.routes.iter().any(|(layer, pl)| {
                    layout
                        .routes_on(*layer)
                        .any(|r| r.net != u && pl.crosses(&r.path))
                });
                if crosses || !clearance_ok(uni, &layout, u, &proposal) {
                    continue; // stale stash: fall back to search
                }
                let mut rects: Vec<Rect> = Vec::new();
                for (layer, pl) in &entry.routes {
                    for s in pl.segments() {
                        rects.push(Rect::new(s.a, s.b));
                    }
                    layout.add_route(u, *layer, pl.clone());
                }
                for &(at, w, top, bot) in &entry.vias {
                    rects.push(Rect::new(at, at));
                    layout.add_via(u, at, w, top, bot, false);
                }
                space.rebuild_dirty_multi(uni, &layout, &rects);
                to_route.remove(&u);
                replayed.push(u);
            }
        }

        // Sequential delta re-route through the existing machinery.
        order = to_route.iter().copied().collect();
        route_sequential_in_space(uni, &mut layout, &order, cfg, &ctx, &mut space, &tel)
    };
    let sequential = t_seq.elapsed();
    stats.nets_replayed = replayed.len();
    stats.nets_rerouted = order.len() + replayed.len();
    stats.nets_reused = keep.len()
        - order
            .iter()
            .filter(|u| keep.values().any(|v| v == *u))
            .count();

    // LP on touched components only: everything the delta moved (fresh
    // routes, retried nets, rip-up victims) seeds the dirty set.
    let t_lp = Instant::now();
    let mut touched: BTreeSet<NetId> = order.iter().chain(replayed.iter()).copied().collect();
    for (&u, &fp) in &before {
        if fingerprint(&layout, u) != fp {
            touched.insert(u);
        }
    }
    let mut lp_final = None;
    if cfg.lp_enabled && !touched.is_empty() && !ctx.interrupted() {
        stats.lp_dirty_nets = touched.len();
        let rep = lpopt::optimize_seeded(uni, &mut layout, cfg, &ctx, Some(&touched));
        stats.lp_warm_basis_reuses = rep.warm_basis_reuses;
        stats.lp_components_skipped = rep.components_skipped;
        lp_final = Some(rep);
    }
    let lp = t_lp.elapsed();

    // Re-label into the edited package's ids and verify.
    let final_layout = if plan.union_is_base {
        let mut out = Layout::new(&plan.package);
        for r in layout.routes() {
            out.add_route(plan.net_map[&r.net], r.layer, r.path.clone());
        }
        for v in layout.vias() {
            out.add_via(
                plan.net_map[&v.net],
                v.center,
                v.width,
                v.top,
                v.bottom,
                v.fixed,
            );
        }
        out
    } else {
        layout
    };
    let report = drc::check_with(&plan.package, &final_layout, &tel);
    let out_stats = LayoutStats::from_report(&plan.package, &final_layout, &report);

    // Per-net disposition over the edited design: re-routed nets take
    // this run's result, kept nets keep their prior status.
    let derived_of = |u: NetId| -> NetId {
        if plan.union_is_base {
            plan.net_map[&u]
        } else {
            u
        }
    };
    let routed_now: BTreeSet<NetId> = seq
        .routed
        .iter()
        .chain(replayed.iter())
        .map(|&u| derived_of(u))
        .collect();
    let skipped_now: BTreeSet<NetId> = seq.skipped.iter().map(|&u| derived_of(u)).collect();
    let attempted: BTreeSet<NetId> = order
        .iter()
        .chain(replayed.iter())
        .map(|&u| derived_of(u))
        .collect();
    let prior_status: BTreeMap<NetId, NetStatus> = prior
        .net_status
        .iter()
        .filter_map(|(old, st)| plan.net_map.get(old).map(|&d| (d, *st)))
        .collect();
    let net_status: Vec<(NetId, NetStatus)> = plan
        .package
        .nets()
        .iter()
        .map(|n| {
            let s = if attempted.contains(&n.id) {
                if routed_now.contains(&n.id) {
                    NetStatus::Routed
                } else if skipped_now.contains(&n.id) {
                    NetStatus::Skipped
                } else {
                    NetStatus::Failed
                }
            } else {
                prior_status
                    .get(&n.id)
                    .copied()
                    .unwrap_or(NetStatus::Failed)
            };
            (n.id, s)
        })
        .collect();
    let failed: Vec<NetId> = net_status
        .iter()
        .filter(|(_, s)| *s == NetStatus::Failed)
        .map(|(id, _)| *id)
        .collect();
    let completion = if ctx.interrupted() || !seq.skipped.is_empty() {
        Completion::Degraded
    } else {
        Completion::Full
    };

    // Outcome stash: this edit's dead geometry plus carried-forward prior
    // entries, kept only while both pads stay free in the edited design
    // (a pair back in use can never be re-added, so its entry is inert).
    let pads_in_use: BTreeSet<PadId> = plan
        .package
        .nets()
        .iter()
        .flat_map(|n| [n.a, n.b])
        .collect();
    let eco_stash: Vec<EcoStash> = stash_new
        .into_iter()
        .chain(prior.eco_stash.iter().cloned())
        .filter(|e| !pads_in_use.contains(&e.pads.0) && !pads_in_use.contains(&e.pads.1))
        .collect();

    Ok(RouteOutcome {
        layout: final_layout,
        stats: out_stats,
        drc: report,
        timings: StageTimings {
            preprocess: std::time::Duration::ZERO,
            concurrent: std::time::Duration::ZERO,
            sequential,
            lp,
            search: seq.search,
        },
        concurrent_routed: 0,
        sequential_routed: seq.routed.len(),
        failed,
        completion,
        cancelled: ctx.cancelled(),
        net_status,
        lp_mid: None,
        lp_final,
        diagnostics: FlowDiagnostics::default(),
        telemetry: tel.report(),
        negotiation: seq.negotiation,
        eco: Some(stats),
        eco_stash,
    })
}
