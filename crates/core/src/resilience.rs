//! Fault isolation for the five-stage flow.
//!
//! The routing flow treats partial failure as the normal case: a degenerate
//! tile, a singular LU basis, or an infeasible LP component must cost at
//! most the nets it owns, never the whole route. This module provides the
//! pieces `InfoRouter::route` uses to guarantee that:
//!
//! - [`RouterError`] — the typed error taxonomy every stage reports through;
//! - [`Stage`] / [`StageOutcome`] / [`FlowDiagnostics`] — the per-stage
//!   record of what ran clean, what was recovered, and what timed out;
//! - [`FaultPlan`] / [`FaultSite`] — a deterministic fault-injection harness
//!   threaded through the stages behind plain runtime checks (no `#[cfg]`
//!   gating), so tests can assert the no-panic contract under any single
//!   injected fault;
//! - [`FlowCtx`] — the runtime carrying the armed fault plan and the
//!   cooperative per-stage deadline.
//!
//! Stage guards in `flow.rs` wrap every stage in
//! [`std::panic::catch_unwind`]; the conversions here are what those guards
//! catch and record.

use info_lp::LpError;
use info_model::NetId;
use info_tile::CancelToken;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// The stages of the flow, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Stage 1: preprocessing (partitioning, MST, circular model).
    Preprocess,
    /// Stage 2a: weighted-MPSC layer assignment.
    Assign,
    /// Stage 2b: concurrent pattern routing.
    Concurrent,
    /// Mid-flight LP pass after concurrent routing.
    LpMid,
    /// Stages 3+4: routing-graph construction and sequential A*.
    Sequential,
    /// Stage 5: final LP-based layout optimization.
    LpFinal,
}

impl Stage {
    /// Stable lower-case name (`preprocess`, `lp_mid`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Preprocess => "preprocess",
            Stage::Assign => "assign",
            Stage::Concurrent => "concurrent",
            Stage::LpMid => "lp_mid",
            Stage::Sequential => "sequential",
            Stage::LpFinal => "lp_final",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Everything that can go wrong inside the routing flow.
///
/// Hand-rolled (no external error crates); every variant carries enough
/// context to diagnose the failure from a [`FlowDiagnostics`] record alone.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterError {
    /// Preprocessing could not produce a usable fan-out model.
    Preprocess(String),
    /// Layer assignment failed (malformed circular model, peel error).
    Assign(String),
    /// Concurrent routing aborted; its partial commits were rolled back.
    Concurrent(String),
    /// The sequential stage aborted as a whole (not a per-net failure).
    Sequential(String),
    /// One net could not be routed for an internal (non-geometric) reason.
    NetRouting {
        /// The affected net.
        net: NetId,
        /// What failed for it.
        reason: String,
    },
    /// The LP solver failed for one component; that component keeps its
    /// pre-LP geometry.
    Lp(LpError),
    /// A panic was caught by a stage guard.
    Panic {
        /// The stage whose guard caught the panic.
        stage: Stage,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A stage exceeded its configured time budget.
    Timeout {
        /// The stage that ran over budget.
        stage: Stage,
    },
    /// A fault injected through [`FaultPlan`] fired.
    FaultInjected {
        /// The site that fired.
        site: FaultSite,
    },
    /// A routing job or netlist failed validation before any routing ran
    /// (malformed JSON, bad netlist text, out-of-range field). Always a
    /// typed rejection — adversarial input must never panic the service.
    BadInput {
        /// What was wrong with the input.
        reason: String,
    },
    /// The job's cancel token tripped (explicit cancel or job deadline);
    /// whatever partial result existed at the trip is what was kept.
    Cancelled,
    /// The job server itself failed while handling a job (worker panic
    /// that survived the retry, send failure). Never caused by routing —
    /// `route()` absorbs its own failures.
    Serve(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::Preprocess(m) => write!(f, "preprocess failed: {m}"),
            RouterError::Assign(m) => write!(f, "layer assignment failed: {m}"),
            RouterError::Concurrent(m) => write!(f, "concurrent routing failed: {m}"),
            RouterError::Sequential(m) => write!(f, "sequential routing failed: {m}"),
            RouterError::NetRouting { net, reason } => {
                write!(f, "net {net} failed to route: {reason}")
            }
            RouterError::Lp(e) => write!(f, "LP optimization failed: {e}"),
            RouterError::Panic { stage, message } => {
                write!(f, "panic in {stage} stage: {message}")
            }
            RouterError::Timeout { stage } => write!(f, "{stage} stage exceeded its budget"),
            RouterError::FaultInjected { site } => {
                write!(f, "injected fault fired at {}", site.as_str())
            }
            RouterError::BadInput { reason } => write!(f, "bad input: {reason}"),
            RouterError::Cancelled => write!(f, "job cancelled"),
            RouterError::Serve(m) => write!(f, "job server failed: {m}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for RouterError {
    fn from(e: LpError) -> Self {
        RouterError::Lp(e)
    }
}

/// Renders a caught panic payload as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Per-stage outcomes
// ---------------------------------------------------------------------------

/// How one stage ended.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StageOutcome {
    /// The stage completed normally (also used for stages that were
    /// disabled by configuration and never ran).
    #[default]
    Ok,
    /// The stage failed internally; the flow degraded gracefully and
    /// continued. The error says what was recovered from.
    Recovered(RouterError),
    /// The stage hit its cooperative deadline; partial results (if any)
    /// were kept and the flow continued.
    TimedOut,
    /// The flow's cancel token tripped while (or before) the stage ran;
    /// partial results were kept, and every later stage reports the same.
    Cancelled,
}

impl StageOutcome {
    /// True when the stage completed without recovery or timeout.
    pub fn is_ok(&self) -> bool {
        matches!(self, StageOutcome::Ok)
    }
}

/// Per-stage record of an entire `route()` call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowDiagnostics {
    /// Stage 1 outcome.
    pub preprocess: StageOutcome,
    /// Stage 2a outcome.
    pub assign: StageOutcome,
    /// Stage 2b outcome.
    pub concurrent: StageOutcome,
    /// Mid-flight LP outcome.
    pub lp_mid: StageOutcome,
    /// Stages 3+4 outcome.
    pub sequential: StageOutcome,
    /// Final LP outcome.
    pub lp_final: StageOutcome,
    /// Nets that failed for internal (caught-panic or injected) reasons,
    /// each costing exactly that net.
    pub net_failures: Vec<(NetId, RouterError)>,
    /// Fault-plan sites that actually fired, with trigger counts.
    pub faults_fired: Vec<(FaultSite, u32)>,
    /// Wall-clock time spent per stage (perf counters; identical to
    /// `RouteOutcome::timings`, surfaced here so diagnostics alone carry
    /// the full story of a run).
    pub timings: crate::flow::StageTimings,
}

impl FlowDiagnostics {
    /// All stages clean, nothing recovered, injected, or timed out.
    pub fn all_ok(&self) -> bool {
        self.stages().iter().all(|(_, o)| o.is_ok())
            && self.net_failures.is_empty()
            && self.faults_fired.is_empty()
    }

    /// The outcomes in stage order.
    pub fn stages(&self) -> [(Stage, &StageOutcome); 6] {
        [
            (Stage::Preprocess, &self.preprocess),
            (Stage::Assign, &self.assign),
            (Stage::Concurrent, &self.concurrent),
            (Stage::LpMid, &self.lp_mid),
            (Stage::Sequential, &self.sequential),
            (Stage::LpFinal, &self.lp_final),
        ]
    }

    /// Mutable access to the slot for `stage`.
    pub fn slot_mut(&mut self, stage: Stage) -> &mut StageOutcome {
        match stage {
            Stage::Preprocess => &mut self.preprocess,
            Stage::Assign => &mut self.assign,
            Stage::Concurrent => &mut self.concurrent,
            Stage::LpMid => &mut self.lp_mid,
            Stage::Sequential => &mut self.sequential,
            Stage::LpFinal => &mut self.lp_final,
        }
    }

    /// Stages that did not end [`StageOutcome::Ok`].
    pub fn degraded_stages(&self) -> Vec<(Stage, StageOutcome)> {
        self.stages()
            .iter()
            .filter(|(_, o)| !o.is_ok())
            .map(|(s, o)| (*s, (*o).clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Named places in the flow where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Inside preprocessing, right after fan-out partitioning.
    PreprocessPartition,
    /// Inside layer assignment, before peeling MPSC layers.
    AssignPeel,
    /// Inside the concurrent stage, while committing a candidate net.
    ConcurrentCommit,
    /// Inside the LP stage, at basis factorization (i.e. `Model::solve`).
    LpFactorize,
    /// Inside the sequential stage, at A* expansion for one net.
    AstarExpand,
    /// Inside the sequential stage, at via insertion / tile realization.
    TileViaInsert,
    /// In the job server, while parsing a submitted job line (before any
    /// routing work is scheduled).
    ServeParse,
    /// In a job-server worker, between accepting a job and committing
    /// its result (exercises per-job `catch_unwind` isolation + retry).
    ServeWorker,
    /// In a job-server worker, at job start: arms a deterministic
    /// mid-search cancel trip on the job's token instead of failing.
    ServeCancel,
    /// Inside a speculative pool worker, before planning one net. Only
    /// reachable with `threads > 1`: a fired fault kills that worker's
    /// plan, which the commit loop recomputes through the exact
    /// single-threaded path — so unlike every other site, arming this
    /// one does *not* force the flow single-threaded (the layout is
    /// thread-invariant by the speculative-commit contract, not by
    /// trigger-count ordering).
    PoolWorker,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 10;

    /// Every site, in flow order (service-layer sites last).
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::PreprocessPartition,
        FaultSite::AssignPeel,
        FaultSite::ConcurrentCommit,
        FaultSite::LpFactorize,
        FaultSite::AstarExpand,
        FaultSite::TileViaInsert,
        FaultSite::ServeParse,
        FaultSite::ServeWorker,
        FaultSite::ServeCancel,
        FaultSite::PoolWorker,
    ];

    /// Stable dotted name (`lp.factorize`, `astar.expand`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::PreprocessPartition => "preprocess.partition",
            FaultSite::AssignPeel => "assign.peel",
            FaultSite::ConcurrentCommit => "concurrent.commit",
            FaultSite::LpFactorize => "lp.factorize",
            FaultSite::AstarExpand => "astar.expand",
            FaultSite::TileViaInsert => "tile.via_insert",
            FaultSite::ServeParse => "serve.parse",
            FaultSite::ServeWorker => "serve.worker",
            FaultSite::ServeCancel => "serve.cancel",
            FaultSite::PoolWorker => "pool.worker",
        }
    }

    /// Parses a dotted name back to a site.
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.as_str() == name)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::PreprocessPartition => 0,
            FaultSite::AssignPeel => 1,
            FaultSite::ConcurrentCommit => 2,
            FaultSite::LpFactorize => 3,
            FaultSite::AstarExpand => 4,
            FaultSite::TileViaInsert => 5,
            FaultSite::ServeParse => 6,
            FaultSite::ServeWorker => 7,
            FaultSite::ServeCancel => 8,
            FaultSite::PoolWorker => 9,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How an injected fault manifests at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// The site reports a [`RouterError::FaultInjected`] through its normal
    /// `Result` path.
    #[default]
    Error,
    /// The site panics, exercising the `catch_unwind` stage guards.
    Panic,
}

/// One armed fault: fire `fires` times at `site`, skipping the first
/// `skip` passes through the check (the deterministic trigger count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDirective {
    /// Where to fire.
    pub site: FaultSite,
    /// How to manifest.
    pub kind: FaultKind,
    /// Passes through the site to let through before firing.
    pub skip: u32,
    /// Number of consecutive passes that then fail.
    pub fires: u32,
}

/// A deterministic set of faults to inject into one `route()` call.
///
/// Stored inline (fixed capacity, `Copy`) so `RouterConfig` stays `Copy`.
/// The plan is declarative; trigger counting happens in [`FlowCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    directives: [Option<FaultDirective>; FaultSite::COUNT],
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single error-kind fault at `site`, firing on the first
    /// pass.
    pub fn single(site: FaultSite) -> Self {
        FaultPlan::none().with(FaultDirective { site, kind: FaultKind::Error, skip: 0, fires: 1 })
    }

    /// A plan with a single panic-kind fault at `site`.
    pub fn single_panic(site: FaultSite) -> Self {
        FaultPlan::none().with(FaultDirective { site, kind: FaultKind::Panic, skip: 0, fires: 1 })
    }

    /// Adds a directive (at most one per site; a second directive for the
    /// same site replaces the first).
    pub fn with(mut self, d: FaultDirective) -> Self {
        self.directives[d.site.index()] = Some(d);
        self
    }

    /// The directive armed for `site`, if any.
    pub fn directive(&self, site: FaultSite) -> Option<FaultDirective> {
        self.directives[site.index()]
    }

    /// True when no directive is armed.
    pub fn is_empty(&self) -> bool {
        self.directives.iter().all(Option::is_none)
    }

    /// True when every armed directive sits at an order-insensitive site
    /// (currently only [`FaultSite::PoolWorker`]): such plans don't need
    /// the single-thread fallback, because a fired worker fault only
    /// discards a speculative plan that the commit loop recomputes
    /// authoritatively.
    pub fn order_insensitive(&self) -> bool {
        self.directives
            .iter()
            .flatten()
            .all(|d| d.site == FaultSite::PoolWorker)
    }
}

// ---------------------------------------------------------------------------
// Flow context: armed faults + cooperative deadline
// ---------------------------------------------------------------------------

/// Runtime state threaded through the stages of one `route()` call.
///
/// Interior mutability is atomic throughout so the context stays coherent
/// across the `catch_unwind` stage guards (a panic can never poison it).
#[derive(Debug)]
pub struct FlowCtx {
    plan: FaultPlan,
    hits: [AtomicU32; FaultSite::COUNT],
    fired: [AtomicU32; FaultSite::COUNT],
    /// The shared stop flag: stage deadline (re-armed per stage), job
    /// deadline, and explicit cancel all live here, so the innermost A\*
    /// loop observes the same state as the stage guards.
    cancel: CancelToken,
}

impl Default for FlowCtx {
    fn default() -> Self {
        FlowCtx::new(FaultPlan::none())
    }
}

impl FlowCtx {
    /// A context with `plan` armed, a fresh cancel token, and no deadline.
    pub fn new(plan: FaultPlan) -> Self {
        FlowCtx::with_token(plan, CancelToken::new())
    }

    /// A context observing an externally owned [`CancelToken`] — how a
    /// job server threads its per-job cancel/deadline into the flow.
    pub fn with_token(plan: FaultPlan, cancel: CancelToken) -> Self {
        FlowCtx { plan, hits: Default::default(), fired: Default::default(), cancel }
    }

    /// The cancel token this context observes (share it to cancel the
    /// flow from another thread, or pass it into cancellable searches).
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Arms the cooperative deadline for the next stage; `None` clears it.
    /// The job-level deadline on the token (if any) is untouched.
    pub fn begin_stage(&self, budget: Option<Duration>) {
        self.cancel.arm_stage_deadline(budget);
    }

    /// True once the current stage's deadline — or the token's job-level
    /// deadline — has passed.
    ///
    /// Stages call this between units of work (per net, per candidate, per
    /// LP iteration) and stop early when it trips — the cooperative half of
    /// the stage time budget.
    pub fn deadline_exceeded(&self) -> bool {
        self.cancel.deadline_exceeded()
    }

    /// True once the flow was explicitly cancelled (or a deterministic
    /// check trip fired).
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// True when the flow should stop for any reason — deadline (stage or
    /// job) or cancellation. The per-unit-of-work stop check every stage
    /// loop uses.
    pub fn interrupted(&self) -> bool {
        self.cancel.should_stop()
    }

    /// Fault-injection check for `site`.
    ///
    /// Counts the pass and, when an armed directive's window covers it,
    /// manifests the fault: returns [`RouterError::FaultInjected`] for
    /// [`FaultKind::Error`] directives, panics for [`FaultKind::Panic`]
    /// ones (the stage guards convert that panic into a recovered outcome).
    pub fn check(&self, site: FaultSite) -> Result<(), RouterError> {
        let Some(d) = self.plan.directive(site) else {
            return Ok(());
        };
        let n = self.hits[site.index()].fetch_add(1, Ordering::Relaxed);
        if n >= d.skip && n - d.skip < d.fires {
            self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
            match d.kind {
                FaultKind::Error => return Err(RouterError::FaultInjected { site }),
                FaultKind::Panic => panic!("injected fault at {}", site.as_str()),
            }
        }
        Ok(())
    }

    /// Sites that fired so far, with counts.
    pub fn faults_fired(&self) -> Vec<(FaultSite, u32)> {
        FaultSite::ALL
            .into_iter()
            .filter_map(|s| {
                let n = self.fired[s.index()].load(Ordering::Relaxed);
                (n > 0).then_some((s, n))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Stage guard
// ---------------------------------------------------------------------------

/// Runs one stage under a panic guard and the context's deadline.
///
/// Returns the stage's value (if it produced one) and the outcome to
/// record. On panic or error the caller is responsible for restoring any
/// state the stage may have half-mutated (flow snapshots the layout around
/// mutating stages).
pub fn guard_stage<T>(
    stage: Stage,
    ctx: &FlowCtx,
    budget: Option<Duration>,
    f: impl FnOnce() -> Result<T, RouterError>,
) -> (Option<T>, StageOutcome) {
    ctx.begin_stage(budget);
    let result = catch_unwind(AssertUnwindSafe(f));
    // Cancellation outranks a deadline: a cancelled flow often also blows
    // its stage budget, and the caller cares that it was *asked* to stop.
    let cancelled = ctx.cancelled();
    let timed_out = ctx.deadline_exceeded();
    ctx.begin_stage(None);
    match result {
        Ok(Ok(v)) if cancelled => (Some(v), StageOutcome::Cancelled),
        Ok(Ok(v)) if timed_out => (Some(v), StageOutcome::TimedOut),
        Ok(Ok(v)) => (Some(v), StageOutcome::Ok),
        Ok(Err(e)) => (None, StageOutcome::Recovered(e)),
        Err(payload) => (
            None,
            StageOutcome::Recovered(RouterError::Panic {
                stage,
                message: panic_message(payload.as_ref()),
            }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::parse(s.as_str()), Some(s));
        }
        assert_eq!(FaultSite::parse("no.such.site"), None);
    }

    #[test]
    fn fault_window_counts_deterministically() {
        let plan = FaultPlan::none().with(FaultDirective {
            site: FaultSite::LpFactorize,
            kind: FaultKind::Error,
            skip: 2,
            fires: 2,
        });
        let ctx = FlowCtx::new(plan);
        assert!(ctx.check(FaultSite::LpFactorize).is_ok()); // pass 0
        assert!(ctx.check(FaultSite::LpFactorize).is_ok()); // pass 1
        assert!(ctx.check(FaultSite::LpFactorize).is_err()); // pass 2 fires
        assert!(ctx.check(FaultSite::LpFactorize).is_err()); // pass 3 fires
        assert!(ctx.check(FaultSite::LpFactorize).is_ok()); // window over
        // Unarmed sites never fire.
        assert!(ctx.check(FaultSite::AstarExpand).is_ok());
        assert_eq!(ctx.faults_fired(), vec![(FaultSite::LpFactorize, 2)]);
    }

    #[test]
    fn guard_catches_panics() {
        let ctx = FlowCtx::default();
        let (v, outcome) = guard_stage::<()>(Stage::Sequential, &ctx, None, || {
            panic!("boom {}", 42)
        });
        assert!(v.is_none());
        match outcome {
            StageOutcome::Recovered(RouterError::Panic { stage, message }) => {
                assert_eq!(stage, Stage::Sequential);
                assert_eq!(message, "boom 42");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn guard_passes_values_and_errors() {
        let ctx = FlowCtx::default();
        let (v, outcome) = guard_stage(Stage::Assign, &ctx, None, || Ok(7));
        assert_eq!(v, Some(7));
        assert!(outcome.is_ok());
        let (v, outcome) = guard_stage::<()>(Stage::Assign, &ctx, None, || {
            Err(RouterError::Assign("bad circle".into()))
        });
        assert!(v.is_none());
        assert_eq!(
            outcome,
            StageOutcome::Recovered(RouterError::Assign("bad circle".into()))
        );
    }

    #[test]
    fn deadline_trips_and_clears() {
        let ctx = FlowCtx::default();
        assert!(!ctx.deadline_exceeded());
        ctx.begin_stage(Some(Duration::ZERO));
        assert!(ctx.deadline_exceeded());
        ctx.begin_stage(None);
        assert!(!ctx.deadline_exceeded());
        ctx.begin_stage(Some(Duration::from_secs(3600)));
        assert!(!ctx.deadline_exceeded());
    }

    #[test]
    fn guard_marks_timeout_but_keeps_value() {
        let ctx = FlowCtx::default();
        let (v, outcome) =
            guard_stage(Stage::Concurrent, &ctx, Some(Duration::ZERO), || Ok("partial"));
        assert_eq!(v, Some("partial"));
        assert_eq!(outcome, StageOutcome::TimedOut);
    }
}
