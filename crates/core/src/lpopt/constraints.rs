//! Constraint Generation (§III-E2): interactive spacing constraints.
//!
//! For every route point (and movable via center), the nearest blockage on
//! each side of each of the four line orientations contributes one linear
//! separation constraint — the paper's "nearest blockage in each of the
//! cardinal and intercardinal directions". Blockages are foreign wire
//! segments (whose line offset `c` is itself a variable), foreign vias
//! (variables when flexible), and fixed shapes (pads, obstacles).
//!
//! Each requirement is clamped to the separation the initial layout
//! already achieves, so the initial layout is always feasible and the LP
//! can only improve it.

use super::items::{alg_scale, point_expr, ItemModel, LinExpr, Vars};
use info_geom::{Octagon, Orient4, Point};
use info_lp::{Cmp, Model};
use info_model::{NetId, Package, WireLayer};

/// Safety margin (nm, algebraic) absorbing lattice snapping after solve.
const SNAP_MARGIN: f64 = 4.0;

/// One side of a separation: the item expression compared against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExprRef {
    /// `a·x + b·y` of a route point.
    Point(usize),
    /// The `c` variable of a segment's line.
    SegLine(usize),
    /// `a·x + b·y` of a via center.
    Via(usize),
    /// A fixed bound (obstacle/pad face, algebraic).
    Const(f64),
}

/// A linear separation constraint `sign · (expr(a) − expr(b)) ≥ required`.
#[derive(Debug, Clone, PartialEq)]
pub struct Separation {
    /// Orientation of the comparison (defines the `a`, `b` coefficients).
    pub orient: Orient4,
    /// `+1.0` when `a` must stay on the positive side of `b`.
    pub sign: f64,
    /// Movable item.
    pub a: ExprRef,
    /// The blockage.
    pub b: ExprRef,
    /// Required algebraic separation (≥ 0).
    pub required: f64,
}

impl Separation {
    /// Emits the constraint into the model.
    pub fn add_to(&self, model: &mut Model, vars: &Vars, _items: &ItemModel) {
        let expr_of = |r: ExprRef| -> LinExpr {
            match r {
                ExprRef::Point(i) => point_expr(vars.point_xy[i], self.orient),
                ExprRef::Via(i) => point_expr(vars.via_xy[i], self.orient),
                ExprRef::SegLine(i) => {
                    let mut e = LinExpr::default();
                    e.push(vars.seg_c[i], 1.0);
                    e
                }
                ExprRef::Const(c) => LinExpr { terms: Vec::new(), constant: c },
            }
        };
        let mut e = expr_of(self.a);
        e.sub(&expr_of(self.b));
        // sign · e ≥ required
        let terms: Vec<_> = e.terms.iter().map(|&(v, c)| (v, c * self.sign)).collect();
        if terms.is_empty() {
            return; // both sides immovable
        }
        model.add_row(terms, Cmp::Ge, self.required - self.sign * e.constant);
    }
}

/// `along` coordinate of a point for an orientation: position measured
/// *along* the line direction (used for span-overlap tests).
fn along(orient: Orient4, p: Point) -> i64 {
    match orient {
        Orient4::H => p.x,
        Orient4::V => p.y,
        Orient4::D45 => p.sum(),  // lines x−y=c run along +x+y
        Orient4::D135 => p.diff(), // lines x+y=c run along +x−y
    }
}

/// `a·x + b·y` of a point for an orientation.
fn across(orient: Orient4, p: Point) -> i64 {
    let (a, b) = orient.coeffs();
    a * p.x + b * p.y
}

/// The blockage interval of an octagon in an orientation:
/// `(across_min, across_max, along_min, along_max)`.
fn shape_interval(orient: Orient4, o: &Octagon) -> (i64, i64, i64, i64) {
    let (xmin, xmax, ymin, ymax, smin, smax, dmin, dmax) = o.bounds();
    match orient {
        Orient4::H => (ymin, ymax, xmin, xmax),
        Orient4::V => (xmin, xmax, ymin, ymax),
        Orient4::D45 => (dmin, dmax, smin, smax),
        Orient4::D135 => (smin, smax, dmin, dmax),
    }
}

/// A candidate blockage for one (orientation, side) bucket.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    expr: ExprRef,
    /// Initial algebraic gap (positive).
    initial: f64,
    /// Rule requirement (algebraic).
    rule: f64,
}

/// Keeps the nearest candidate per (orientation, side).
#[derive(Debug, Default)]
struct Buckets {
    best: [Option<Candidate>; 8],
}

impl Buckets {
    fn offer(&mut self, orient: Orient4, side: f64, cand: Candidate) {
        let oi = match orient {
            Orient4::H => 0,
            Orient4::V => 1,
            Orient4::D45 => 2,
            Orient4::D135 => 3,
        };
        let k = oi * 2 + if side > 0.0 { 0 } else { 1 };
        if self.best[k].is_none_or(|b| cand.initial < b.initial) {
            self.best[k] = Some(cand);
        }
    }
}

/// Fixed blockage shapes per layer: pads and obstacles with their owner.
fn fixed_shapes(package: &Package, layer: WireLayer) -> Vec<(Option<NetId>, Octagon)> {
    let mut pad_nets = vec![None; package.pads().len()];
    for n in package.nets() {
        pad_nets[n.a.index()] = Some(n.id);
        pad_nets[n.b.index()] = Some(n.id);
    }
    let mut out = Vec::new();
    for p in package.pads() {
        if package.pad_layer(p.id) == layer {
            out.push((pad_nets[p.id.index()], p.shape()));
        }
    }
    for o in package.obstacles() {
        if o.layer == layer {
            out.push((None, Octagon::from_rect(o.rect)));
        }
    }
    out
}

/// Generates the interactive constraint set for the whole item model.
pub fn generate(package: &Package, items: &ItemModel) -> Vec<Separation> {
    generate_threaded(package, items, 1)
}

/// [`generate`] with the per-layer loop run on the work-stealing pool.
/// Each layer's constraints are pure in `(package, items)` and the
/// per-layer lists are flattened in layer order, so the output is
/// byte-identical to the serial build at every thread count.
pub fn generate_threaded(
    package: &Package,
    items: &ItemModel,
    threads: usize,
) -> Vec<Separation> {
    let rules = package.rules();
    let s = rules.min_spacing as f64;
    let sw = rules.wire_width as f64;
    let sv = rules.via_width as f64;
    // Pairing radius: two trust regions plus the largest rule gap.
    let radius = 2.0 * items.move_bound + s + sw + sv;

    let layer_ids: Vec<usize> = (0..package.wire_layer_count()).collect();
    let per_layer: Vec<Vec<Separation>> = crate::pool::parallel_map(&layer_ids, threads, |_, &li| {
        let mut out = Vec::new();
        let layer = WireLayer(li as u8);
        let shapes = fixed_shapes(package, layer);
        let seg_ids: Vec<usize> =
            (0..items.segs.len()).filter(|&i| items.segs[i].layer == layer).collect();
        let via_ids: Vec<usize> =
            (0..items.vias.len()).filter(|&i| items.vias[i].top <= layer && items.vias[i].bottom >= layer).collect();

        // --- Point constraints.
        for (pi, p) in items.points.iter().enumerate() {
            if p.layer != layer {
                continue;
            }
            let mut buckets = Buckets::default();
            // vs foreign segments.
            for &si in &seg_ids {
                let seg = &items.segs[si];
                if seg.net == p.net {
                    continue;
                }
                let o = seg.orient;
                let scale = alg_scale(o);
                let c0 = across(o, seg.initial.a) as f64;
                let e0 = across(o, p.initial) as f64 - c0;
                if e0 == 0.0 || e0.abs() > radius * scale {
                    continue;
                }
                // Span check with slack for movement along the line.
                let (lo, hi) = {
                    let a1 = along(o, seg.initial.a);
                    let a2 = along(o, seg.initial.b);
                    (a1.min(a2), a1.max(a2))
                };
                let ap = along(o, p.initial);
                let slack = (2.0 * items.move_bound * scale) as i64;
                if ap < lo - slack || ap > hi + slack {
                    continue;
                }
                buckets.offer(
                    o,
                    e0.signum(),
                    Candidate {
                        expr: ExprRef::SegLine(si),
                        initial: e0.abs(),
                        rule: (s + sw) * scale,
                    },
                );
            }
            // vs foreign vias.
            for &vi in &via_ids {
                let via = &items.vias[vi];
                if via.net == p.net {
                    continue;
                }
                for o in Orient4::ALL {
                    let scale = alg_scale(o);
                    let e0 = (across(o, p.initial) - across(o, via.initial)) as f64;
                    if e0 == 0.0 || e0.abs() > radius * scale {
                        continue;
                    }
                    buckets.offer(
                        o,
                        e0.signum(),
                        Candidate {
                            expr: ExprRef::Via(vi),
                            initial: e0.abs(),
                            rule: (s + sw / 2.0 + sv / 2.0) * scale,
                        },
                    );
                }
            }
            // vs fixed shapes.
            for (owner, shape) in &shapes {
                if *owner == Some(p.net) {
                    continue;
                }
                for o in Orient4::ALL {
                    let scale = alg_scale(o);
                    let (amin, amax, lmin, lmax) = shape_interval(o, shape);
                    let ap = along(o, p.initial);
                    let slack = (2.0 * items.move_bound * scale) as i64;
                    if ap < lmin - slack || ap > lmax + slack {
                        continue;
                    }
                    let e = across(o, p.initial);
                    let (bound, side) = if e >= amax {
                        (amax as f64, 1.0)
                    } else if e <= amin {
                        (amin as f64, -1.0)
                    } else {
                        continue; // point inside the shape's band: cannot separate along o
                    };
                    let e0 = (e as f64 - bound).abs();
                    if e0 > radius * scale {
                        continue;
                    }
                    buckets.offer(
                        o,
                        side,
                        Candidate {
                            expr: ExprRef::Const(bound),
                            initial: e0,
                            rule: (s + sw / 2.0) * scale,
                        },
                    );
                }
            }
            for k in 0..8 {
                if let Some(c) = buckets.best[k] {
                    let orient = [Orient4::H, Orient4::V, Orient4::D45, Orient4::D135][k / 2];
                    let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                    let required = (c.rule + SNAP_MARGIN).min(c.initial);
                    out.push(Separation {
                        orient,
                        sign,
                        a: ExprRef::Point(pi),
                        b: c.expr,
                        required,
                    });
                }
            }
        }

        // --- Segment-vs-segment (parallel) and segment-vs-shape, so long
        // straight wires cannot slide into things their endpoints miss.
        for (idx, &si) in seg_ids.iter().enumerate() {
            let seg = &items.segs[si];
            let o = seg.orient;
            let scale = alg_scale(o);
            let c_self = across(o, seg.initial.a) as f64;
            let (lo, hi) = {
                let a1 = along(o, seg.initial.a);
                let a2 = along(o, seg.initial.b);
                (a1.min(a2), a1.max(a2))
            };
            let slack = (2.0 * items.move_bound * scale) as i64;
            let mut nearest: [Option<Candidate>; 2] = [None, None];
            for &sj in seg_ids.iter().skip(idx + 1) {
                let other = &items.segs[sj];
                if other.net == seg.net || other.orient != o {
                    continue;
                }
                let c_other = across(o, other.initial.a) as f64;
                let gap = c_self - c_other;
                if gap == 0.0 || gap.abs() > radius * scale {
                    continue;
                }
                let (olo, ohi) = {
                    let a1 = along(o, other.initial.a);
                    let a2 = along(o, other.initial.b);
                    (a1.min(a2), a1.max(a2))
                };
                if ohi < lo - slack || olo > hi + slack {
                    continue;
                }
                let k = if gap > 0.0 { 0 } else { 1 };
                let cand = Candidate {
                    expr: ExprRef::SegLine(sj),
                    initial: gap.abs(),
                    rule: (s + sw) * scale,
                };
                if nearest[k].is_none_or(|b| cand.initial < b.initial) {
                    nearest[k] = Some(cand);
                }
            }
            for (owner, shape) in &shapes {
                if *owner == Some(seg.net) {
                    continue;
                }
                let (amin, amax, lmin, lmax) = shape_interval(o, shape);
                if lmax < lo - slack || lmin > hi + slack {
                    continue;
                }
                let e = c_self;
                let (bound, k) = if e >= amax as f64 {
                    (amax as f64, 0)
                } else if e <= amin as f64 {
                    (amin as f64, 1)
                } else {
                    continue;
                };
                let gap = (e - bound).abs();
                if gap > radius * scale {
                    continue;
                }
                let cand = Candidate {
                    expr: ExprRef::Const(bound),
                    initial: gap,
                    rule: (s + sw / 2.0) * scale,
                };
                if nearest[k].is_none_or(|b| cand.initial < b.initial) {
                    nearest[k] = Some(cand);
                }
            }
            for (k, cand) in nearest.iter().enumerate() {
                if let Some(c) = cand {
                    out.push(Separation {
                        orient: o,
                        sign: if k == 0 { 1.0 } else { -1.0 },
                        a: ExprRef::SegLine(si),
                        b: c.expr,
                        required: (c.rule + SNAP_MARGIN).min(c.initial),
                    });
                }
            }
        }

        // --- Movable vias vs everything (their own adjacent wires are
        // same-net and exempt).
        for &vi in &via_ids {
            let via = &items.vias[vi];
            if !via.movable {
                continue;
            }
            let mut buckets = Buckets::default();
            for &vj in &via_ids {
                if vj == vi || items.vias[vj].net == via.net {
                    continue;
                }
                for o in Orient4::ALL {
                    let scale = alg_scale(o);
                    let e0 = (across(o, via.initial) - across(o, items.vias[vj].initial)) as f64;
                    if e0 == 0.0 || e0.abs() > radius * scale {
                        continue;
                    }
                    buckets.offer(
                        o,
                        e0.signum(),
                        Candidate {
                            expr: ExprRef::Via(vj),
                            initial: e0.abs(),
                            rule: (s + sv) * scale,
                        },
                    );
                }
            }
            for &si in &seg_ids {
                let seg = &items.segs[si];
                if seg.net == via.net {
                    continue;
                }
                let o = seg.orient;
                let scale = alg_scale(o);
                let e0 = across(o, via.initial) as f64 - across(o, seg.initial.a) as f64;
                if e0 == 0.0 || e0.abs() > radius * scale {
                    continue;
                }
                let ap = along(o, via.initial);
                let (lo, hi) = {
                    let a1 = along(o, seg.initial.a);
                    let a2 = along(o, seg.initial.b);
                    (a1.min(a2), a1.max(a2))
                };
                let slack = (2.0 * items.move_bound * scale) as i64;
                if ap < lo - slack || ap > hi + slack {
                    continue;
                }
                buckets.offer(
                    o,
                    e0.signum(),
                    Candidate {
                        expr: ExprRef::SegLine(si),
                        initial: e0.abs(),
                        rule: (s + sw / 2.0 + sv / 2.0) * scale,
                    },
                );
            }
            for (owner, shape) in &shapes {
                if *owner == Some(via.net) {
                    continue;
                }
                for o in Orient4::ALL {
                    let scale = alg_scale(o);
                    let (amin, amax, lmin, lmax) = shape_interval(o, shape);
                    let ap = along(o, via.initial);
                    let slack = (2.0 * items.move_bound * scale) as i64;
                    if ap < lmin - slack || ap > lmax + slack {
                        continue;
                    }
                    let e = across(o, via.initial);
                    let (bound, side) = if e >= amax {
                        (amax as f64, 1.0)
                    } else if e <= amin {
                        (amin as f64, -1.0)
                    } else {
                        continue;
                    };
                    let e0 = (e as f64 - bound).abs();
                    if e0 > radius * scale {
                        continue;
                    }
                    buckets.offer(
                        o,
                        side,
                        Candidate {
                            expr: ExprRef::Const(bound),
                            initial: e0,
                            rule: (s + sv / 2.0) * scale,
                        },
                    );
                }
            }
            for k in 0..8 {
                if let Some(c) = buckets.best[k] {
                    let orient = [Orient4::H, Orient4::V, Orient4::D45, Orient4::D135][k / 2];
                    let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                    out.push(Separation {
                        orient,
                        sign,
                        a: ExprRef::Via(vi),
                        b: c.expr,
                        required: (c.rule + SNAP_MARGIN).min(c.initial),
                    });
                }
            }
        }
        out
    });
    per_layer.into_iter().flatten().collect()
}

/// Constraints repairing one crossing found after a solve: each endpoint of
/// either segment is pinned to its *initial* side of the other segment's
/// line (§III-E4).
pub fn repair_crossing(items: &ItemModel, sa: usize, sb: usize) -> Vec<Separation> {
    let mut out = Vec::new();
    let rule_gap = SNAP_MARGIN; // keep strictly on the correct side
    for (s_pts, s_line) in [(sa, sb), (sb, sa)] {
        let line_seg = &items.segs[s_line];
        let o = line_seg.orient;
        let c0 = across(o, line_seg.initial.a) as f64;
        for pt in [items.segs[s_pts].p0, items.segs[s_pts].p1] {
            let e0 = across(o, items.points[pt].initial) as f64 - c0;
            if e0 == 0.0 {
                continue;
            }
            out.push(Separation {
                orient: o,
                sign: e0.signum(),
                a: ExprRef::Point(pt),
                b: ExprRef::SegLine(s_line),
                required: rule_gap.min(e0.abs()),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::super::items::extract;
    use info_geom::{Polyline, Rect};
    use info_model::{DesignRules, Layout, PackageBuilder};

    fn two_wire_layout() -> (Package, Layout) {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let c2 = b.add_chip(Rect::new(Point::new(700_000, 100_000), Point::new(950_000, 400_000)));
        let a1 = b.add_io_pad(c1, Point::new(250_000, 240_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(750_000, 240_000)).unwrap();
        let b1 = b.add_io_pad(c1, Point::new(250_000, 280_000)).unwrap();
        let b2 = b.add_io_pad(c2, Point::new(750_000, 280_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(b1, b2).unwrap();
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![Point::new(250_000, 240_000), Point::new(750_000, 240_000)]),
        );
        layout.add_route(
            NetId(1),
            WireLayer(0),
            Polyline::new(vec![Point::new(250_000, 280_000), Point::new(750_000, 280_000)]),
        );
        (pkg, layout)
    }

    #[test]
    fn parallel_wires_generate_mutual_constraints() {
        let (pkg, layout) = two_wire_layout();
        let items = extract(&pkg, &layout).unwrap();
        let cons = generate(&pkg, &items);
        // Every wire segment is separated from its nearest blockage on the
        // H orientation: here the *foreign pads* (36 µm) are nearer than
        // the foreign wire line (40 µm), so Const bounds win the buckets —
        // exactly the paper's nearest-blockage-per-direction rule.
        let seg_h = cons
            .iter()
            .filter(|c| matches!(c.a, ExprRef::SegLine(_)) && c.orient == Orient4::H)
            .count();
        assert!(seg_h >= 2, "expected H-separations on both wires, got {cons:#?}");
        let pt_cons = cons
            .iter()
            .filter(|c| matches!(c.a, ExprRef::Point(_)))
            .count();
        assert!(pt_cons >= 4);
        // When the wires are moved away from any pads, they must see each
        // other as SegLine-vs-SegLine.
        let mut far = Layout::new(&pkg);
        far.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![Point::new(400_000, 440_000), Point::new(600_000, 440_000)]),
        );
        far.add_route(
            NetId(1),
            WireLayer(0),
            Polyline::new(vec![Point::new(400_000, 460_000), Point::new(600_000, 460_000)]),
        );
        let items2 = extract(&pkg, &far).unwrap();
        let cons2 = generate(&pkg, &items2);
        let seg_seg = cons2
            .iter()
            .filter(|c| matches!(c.a, ExprRef::SegLine(_)) && matches!(c.b, ExprRef::SegLine(_)))
            .count();
        assert!(seg_seg >= 1, "isolated parallel wires must see each other: {cons2:#?}");
        // All requirements are feasible initially (≤ initial separation of
        // 40 µm... algebraically the wires sit 40k apart; rule is 4k + 4).
        for c in &cons {
            assert!(c.required >= 0.0);
            assert!(c.required <= 40_000.0 + 1.0);
        }
    }

    #[test]
    fn requirements_clamped_when_initially_tight() {
        // Wires only 3 µm apart (violating the 4 µm rule): the constraint
        // must clamp to 3 µm so the LP stays feasible.
        let (pkg, _) = two_wire_layout();
        let mut layout = Layout::new(&pkg);
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![Point::new(250_000, 240_000), Point::new(750_000, 240_000)]),
        );
        layout.add_route(
            NetId(1),
            WireLayer(0),
            Polyline::new(vec![Point::new(300_000, 243_000), Point::new(700_000, 243_000)]),
        );
        let items = extract(&pkg, &layout).unwrap();
        let cons = generate(&pkg, &items);
        let tight: Vec<_> = cons
            .iter()
            .filter(|c| {
                matches!((c.a, c.b), (ExprRef::SegLine(_), ExprRef::SegLine(_)))
                    && c.orient == Orient4::H
            })
            .collect();
        assert!(!tight.is_empty());
        for c in tight {
            assert!(c.required <= 3_000.0, "clamped to initial: {c:?}");
        }
    }

    #[test]
    fn repair_constraints_pin_initial_sides() {
        let (pkg, layout) = two_wire_layout();
        let items = extract(&pkg, &layout).unwrap();
        // Pretend segments 0 and 1 (the two wires) crossed.
        let fixes = repair_crossing(&items, 0, 1);
        assert_eq!(fixes.len(), 4, "two endpoints on each side");
        for f in &fixes {
            // Net 0 is below net 1 initially: its points carry sign −1
            // against net 1's line and vice versa.
            assert!(f.required >= 0.0);
        }
    }
}
