//! Applying an LP solution back to the layout, with lattice snapping.
//!
//! The solved coordinates are floating point; geometry must return to the
//! integer nanometer lattice without breaking the X-architecture. Points
//! are therefore *reconstructed* rather than rounded: each segment line's
//! `c` is rounded (terminal segments take their `c` from the anchored
//! endpoint exactly), and each interior joint is re-derived as the integer
//! intersection of its two adjacent lines, adjusting one `c` by a lattice
//! unit when the two diagonal families disagree in parity.

use super::items::{ItemModel, PointAnchor, RouteItem, SolvedPositions};
use info_geom::{Coord, Orient4, Point, Polyline, XLine};
use info_model::Layout;
use info_tile::realize::xarch_connect;

/// Finds proper crossings between segments of different nets on the same
/// layer, using the solved (floating) positions. Returns segment item
/// index pairs.
pub fn find_crossings(items: &ItemModel, solved: &SolvedPositions) -> Vec<(usize, usize)> {
    let pos = |pt: usize| solved.points[pt];
    let mut out = Vec::new();
    for i in 0..items.segs.len() {
        let a = &items.segs[i];
        for j in (i + 1)..items.segs.len() {
            let b = &items.segs[j];
            if a.net == b.net || a.layer != b.layer {
                continue;
            }
            if segments_cross_f64(pos(a.p0), pos(a.p1), pos(b.p0), pos(b.p1)) {
                out.push((i, j));
            }
        }
    }
    out
}

fn cross(o: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
}

/// Proper (interior) crossing test with a small tolerance: touching at
/// less than a nanometer does not count.
fn segments_cross_f64(p1: (f64, f64), p2: (f64, f64), p3: (f64, f64), p4: (f64, f64)) -> bool {
    const EPS: f64 = 1.0; // nm² scale after normalization is fine here
    let d1 = cross(p3, p4, p1);
    let d2 = cross(p3, p4, p2);
    let d3 = cross(p1, p2, p3);
    let d4 = cross(p1, p2, p4);
    d1 * d2 < -EPS && d3 * d4 < -EPS
}

fn across(orient: Orient4, p: Point) -> Coord {
    let (a, b) = orient.coeffs();
    a * p.x + b * p.y
}

/// Reconstructs one route's integer points from the solution.
fn reconstruct_route(
    items: &ItemModel,
    solved: &SolvedPositions,
    route: &RouteItem,
    via_pos: &[Point],
) -> Option<Vec<Point>> {
    let anchor_pos = |pt: usize| -> Point {
        let p = &items.points[pt];
        match p.anchor {
            PointAnchor::Fixed => p.initial,
            PointAnchor::Via(vi) => via_pos[vi],
            PointAnchor::Free => {
                let (x, y) = solved.points[pt];
                Point::new(x.round() as Coord, y.round() as Coord)
            }
        }
    };
    let first_pt = *route.point_items.first()?;
    let last_pt = *route.point_items.last()?;
    let p_first = anchor_pos(first_pt);
    let p_last = anchor_pos(last_pt);
    let nsegs = route.seg_items.len();
    if nsegs == 0 {
        return None;
    }
    if nsegs == 1 {
        // Single segment: bridge the two anchors with any legal pattern
        // (identical to the old segment when they stayed collinear).
        if p_first == p_last {
            return None;
        }
        let (pts, _) = xarch_connect(p_first, p_last, None);
        let mut all = vec![p_first];
        all.extend(pts);
        return Some(all);
    }

    // Round interior cs; terminal cs are forced by the anchors.
    let mut c: Vec<Coord> = route
        .seg_items
        .iter()
        .map(|&si| solved.segs[si].round() as Coord)
        .collect();
    let orients: Vec<Orient4> = route.seg_items.iter().map(|&si| items.segs[si].orient).collect();
    c[0] = across(orients[0], p_first);
    c[nsegs - 1] = across(orients[nsegs - 1], p_last);

    // Interior joints from consecutive line intersections, with parity
    // adjustment retries.
    'retry: for _attempt in 0..6 {
        let mut pts = vec![p_first];
        for k in 1..route.point_items.len() - 1 {
            let l1 = XLine::new(orients[k - 1], c[k - 1]);
            let l2 = XLine::new(orients[k], c[k]);
            if orients[k - 1] == orients[k] {
                return None; // consecutive collinear lines cannot intersect
            }
            match l1.crossing(l2) {
                Some(p) => pts.push(p),
                None => {
                    // Off-lattice (diagonal parity): adjust a non-forced c.
                    if k < nsegs - 1 {
                        c[k] += 1;
                    } else if k - 1 > 0 {
                        c[k - 1] += 1;
                    } else {
                        return None;
                    }
                    continue 'retry;
                }
            }
        }
        pts.push(p_last);
        return Some(pts);
    }
    None
}

/// Fallback reconstruction: chain legal X-architecture connections through
/// the rounded solved joints (dropping near-coincident ones). Slightly
/// less faithful to the LP's exact lines but always turn-rule legal.
fn fallback_path(
    items: &ItemModel,
    solved: &SolvedPositions,
    route: &RouteItem,
    via_pos: &[Point],
) -> Option<Vec<Point>> {
    let anchor_pos = |pt: usize| -> Point {
        let p = &items.points[pt];
        match p.anchor {
            PointAnchor::Fixed => p.initial,
            PointAnchor::Via(vi) => via_pos[vi],
            PointAnchor::Free => {
                let (x, y) = solved.points[pt];
                Point::new(x.round() as Coord, y.round() as Coord)
            }
        }
    };
    let n = route.point_items.len();
    if n < 2 {
        return None;
    }
    let mut waypoints: Vec<Point> = Vec::with_capacity(n);
    waypoints.push(anchor_pos(route.point_items[0]));
    for &pt in &route.point_items[1..n - 1] {
        let p = anchor_pos(pt);
        let last = *waypoints.last().expect("nonempty");
        if (p.x - last.x).abs().max((p.y - last.y).abs()) > 3 {
            waypoints.push(p);
        }
    }
    let goal = anchor_pos(route.point_items[n - 1]);
    if let Some(&last) = waypoints.last() {
        if last == goal && waypoints.len() == 1 {
            return None;
        }
    }
    waypoints.push(goal);

    let mut pts = vec![waypoints[0]];
    let mut dir = None;
    for &wp in &waypoints[1..] {
        let from = *pts.last().expect("nonempty");
        if wp == from {
            continue;
        }
        let (mut step, d) = xarch_connect(from, wp, dir);
        pts.append(&mut step);
        dir = d;
    }
    (pts.len() >= 2).then_some(pts)
}

/// Applies the solution to the layout. Returns `false` (layout untouched)
/// if any route fails reconstruction or the snapped geometry is invalid.
pub fn apply(items: &ItemModel, solved: &SolvedPositions, layout: &mut Layout) -> bool {
    // Vias first: everything anchors to their rounded centers.
    let via_pos: Vec<Point> = items
        .vias
        .iter()
        .enumerate()
        .map(|(vi, v)| {
            if v.movable {
                let (x, y) = solved.vias[vi];
                Point::new(x.round() as Coord, y.round() as Coord)
            } else {
                v.initial
            }
        })
        .collect();

    let mut new_paths: Vec<(info_model::RouteId, Polyline)> = Vec::new();
    let mut drop_routes: Vec<info_model::RouteId> = Vec::new();
    for route in &items.routes {
        // A route whose anchors coincide has been optimized away entirely
        // (its via now sits on the pad): drop it instead of keeping a
        // degenerate polyline.
        let anchor_pos = |pt: usize| -> Point {
            let p = &items.points[pt];
            match p.anchor {
                PointAnchor::Fixed => p.initial,
                PointAnchor::Via(vi) => via_pos[vi],
                PointAnchor::Free => {
                    let (x, y) = solved.points[pt];
                    Point::new(x.round() as Coord, y.round() as Coord)
                }
            }
        };
        let n = route.point_items.len();
        if n >= 2 && anchor_pos(route.point_items[0]) == anchor_pos(route.point_items[n - 1]) {
            drop_routes.push(route.id);
            continue;
        }
        let exact = reconstruct_route(items, solved, route, &via_pos).and_then(|pts| {
            let mut pl = Polyline::new(pts);
            pl.simplify();
            (pl.len() >= 2 && pl.validate().is_ok()).then_some(pl)
        });
        let pl = match exact {
            Some(pl) => pl,
            None => {
                let Some(pts) = fallback_path(items, solved, route, &via_pos) else {
                    return false;
                };
                let mut pl = Polyline::new(pts);
                pl.simplify();
                if pl.len() < 2 || pl.validate().is_err() {
                    return false;
                }
                pl
            }
        };
        new_paths.push((route.id, pl));
    }

    // Snapped geometry must remain planar (crossings were repaired in f64;
    // re-check on the lattice before committing). Look up route metadata by
    // id (dropped routes are absent from `new_paths`).
    let meta = |id: info_model::RouteId| {
        items
            .routes
            .iter()
            .find(|r| r.id == id)
            .map(|r| (r.layer, r.net))
            .expect("path belongs to the item model")
    };
    for (i, (ra, pa)) in new_paths.iter().enumerate() {
        let (layer_a, net_a) = meta(*ra);
        for (rb, pb) in new_paths.iter().skip(i + 1) {
            let (layer_b, net_b) = meta(*rb);
            if layer_b == layer_a && net_b != net_a && pa.crosses(pb) {
                return false;
            }
        }
    }

    // Commit.
    for id in drop_routes {
        layout.remove_route(id);
    }
    for r in layout.routes_mut() {
        if let Some((_, pl)) = new_paths.iter().find(|(id, _)| *id == r.id) {
            r.path = pl.clone();
        }
    }
    for v in layout.vias_mut() {
        if let Some(item_idx) = items.vias.iter().position(|iv| iv.id == v.id) {
            v.center = via_pos[item_idx];
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_crossing_detection() {
        assert!(segments_cross_f64(
            (0.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (10.0, 0.0)
        ));
        // Shared endpoint: not proper.
        assert!(!segments_cross_f64(
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0)
        ));
        // Parallel.
        assert!(!segments_cross_f64(
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 1.0),
            (10.0, 1.0)
        ));
    }
}
