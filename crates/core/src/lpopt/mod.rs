//! Stage 5 — LP-based layout optimization (§III-E).
//!
//! The layout is mapped to LP variables (`x`/`y` per movable point and via
//! center, `c` per wire segment line); fixed constraints tie via shapes and
//! terminal anchors, route constraints keep every point on its two
//! adjacent segment lines, and interactive constraints keep the minimum
//! spacing toward the nearest blockage on each side. The objective is the
//! total wirelength, which is linear because segment orientations and
//! directions are frozen at mapping time.
//!
//! Solving iterates: if the optimized layout contains a wire crossing that
//! the sparse constraint set failed to forbid, a constraint pinning the
//! initial relative order of the two segments is added and the LP is
//! re-solved (§III-E4). Convergence is guaranteed because each repaired
//! pair can never cross again and the pair count is finite; the iteration
//! cap defaults to the paper's observed bound of 50.
//!
//! Three engineering safeguards (documented deviations):
//!
//! - **Feasibility clamp**: each interactive constraint's required gap is
//!   clamped to the gap the *initial* layout achieves, so the initial
//!   layout is always LP-feasible and optimization can only improve it.
//! - **Trust region**: every variable may move at most a bounded distance
//!   from its initial value, which makes the nearest-blockage constraint
//!   set sufficient (far-apart items cannot teleport into collision).
//! - **Decomposition**: interactive constraints only couple nearby nets,
//!   so the LP splits into independent connected components solved
//!   separately; crossing repairs merge components when needed.

mod apply;
mod constraints;
mod items;

pub use constraints::{ExprRef as SepExprRef, Separation};
pub use items::{extract as extract_items, ItemModel, PointAnchor, SolvedPositions, Vars};

use crate::config::RouterConfig;
use crate::resilience::{FaultSite, FlowCtx, RouterError};
use constraints::ExprRef;
use info_lp::{Model, WarmBasis};
use info_model::{Layout, NetId, Package};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of the optimization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LpOptReport {
    /// Wirelength before, in nm.
    pub wirelength_before: f64,
    /// Wirelength after, in nm.
    pub wirelength_after: f64,
    /// Crossing-repair iterations performed (1 = no repair needed).
    pub iterations: usize,
    /// Whether optimization was applied (false = kept the initial layout).
    pub applied: bool,
    /// Solver failures encountered; each froze exactly one component at
    /// its pre-LP geometry while the rest kept optimizing.
    pub failures: Vec<RouterError>,
    /// Component visits that actually solved (over all iterations).
    pub components_solved: usize,
    /// Component visits skipped because the component was disjoint from
    /// the dirty set — untouched geometry an ECO pass never re-solves.
    pub components_skipped: usize,
    /// Sub-LP solves seeded by a cached final basis from a previous
    /// solve of the same subset ([`Model::solve_warm`] reuse).
    pub warm_basis_reuses: usize,
}

fn net_of(items: &ItemModel, e: ExprRef) -> Option<NetId> {
    match e {
        ExprRef::Point(i) => Some(items.points[i].net),
        ExprRef::SegLine(i) => Some(items.segs[i].net),
        ExprRef::Via(i) => Some(items.vias[i].net),
        ExprRef::Const(_) => None,
    }
}

struct NetDsu {
    ids: Vec<NetId>,
    index: BTreeMap<NetId, usize>,
    parent: Vec<usize>,
}

impl NetDsu {
    fn new(nets: BTreeSet<NetId>) -> Self {
        let ids: Vec<NetId> = nets.into_iter().collect();
        let index = ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let parent = (0..ids.len()).collect();
        NetDsu { ids, index, parent }
    }
    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
        }
        self.parent[i]
    }
    fn union(&mut self, a: NetId, b: NetId) {
        let (ia, ib) = (self.index[&a], self.index[&b]);
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
    fn components(&mut self) -> Vec<BTreeSet<NetId>> {
        let mut by_root: BTreeMap<usize, BTreeSet<NetId>> = BTreeMap::new();
        for i in 0..self.ids.len() {
            let r = self.find(i);
            by_root.entry(r).or_default().insert(self.ids[i]);
        }
        by_root.into_values().collect()
    }
}

/// Runs LP-based layout optimization in place.
///
/// On any LP failure within a component — a real solver error or an
/// injected `lp.factorize` fault — that component keeps its initial
/// geometry (recorded in the report's `failures`); the rest still
/// optimizes. A tripped stage budget stops iterating; the layout is only
/// applied if the positions reached so far are crossing-free.
pub fn optimize(
    package: &Package,
    layout: &mut Layout,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
) -> LpOptReport {
    optimize_seeded(package, layout, cfg, ctx, None)
}

/// [`optimize`] with an initial dirty set: components disjoint from
/// `seed` keep their current geometry without a solve. `None` treats
/// every component as dirty (the full-route behavior). The ECO path
/// seeds this with the nets whose geometry the delta re-route actually
/// changed, so the LP re-runs only on touched components.
pub fn optimize_seeded(
    package: &Package,
    layout: &mut Layout,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
    seed: Option<&BTreeSet<NetId>>,
) -> LpOptReport {
    let before: f64 = layout.routes().map(|r| r.length()).sum();
    let mut report = LpOptReport {
        wirelength_before: before,
        wirelength_after: before,
        iterations: 0,
        applied: false,
        failures: Vec::new(),
        components_solved: 0,
        components_skipped: 0,
        warm_basis_reuses: 0,
    };
    let Some(items) = items::extract(package, layout) else {
        return report;
    };
    if items.points.is_empty() {
        return report;
    }
    // Constraint generation is pure per layer, so it shares the
    // sequential stage's thread policy (and its work-stealing pool).
    let base =
        constraints::generate_threaded(package, &items, crate::sequential::effective_threads(cfg));

    // Net components from constraint coupling.
    let nets: BTreeSet<NetId> = items.routes.iter().map(|r| r.net).collect();
    let mut dsu = NetDsu::new(nets);
    for c in &base {
        if let (Some(a), Some(b)) = (net_of(&items, c.a), net_of(&items, c.b)) {
            if a != b {
                dsu.union(a, b);
            }
        }
    }

    // Global solved positions, initialized to the current layout.
    let mut solved = items::SolvedPositions {
        points: items
            .points
            .iter()
            .map(|p| (p.initial.x as f64, p.initial.y as f64))
            .collect(),
        vias: items
            .vias
            .iter()
            .map(|v| (v.initial.x as f64, v.initial.y as f64))
            .collect(),
        segs: items
            .segs
            .iter()
            .map(|s| {
                let (a, b) = s.orient.coeffs();
                (a * s.initial.a.x + b * s.initial.a.y) as f64
            })
            .collect(),
    };

    let mut extra: Vec<Separation> = Vec::new();
    let mut frozen: BTreeSet<NetId> = BTreeSet::new();
    let mut dirty: Option<BTreeSet<NetId>> = seed.cloned(); // None = all dirty
                                                            // Warm-start cache: final simplex basis per solved subset. The same
                                                            // subset re-solves with an identically-shaped model on every
                                                            // Gauss-Seidel sweep and on every crossing-repair iteration that
                                                            // leaves its constraint set unchanged (only `required` right-hand
                                                            // sides drift as neighbors move), so the previous basis usually
                                                            // prices out immediately. Shape changes are detected by the solver
                                                            // itself and fall back to a cold start, so the cache never needs
                                                            // invalidation for correctness.
    let mut warm: BTreeMap<BTreeSet<NetId>, WarmBasis> = BTreeMap::new();
    let max_iters = if cfg.lp_max_iterations > 0 {
        cfg.lp_max_iterations
    } else {
        2 * items.points.len() + items.vias.len() + 8
    };

    // Size threshold above which a component is optimized by block
    // coordinate descent (per-net sub-LPs, two sweeps) instead of one
    // monolithic LP. Each sub-LP fixes the other nets at their current
    // positions; every step is feasible and monotonically shortens the
    // wirelength, so quality approaches the joint optimum at a fraction
    // of the simplex iterations.
    const SWEEP_POINT_THRESHOLD: usize = 220;

    let comp_points = |comp: &BTreeSet<NetId>| -> usize {
        items
            .points
            .iter()
            .filter(|p| comp.contains(&p.net))
            .count()
    };

    for iter in 1..=max_iters {
        // Cooperative budget: stop iterating; the positions reached so far
        // are applied below only if they are crossing-free.
        if ctx.interrupted() {
            break;
        }
        report.iterations = iter;
        for comp in dsu.components() {
            if comp.iter().any(|n| frozen.contains(n)) {
                continue;
            }
            if let Some(d) = &dirty {
                if comp.is_disjoint(d) {
                    report.components_skipped += 1;
                    continue;
                }
            }
            report.components_solved += 1;
            let subsets: Vec<BTreeSet<NetId>> = if comp_points(&comp) > SWEEP_POINT_THRESHOLD {
                // Two Gauss-Seidel sweeps over the nets of the component.
                let one: Vec<BTreeSet<NetId>> = comp.iter().map(|&n| BTreeSet::from([n])).collect();
                let mut twice = one.clone();
                twice.extend(one);
                twice
            } else {
                vec![comp.clone()]
            };
            for subset in subsets {
                // Per-subset interrupt check: a big component's sweep list
                // can dwarf the outer iteration, and a cancelled job must
                // not wait for it. Positions solved so far are still only
                // applied below if crossing-free.
                if ctx.interrupted() {
                    break;
                }
                if warm.contains_key(&subset) {
                    report.warm_basis_reuses += 1;
                }
                if let Err(e) = solve_subset(
                    package,
                    &items,
                    &base,
                    &extra,
                    &subset,
                    &mut solved,
                    &mut warm,
                    ctx,
                ) {
                    // Solver failure: this component keeps its pre-LP
                    // geometry; everything else continues to optimize.
                    frozen.extend(comp.iter().copied());
                    reset_to_initial(&items, &comp, &mut solved);
                    report.failures.push(e);
                    break;
                }
            }
        }

        // Crossing repair across the whole layout.
        let crossings = apply::find_crossings(&items, &solved);
        if crossings.is_empty() {
            break;
        }
        let mut progressed = false;
        let mut now_dirty = BTreeSet::new();
        for (sa, sb) in crossings {
            let (na, nb) = (items.segs[sa].net, items.segs[sb].net);
            dsu.union(na, nb);
            now_dirty.insert(na);
            now_dirty.insert(nb);
            for c in constraints::repair_crossing(&items, sa, sb) {
                if !extra.contains(&c) {
                    extra.push(c);
                    progressed = true;
                }
            }
        }
        if !progressed {
            // The same crossing persists without new information: freeze
            // the offenders at their initial geometry.
            for n in &now_dirty {
                frozen.insert(*n);
            }
            for (pi, p) in items.points.iter().enumerate() {
                if now_dirty.contains(&p.net) {
                    solved.points[pi] = (p.initial.x as f64, p.initial.y as f64);
                }
            }
            for (si, s) in items.segs.iter().enumerate() {
                if now_dirty.contains(&s.net) {
                    let (a, b) = s.orient.coeffs();
                    solved.segs[si] = (a * s.initial.a.x + b * s.initial.a.y) as f64;
                }
            }
            for (vi, v) in items.vias.iter().enumerate() {
                if now_dirty.contains(&v.net) {
                    solved.vias[vi] = (v.initial.x as f64, v.initial.y as f64);
                }
            }
            if apply::find_crossings(&items, &solved).is_empty() {
                break;
            }
            return report;
        }
        dirty = Some(now_dirty);
    }

    if !apply::find_crossings(&items, &solved).is_empty() {
        return report;
    }
    // Apply with a safety net: the lattice snapping (and the xarch
    // fallback paths) can deviate slightly from the LP's exact lines, so
    // re-verify with the full DRC and revert if the violation count grew.
    let snapshot = layout.clone();
    let violations_before = info_model::drc::check(package, layout).violations().len();
    if apply::apply(&items, &solved, layout) {
        let violations_after = info_model::drc::check(package, layout).violations().len();
        let wl_after: f64 = layout.routes().map(|r| r.length()).sum();
        if violations_after > violations_before || wl_after > report.wirelength_before {
            *layout = snapshot;
            return report;
        }
        report.applied = true;
        report.wirelength_after = wl_after;
    }
    report
}

/// Evaluates an expression at the current solved positions.
fn eval_expr(
    _items: &ItemModel,
    solved: &items::SolvedPositions,
    e: ExprRef,
    orient: info_geom::Orient4,
) -> f64 {
    let (a, b) = orient.coeffs();
    match e {
        ExprRef::Point(i) => a as f64 * solved.points[i].0 + b as f64 * solved.points[i].1,
        ExprRef::Via(i) => a as f64 * solved.vias[i].0 + b as f64 * solved.vias[i].1,
        ExprRef::SegLine(i) => solved.segs[i],
        ExprRef::Const(v) => v,
    }
}

/// Resets the solved positions of a set of nets to the initial layout.
fn reset_to_initial(
    items: &ItemModel,
    nets: &BTreeSet<NetId>,
    solved: &mut items::SolvedPositions,
) {
    for (pi, p) in items.points.iter().enumerate() {
        if nets.contains(&p.net) {
            solved.points[pi] = (p.initial.x as f64, p.initial.y as f64);
        }
    }
    for (si, s) in items.segs.iter().enumerate() {
        if nets.contains(&s.net) {
            let (a, b) = s.orient.coeffs();
            solved.segs[si] = (a * s.initial.a.x + b * s.initial.a.y) as f64;
        }
    }
    for (vi, v) in items.vias.iter().enumerate() {
        if nets.contains(&v.net) {
            solved.vias[vi] = (v.initial.x as f64, v.initial.y as f64);
        }
    }
}

/// Builds and solves the LP restricted to `subset`, with all other nets
/// fixed at their current solved positions; writes the solution back into
/// `solved`. The subset's previous final basis (if cached in `warm`) seeds
/// the solve and the new one replaces it. Returns the typed solver error
/// on an LP failure.
#[allow(clippy::too_many_arguments)]
fn solve_subset(
    package: &Package,
    items: &ItemModel,
    base: &[Separation],
    extra: &[Separation],
    subset: &BTreeSet<NetId>,
    solved: &mut items::SolvedPositions,
    warm: &mut BTreeMap<BTreeSet<NetId>, WarmBasis>,
    ctx: &FlowCtx,
) -> Result<(), RouterError> {
    let (sub, pmap, smap, vmap) = items.filter_nets(subset);
    let mut model = Model::new();
    let vars = sub.build_variables(&mut model, package);
    sub.add_route_constraints(&mut model, &vars);
    for c in base.iter().chain(extra.iter()) {
        // A constant lhs would mean a malformed constraint; skip it rather
        // than poison the whole component.
        let Some(owner) = net_of(items, c.a) else {
            continue;
        };
        if !subset.contains(&owner) {
            continue;
        }
        let remap = |e: ExprRef| -> ExprRef {
            match e {
                ExprRef::Point(i) if subset.contains(&items.points[i].net) => {
                    ExprRef::Point(pmap[&i])
                }
                ExprRef::SegLine(i) if subset.contains(&items.segs[i].net) => {
                    ExprRef::SegLine(smap[&i])
                }
                ExprRef::Via(i) if subset.contains(&items.vias[i].net) => ExprRef::Via(vmap[&i]),
                // Foreign or constant: freeze at the current value.
                other => ExprRef::Const(eval_expr(items, solved, other, c.orient)),
            }
        };
        // Re-clamp against the *current* gap so the present positions stay
        // feasible even after other nets have moved.
        let cur_a = eval_expr(items, solved, c.a, c.orient);
        let cur_b = eval_expr(items, solved, c.b, c.orient);
        let cur_gap = c.sign * (cur_a - cur_b);
        let rc = Separation {
            orient: c.orient,
            sign: c.sign,
            a: remap(c.a),
            b: remap(c.b),
            required: c.required.min(cur_gap),
        };
        rc.add_to(&mut model, &vars, &sub);
    }
    ctx.check(FaultSite::LpFactorize)?;
    let mut basis = warm.remove(subset);
    let outcome = model.solve_warm(&mut basis);
    if let Some(b) = basis {
        warm.insert(subset.clone(), b);
    }
    match outcome {
        Ok(sol) => {
            let sub_solved = sub.positions_from(&sol, &vars);
            for (&g, &l) in &pmap {
                solved.points[g] = sub_solved.points[l];
            }
            for (&g, &l) in &smap {
                solved.segs[g] = sub_solved.segs[l];
            }
            for (&g, &l) in &vmap {
                solved.vias[g] = sub_solved.vias[l];
            }
            Ok(())
        }
        Err(e) => Err(RouterError::Lp(e)),
    }
}

#[doc(hidden)]
pub fn generate_constraints(package: &Package, items: &ItemModel) -> Vec<Separation> {
    constraints::generate(package, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Polyline, Rect};
    use info_model::{drc, DesignRules, NetId, PackageBuilder, WireLayer};

    /// A deliberately wasteful route between two pads: LP should pull the
    /// detour flat.
    #[test]
    fn shortens_detoured_route() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(
            Point::new(50_000, 100_000),
            Point::new(300_000, 400_000),
        ));
        let c2 = b.add_chip(Rect::new(
            Point::new(700_000, 100_000),
            Point::new(950_000, 400_000),
        ));
        let p1 = b.add_io_pad(c1, Point::new(250_000, 250_000)).unwrap();
        let p2 = b.add_io_pad(c2, Point::new(750_000, 250_000)).unwrap();
        b.add_net(p1, p2).unwrap();
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        // A detour: up 100 µm, across, back down.
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![
                Point::new(250_000, 250_000),
                Point::new(250_000, 350_000),
                Point::new(750_000, 350_000),
                Point::new(750_000, 250_000),
            ]),
        );
        let before: f64 = layout.routes().map(|r| r.length()).sum();
        let rep = optimize(
            &pkg,
            &mut layout,
            &RouterConfig::default(),
            &crate::resilience::FlowCtx::default(),
        );
        assert!(rep.applied, "{rep:?}");
        let after: f64 = layout.routes().map(|r| r.length()).sum();
        assert!(
            after < before - 50_000.0,
            "expected large shortening, before {before} after {after}"
        );
        // Still connected and clean.
        assert!(drc::is_connected(&pkg, &layout, NetId(0)));
        assert!(drc::check(&pkg, &layout).is_clean());
    }

    /// Two parallel routes at minimum spacing: optimization must not
    /// squeeze them into a violation.
    #[test]
    fn respects_spacing_between_nets() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(
            Point::new(50_000, 100_000),
            Point::new(300_000, 400_000),
        ));
        let c2 = b.add_chip(Rect::new(
            Point::new(700_000, 100_000),
            Point::new(950_000, 400_000),
        ));
        let a1 = b.add_io_pad(c1, Point::new(250_000, 240_000)).unwrap();
        let a2 = b.add_io_pad(c2, Point::new(750_000, 240_000)).unwrap();
        let b1 = b.add_io_pad(c1, Point::new(250_000, 270_000)).unwrap();
        let b2 = b.add_io_pad(c2, Point::new(750_000, 270_000)).unwrap();
        b.add_net(a1, a2).unwrap();
        b.add_net(b1, b2).unwrap();
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        // Net 0 straight; net 1 with a bulge toward net 0.
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![
                Point::new(250_000, 240_000),
                Point::new(750_000, 240_000),
            ]),
        );
        layout.add_route(
            NetId(1),
            WireLayer(0),
            Polyline::new(vec![
                Point::new(250_000, 270_000),
                Point::new(400_000, 270_000),
                Point::new(430_000, 300_000),
                Point::new(600_000, 300_000),
                Point::new(630_000, 270_000),
                Point::new(750_000, 270_000),
            ]),
        );
        let rep = optimize(
            &pkg,
            &mut layout,
            &RouterConfig::default(),
            &crate::resilience::FlowCtx::default(),
        );
        assert!(rep.applied);
        let report = drc::check(&pkg, &layout);
        assert!(report.is_clean(), "{:#?}", report.violations());
        // The bulge should flatten toward 270k but stay ≥ 4 µm from net 0.
        let net1_len: f64 = layout.routes_of(NetId(1)).map(|r| r.length()).sum();
        assert!(
            net1_len < 530_000.0,
            "bulge should shrink, len = {net1_len}"
        );
    }

    /// A route pinned between two fixed obstacles cannot move; optimization
    /// must keep it legal and terminate.
    #[test]
    fn fixed_corridor_stays_put() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(
            Point::new(50_000, 100_000),
            Point::new(300_000, 400_000),
        ));
        let c2 = b.add_chip(Rect::new(
            Point::new(700_000, 100_000),
            Point::new(950_000, 400_000),
        ));
        let p1 = b.add_io_pad(c1, Point::new(250_000, 250_000)).unwrap();
        let p2 = b.add_io_pad(c2, Point::new(750_000, 250_000)).unwrap();
        b.add_net(p1, p2).unwrap();
        b.add_obstacle(
            WireLayer(0),
            Rect::new(Point::new(450_000, 220_000), Point::new(550_000, 246_000)),
        )
        .unwrap();
        b.add_obstacle(
            WireLayer(0),
            Rect::new(Point::new(450_000, 254_000), Point::new(550_000, 280_000)),
        )
        .unwrap();
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![
                Point::new(250_000, 250_000),
                Point::new(750_000, 250_000),
            ]),
        );
        let rep = optimize(
            &pkg,
            &mut layout,
            &RouterConfig::default(),
            &crate::resilience::FlowCtx::default(),
        );
        // Straight line through the corridor: nothing to improve, nothing
        // to break.
        let after: f64 = layout.routes().map(|r| r.length()).sum();
        assert!((after - 500_000.0).abs() < 1.0, "{rep:?}");
        assert!(drc::check(&pkg, &layout).is_clean());
    }

    /// Independent far-apart nets decompose into separate components and
    /// all still optimize.
    #[test]
    fn components_optimize_independently() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(2_000_000, 2_000_000)),
            DesignRules::default(),
            1,
        );
        let c1 = b.add_chip(Rect::new(
            Point::new(50_000, 50_000),
            Point::new(400_000, 1_950_000),
        ));
        let c2 = b.add_chip(Rect::new(
            Point::new(1_600_000, 50_000),
            Point::new(1_950_000, 1_950_000),
        ));
        let mut nets = Vec::new();
        for i in 0..3i64 {
            let y = 300_000 + 600_000 * i; // far apart: separate components
            let p1 = b.add_io_pad(c1, Point::new(380_000, y)).unwrap();
            let p2 = b.add_io_pad(c2, Point::new(1_620_000, y)).unwrap();
            nets.push(b.add_net(p1, p2).unwrap());
        }
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        for (i, &net) in nets.iter().enumerate() {
            let y = 300_000 + 600_000 * i as i64;
            layout.add_route(
                net,
                WireLayer(0),
                Polyline::new(vec![
                    Point::new(380_000, y),
                    Point::new(380_000, y + 20_000),
                    Point::new(1_620_000, y + 20_000),
                    Point::new(1_620_000, y),
                ]),
            );
        }
        let before: f64 = layout.routes().map(|r| r.length()).sum();
        let rep = optimize(
            &pkg,
            &mut layout,
            &RouterConfig::default(),
            &crate::resilience::FlowCtx::default(),
        );
        assert!(rep.applied);
        let after: f64 = layout.routes().map(|r| r.length()).sum();
        assert!(
            after < before - 30_000.0,
            "all three detours flatten: {before} -> {after}"
        );
        assert!(drc::check(&pkg, &layout).is_clean());
    }
}
