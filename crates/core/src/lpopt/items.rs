//! Layout Mapping (§III-E1): extracting LP items and variables.

use info_geom::{Coord, Dir8, Orient4, Point, Segment};
use info_lp::{Cmp, Model, Solution, VarId};
use info_model::{Layout, NetId, Package, RouteId, ViaId, WireLayer};
use std::collections::HashMap;

/// How a route point is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointAnchor {
    /// Pinned to a pad: immovable.
    Fixed,
    /// Rides a via center (index into [`ItemModel::vias`]).
    Via(usize),
    /// Freely movable joint.
    Free,
}

/// A route point item.
#[derive(Debug, Clone)]
pub struct PointItem {
    /// Owning route.
    pub route: RouteId,
    /// The net of the route.
    pub net: NetId,
    /// Wire layer.
    pub layer: WireLayer,
    /// Initial position.
    pub initial: Point,
    /// Anchoring.
    pub anchor: PointAnchor,
}

/// A wire segment item.
#[derive(Debug, Clone)]
pub struct SegItem {
    /// Owning route.
    pub route: RouteId,
    /// The net of the route.
    pub net: NetId,
    /// Wire layer.
    pub layer: WireLayer,
    /// Frozen orientation.
    pub orient: Orient4,
    /// Frozen direction (from point `p0` to `p1`).
    pub dir: Dir8,
    /// Initial geometry.
    pub initial: Segment,
    /// Index of the first endpoint in [`ItemModel::points`].
    pub p0: usize,
    /// Index of the second endpoint.
    pub p1: usize,
}

/// A via item.
#[derive(Debug, Clone)]
pub struct ViaItem {
    /// Layout via id.
    pub id: ViaId,
    /// Owning net.
    pub net: NetId,
    /// Initial center.
    pub initial: Point,
    /// Whether the optimizer may move it (flexible vias only).
    pub movable: bool,
    /// Octagon width.
    pub width: Coord,
    /// Top wire layer of the span.
    pub top: WireLayer,
    /// Bottom wire layer of the span.
    pub bottom: WireLayer,
}

/// Per-route item bookkeeping.
#[derive(Debug, Clone)]
pub struct RouteItem {
    /// Layout route id.
    pub id: RouteId,
    /// Net and layer for convenience.
    pub net: NetId,
    /// Wire layer.
    pub layer: WireLayer,
    /// Point item indices, in polyline order.
    pub point_items: Vec<usize>,
    /// Segment item indices, in polyline order.
    pub seg_items: Vec<usize>,
}

/// The complete item model of a layout.
#[derive(Debug, Clone)]
pub struct ItemModel {
    /// All route points.
    pub points: Vec<PointItem>,
    /// All wire segments.
    pub segs: Vec<SegItem>,
    /// All vias.
    pub vias: Vec<ViaItem>,
    /// Routes with their item indices.
    pub routes: Vec<RouteItem>,
    /// Trust-region radius in nm: no variable moves farther than this.
    pub move_bound: f64,
}

/// A variable or a constant, per coordinate.
#[derive(Debug, Clone, Copy)]
pub enum VRef {
    /// Immovable value.
    Const(f64),
    /// LP variable.
    Var(VarId),
}

/// Variable handles created by [`ItemModel::build_variables`].
#[derive(Debug, Clone)]
pub struct Vars {
    /// `(x, y)` per point item.
    pub point_xy: Vec<(VRef, VRef)>,
    /// `(x, y)` per via item.
    pub via_xy: Vec<(VRef, VRef)>,
    /// `c` per segment item.
    pub seg_c: Vec<VRef>,
}

/// Solved positions (floating, pre-snapping).
#[derive(Debug, Clone)]
pub struct SolvedPositions {
    /// `(x, y)` per point item.
    pub points: Vec<(f64, f64)>,
    /// `(x, y)` per via item.
    pub vias: Vec<(f64, f64)>,
    /// `c` per segment item.
    pub segs: Vec<f64>,
}

/// A small linear expression over LP variables.
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    /// Variable terms.
    pub terms: Vec<(VarId, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// `coef · v`.
    pub fn push(&mut self, v: VRef, coef: f64) {
        if coef == 0.0 {
            return;
        }
        match v {
            VRef::Const(c) => self.constant += coef * c,
            VRef::Var(id) => self.terms.push((id, coef)),
        }
    }

    /// Appends the negation of another expression.
    pub fn sub(&mut self, other: &LinExpr) {
        self.constant -= other.constant;
        for &(v, c) in &other.terms {
            self.terms.push((v, -c));
        }
    }
}

/// The algebraic scale of an orientation: diagonal line offsets measure
/// `√2 ×` the Euclidean distance.
pub fn alg_scale(orient: Orient4) -> f64 {
    if orient.is_diagonal() {
        std::f64::consts::SQRT_2
    } else {
        1.0
    }
}

/// Builds the `a·x + b·y` expression of a point-like item.
pub fn point_expr(xy: (VRef, VRef), orient: Orient4) -> LinExpr {
    let (a, b) = orient.coeffs();
    let mut e = LinExpr::default();
    e.push(xy.0, a as f64);
    e.push(xy.1, b as f64);
    e
}

/// `global → local` index map produced by [`ItemModel::filter_nets`].
pub type IndexMap = HashMap<usize, usize>;

impl ItemModel {
    /// Restricts the model to the routes and vias of the given nets,
    /// returning the sub-model plus index maps (`global → local`) for
    /// points, segments, and vias.
    pub fn filter_nets(
        &self,
        nets: &std::collections::BTreeSet<info_model::NetId>,
    ) -> (ItemModel, IndexMap, IndexMap, IndexMap) {
        let mut point_map = HashMap::new();
        let mut seg_map = HashMap::new();
        let mut via_map = HashMap::new();
        let mut points = Vec::new();
        let mut segs = Vec::new();
        let mut vias = Vec::new();
        let mut routes = Vec::new();
        for (vi, v) in self.vias.iter().enumerate() {
            if nets.contains(&v.net) {
                via_map.insert(vi, vias.len());
                vias.push(v.clone());
            }
        }
        for r in &self.routes {
            if !nets.contains(&r.net) {
                continue;
            }
            let mut point_items = Vec::with_capacity(r.point_items.len());
            for &pi in &r.point_items {
                let mut p = self.points[pi].clone();
                if let PointAnchor::Via(v) = p.anchor {
                    p.anchor = PointAnchor::Via(via_map[&v]);
                }
                point_map.insert(pi, points.len());
                point_items.push(points.len());
                points.push(p);
            }
            let mut seg_items = Vec::with_capacity(r.seg_items.len());
            for &si in &r.seg_items {
                let mut s = self.segs[si].clone();
                s.p0 = point_map[&s.p0];
                s.p1 = point_map[&s.p1];
                seg_map.insert(si, segs.len());
                seg_items.push(segs.len());
                segs.push(s);
            }
            routes.push(RouteItem {
                id: r.id,
                net: r.net,
                layer: r.layer,
                point_items,
                seg_items,
            });
        }
        (
            ItemModel { points, segs, vias, routes, move_bound: self.move_bound },
            point_map,
            seg_map,
            via_map,
        )
    }
}

/// Extracts the item model from a layout. Returns `None` when the layout
/// has no optimizable geometry.
pub fn extract(package: &Package, layout: &Layout) -> Option<ItemModel> {
    let mut vias: Vec<ViaItem> = Vec::new();
    let mut via_index: HashMap<ViaId, usize> = HashMap::new();
    for v in layout.vias() {
        via_index.insert(v.id, vias.len());
        vias.push(ViaItem {
            id: v.id,
            net: v.net,
            initial: v.center,
            movable: !v.fixed,
            width: v.width,
            top: v.top,
            bottom: v.bottom,
        });
    }

    // Pad anchor lookup: centers of the two pads of each net.
    let mut pad_anchor: HashMap<(NetId, Point), ()> = HashMap::new();
    for n in package.nets() {
        pad_anchor.insert((n.id, package.pad(n.a).center), ());
        pad_anchor.insert((n.id, package.pad(n.b).center), ());
    }

    let mut points = Vec::new();
    let mut segs = Vec::new();
    let mut routes = Vec::new();
    for r in layout.routes() {
        if r.path.len() < 2 || r.path.validate().is_err() {
            continue;
        }
        let pts = r.path.points();
        let mut point_items = Vec::with_capacity(pts.len());
        for (i, &p) in pts.iter().enumerate() {
            let endpoint = i == 0 || i == pts.len() - 1;
            let anchor = if endpoint {
                if pad_anchor.contains_key(&(r.net, p)) {
                    PointAnchor::Fixed
                } else if let Some(&vi) = layout
                    .vias_of(r.net)
                    .filter(|v| v.center == p && v.spans(r.layer))
                    .map(|v| via_index.get(&v.id).expect("indexed"))
                    .next()
                {
                    PointAnchor::Via(vi)
                } else {
                    PointAnchor::Free
                }
            } else {
                PointAnchor::Free
            };
            point_items.push(points.len());
            points.push(PointItem { route: r.id, net: r.net, layer: r.layer, initial: p, anchor });
        }
        let mut seg_items = Vec::with_capacity(pts.len() - 1);
        for w in 0..pts.len() - 1 {
            let seg = Segment::new(pts[w], pts[w + 1]);
            let orient = seg.orient()?;
            let dir = seg.dir()?;
            seg_items.push(segs.len());
            segs.push(SegItem {
                route: r.id,
                net: r.net,
                layer: r.layer,
                orient,
                dir,
                initial: seg,
                p0: point_items[w],
                p1: point_items[w + 1],
            });
        }
        routes.push(RouteItem {
            id: r.id,
            net: r.net,
            layer: r.layer,
            point_items,
            seg_items,
        });
    }

    let move_bound = 8.0 * (package.rules().min_spacing + package.rules().wire_width) as f64;
    Some(ItemModel { points, segs, vias, routes, move_bound })
}

impl ItemModel {
    /// Creates the LP variables: `x`/`y` per movable point and via within
    /// the trust region, `c` per segment, and the wirelength objective.
    pub fn build_variables(&self, model: &mut Model, package: &Package) -> Vars {
        let m = self.move_bound;
        let die = package.die();
        let mut obj: HashMap<VarId, f64> = HashMap::new();

        let mut via_xy = Vec::with_capacity(self.vias.len());
        for v in &self.vias {
            if v.movable {
                let hw = (v.width / 2) as f64;
                let x = model.add_var(
                    (v.initial.x as f64 - m).max(die.lo.x as f64 + hw),
                    (v.initial.x as f64 + m).min(die.hi.x as f64 - hw),
                    0.0,
                );
                let y = model.add_var(
                    (v.initial.y as f64 - m).max(die.lo.y as f64 + hw),
                    (v.initial.y as f64 + m).min(die.hi.y as f64 - hw),
                    0.0,
                );
                via_xy.push((VRef::Var(x), VRef::Var(y)));
            } else {
                via_xy.push((VRef::Const(v.initial.x as f64), VRef::Const(v.initial.y as f64)));
            }
        }

        let mut point_xy = Vec::with_capacity(self.points.len());
        for p in &self.points {
            match p.anchor {
                PointAnchor::Fixed => point_xy
                    .push((VRef::Const(p.initial.x as f64), VRef::Const(p.initial.y as f64))),
                PointAnchor::Via(vi) => point_xy.push(via_xy[vi]),
                PointAnchor::Free => {
                    let x = model.add_var(
                        (p.initial.x as f64 - m).max(die.lo.x as f64),
                        (p.initial.x as f64 + m).min(die.hi.x as f64),
                        0.0,
                    );
                    let y = model.add_var(
                        (p.initial.y as f64 - m).max(die.lo.y as f64),
                        (p.initial.y as f64 + m).min(die.hi.y as f64),
                        0.0,
                    );
                    point_xy.push((VRef::Var(x), VRef::Var(y)));
                }
            }
        }

        // Segment line variables and the wirelength objective. With the
        // direction frozen, the length of a segment is a signed difference
        // of its endpoints' primary coordinates (scaled √2 on diagonals).
        let mut seg_c = Vec::with_capacity(self.segs.len());
        for s in &self.segs {
            let (a, b) = s.orient.coeffs();
            let c0 = (a * s.initial.a.x + b * s.initial.a.y) as f64;
            let both_fixed = matches!(
                (point_xy[s.p0], point_xy[s.p1]),
                ((VRef::Const(_), VRef::Const(_)), (VRef::Const(_), VRef::Const(_)))
            );
            if both_fixed {
                seg_c.push(VRef::Const(c0));
            } else {
                let c = model.add_var(c0 - 2.0 * m, c0 + 2.0 * m, 0.0);
                seg_c.push(VRef::Var(c));
            }
            // Objective contribution: primary axis is x unless vertical.
            let step = s.dir.step();
            let (primary_of, sign, scale) = if s.orient == Orient4::V {
                (1usize, step.dy as f64, 1.0)
            } else {
                (
                    0usize,
                    step.dx as f64,
                    if s.orient.is_diagonal() { std::f64::consts::SQRT_2 } else { 1.0 },
                )
            };
            let coef = sign * scale;
            for (pt, dirn) in [(s.p1, 1.0), (s.p0, -1.0)] {
                let v = if primary_of == 0 { point_xy[pt].0 } else { point_xy[pt].1 };
                if let VRef::Var(id) = v {
                    *obj.entry(id).or_insert(0.0) += coef * dirn;
                }
            }
        }
        for (v, c) in obj {
            model.set_obj(v, c);
        }
        Vars { point_xy, via_xy, seg_c }
    }

    /// Adds the route constraints (§III-E2): every point lies on the lines
    /// of its adjacent segments, and every segment keeps its direction.
    pub fn add_route_constraints(&self, model: &mut Model, vars: &Vars) {
        for (si, s) in self.segs.iter().enumerate() {
            for pt in [s.p0, s.p1] {
                let mut e = point_expr(vars.point_xy[pt], s.orient);
                let mut c_e = LinExpr::default();
                c_e.push(vars.seg_c[si], 1.0);
                e.sub(&c_e);
                if e.terms.is_empty() {
                    continue;
                }
                model.add_row(e.terms.clone(), Cmp::Eq, -e.constant);
            }
            // Direction preservation: signed primary extent ≥ 0.
            let step = s.dir.step();
            let (use_y, sign) = if s.orient == Orient4::V {
                (true, step.dy as f64)
            } else {
                (false, step.dx as f64)
            };
            let mut e = LinExpr::default();
            let get = |pt: usize| -> (VRef, VRef) { vars.point_xy[pt] };
            let (v1, v0) = if use_y { (get(s.p1).1, get(s.p0).1) } else { (get(s.p1).0, get(s.p0).0) };
            e.push(v1, sign);
            e.push(v0, -sign);
            if !e.terms.is_empty() {
                model.add_row(e.terms.clone(), Cmp::Ge, -e.constant);
            }
        }
    }

    /// Reads solved positions out of an LP solution.
    pub fn positions_from(&self, sol: &Solution, vars: &Vars) -> SolvedPositions {
        let val = |v: VRef| -> f64 {
            match v {
                VRef::Const(c) => c,
                VRef::Var(id) => sol[id],
            }
        };
        SolvedPositions {
            points: vars.point_xy.iter().map(|&(x, y)| (val(x), val(y))).collect(),
            vias: vars.via_xy.iter().map(|&(x, y)| (val(x), val(y))).collect(),
            segs: vars.seg_c.iter().map(|&c| val(c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Polyline, Rect};
    use info_model::{DesignRules, PackageBuilder};

    fn one_net_package() -> (Package, Layout) {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 500_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(50_000, 100_000), Point::new(300_000, 400_000)));
        let p1 = b.add_io_pad(c1, Point::new(250_000, 250_000)).unwrap();
        let g = b.add_bump_pad(Point::new(750_000, 250_000)).unwrap();
        b.add_net(p1, g).unwrap();
        let pkg = b.build().unwrap();
        let mut layout = Layout::new(&pkg);
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![
                Point::new(250_000, 250_000),
                Point::new(400_000, 250_000),
                Point::new(450_000, 300_000),
                Point::new(500_000, 300_000),
            ]),
        );
        layout.add_via(NetId(0), Point::new(500_000, 300_000), 5_000, WireLayer(0), WireLayer(1), false);
        layout.add_route(
            NetId(0),
            WireLayer(1),
            Polyline::new(vec![
                Point::new(500_000, 300_000),
                Point::new(700_000, 300_000),
                Point::new(750_000, 250_000),
            ]),
        );
        (pkg, layout)
    }

    #[test]
    fn extraction_classifies_anchors() {
        let (pkg, layout) = one_net_package();
        let m = extract(&pkg, &layout).unwrap();
        assert_eq!(m.routes.len(), 2);
        assert_eq!(m.vias.len(), 1);
        // First route: pad-fixed start, via-anchored end.
        let r0 = &m.routes[0];
        assert_eq!(m.points[r0.point_items[0]].anchor, PointAnchor::Fixed);
        assert_eq!(
            m.points[*r0.point_items.last().unwrap()].anchor,
            PointAnchor::Via(0)
        );
        // Interior joints are free.
        assert_eq!(m.points[r0.point_items[1]].anchor, PointAnchor::Free);
        // Second route: via-anchored start, pad-fixed end.
        let r1 = &m.routes[1];
        assert_eq!(m.points[r1.point_items[0]].anchor, PointAnchor::Via(0));
        assert_eq!(m.points[*r1.point_items.last().unwrap()].anchor, PointAnchor::Fixed);
        // Segment metadata is frozen from the initial layout.
        assert_eq!(m.segs[r1.seg_items[1]].orient, Orient4::D135);
    }

    #[test]
    fn objective_tracks_wirelength() {
        let (pkg, layout) = one_net_package();
        let m = extract(&pkg, &layout).unwrap();
        let mut model = Model::new();
        let vars = m.build_variables(&mut model, &pkg);
        m.add_route_constraints(&mut model, &vars);
        let sol = model.solve().expect("route constraints are consistent");
        let got = m.positions_from(&sol, &vars);
        assert_eq!(got.points.len(), m.points.len());
        // Fixed anchors keep their positions exactly.
        for (pi, p) in m.points.iter().enumerate() {
            if p.anchor == PointAnchor::Fixed {
                assert_eq!(got.points[pi].0, p.initial.x as f64);
                assert_eq!(got.points[pi].1, p.initial.y as f64);
            }
        }
    }
}
