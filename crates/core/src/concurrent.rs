//! Stage 2b — Concurrent detailed routing (§III-B2).
//!
//! Every net assigned to a wire layer is realized by pattern routing along
//! its pre-routed MST path: pad → fan-out access point (with a stacked via
//! when the assigned layer differs from the pad's layer) → offset crossing
//! points on each fan-out grid border → the far terminal. Nets sharing a
//! border are spread by one wire pitch per net. A net whose realization
//! would cross already-committed geometry is skipped and handed to the
//! sequential stage instead, so the committed layout stays planar.

use crate::assign::Assignment;
use crate::config::RouterConfig;
use crate::preprocess::{CandidateNet, Preprocessed};
use crate::resilience::{FaultSite, FlowCtx, RouterError};
use info_geom::{Coord, Dir8, Point, Polyline, Rect, Segment};
use info_model::{Layout, NetId, Package, PadKind, WireLayer};
use info_tile::realize::{xarch_connect, xarch_connect_pref};
use std::collections::HashMap;

/// Result of the concurrent stage.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentResult {
    /// Nets fully committed by this stage.
    pub routed: Vec<NetId>,
    /// Candidate indices skipped (handed to sequential routing).
    pub skipped: Vec<usize>,
}

/// Shared border segment of two touching rectangles.
fn shared_border(a: Rect, b: Rect) -> Option<Segment> {
    if a.hi.x == b.lo.x || b.hi.x == a.lo.x {
        let x = if a.hi.x == b.lo.x { a.hi.x } else { b.hi.x };
        let y0 = a.lo.y.max(b.lo.y);
        let y1 = a.hi.y.min(b.hi.y);
        (y1 > y0).then(|| Segment::new(Point::new(x, y0), Point::new(x, y1)))
    } else if a.hi.y == b.lo.y || b.hi.y == a.lo.y {
        let y = if a.hi.y == b.lo.y { a.hi.y } else { b.hi.y };
        let x0 = a.lo.x.max(b.lo.x);
        let x1 = a.hi.x.min(b.hi.x);
        (x1 > x0).then(|| Segment::new(Point::new(x0, y), Point::new(x1, y)))
    } else {
        None
    }
}

/// Outward normal direction from a chip at a boundary point.
fn outward(chip: Rect, at: Point) -> Dir8 {
    if at.x == chip.lo.x {
        Dir8::W
    } else if at.x == chip.hi.x {
        Dir8::E
    } else if at.y == chip.lo.y {
        Dir8::S
    } else {
        Dir8::N
    }
}

/// Routes all assigned candidates; commits geometry into `layout`.
///
/// Fails only on an injected `concurrent.commit` fault (or an internal
/// inconsistency); the flow then restores the pre-stage layout and routes
/// every net sequentially. A tripped stage budget is not a failure: the
/// stage stops early and hands the unrouted candidates to the sequential
/// stage via `skipped`.
pub fn route_concurrent(
    package: &Package,
    layout: &mut Layout,
    pre: &Preprocessed,
    asg: &Assignment,
    cfg: &RouterConfig,
    ctx: &FlowCtx,
) -> Result<ConcurrentResult, RouterError> {
    let _ = cfg;
    let rules = package.rules();
    let pitch = rules.wire_width + rules.min_spacing;
    let bottom = package.bottom_layer();

    // Pre-compute, per MST edge, the nets crossing it (for offsets), keyed
    // by unordered grid pair, per layer.
    let mut edge_usage: HashMap<(usize, usize, u8), Vec<usize>> = HashMap::new();
    for (k, layer_nets) in asg.per_layer.iter().enumerate() {
        for &ci in layer_nets {
            let c = &pre.candidates[ci];
            for w in c.pre_route.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]), k as u8);
                edge_usage.entry(key).or_default().push(ci);
            }
        }
    }
    // Same-grid nets (both access points in one grid) share that grid's
    // center corridor; track them per (grid, layer) for offsets too.
    let mut grid_usage: HashMap<(usize, u8), Vec<usize>> = HashMap::new();
    for (k, layer_nets) in asg.per_layer.iter().enumerate() {
        for &ci in layer_nets {
            let c = &pre.candidates[ci];
            if c.pre_route.len() == 1 {
                grid_usage.entry((c.pre_route[0], k as u8)).or_default().push(ci);
            }
        }
    }
    // Deterministic offset index: order by chord span so nested nets fan
    // out from the middle (an approximation of the planar nesting order).
    let span = |ci: usize| {
        let c = &pre.candidates[ci];
        c.a.circle.max(c.b.circle) - c.a.circle.min(c.b.circle)
    };
    for v in edge_usage.values_mut() {
        v.sort_by_key(|&ci| (span(ci), ci));
    }
    for v in grid_usage.values_mut() {
        v.sort_by_key(|&ci| (span(ci), ci));
    }
    let offset_of = |ci: usize, g1: usize, g2: usize, k: u8| -> (usize, usize) {
        // A net absent from its own edge list means the usage tables are
        // inconsistent; lane 0 keeps it routable and the clearance check
        // rejects the geometry if the lane is actually taken.
        match edge_usage.get(&(g1.min(g2), g1.max(g2), k)) {
            Some(list) => {
                (list.iter().position(|&x| x == ci).unwrap_or(0), list.len().max(1))
            }
            None => (0, 1),
        }
    };
    let grid_offset_of = |ci: usize, g: usize, k: u8| -> (usize, usize) {
        match grid_usage.get(&(g, k)) {
            // Multi-grid nets are absent from the same-grid lists: (0, 1).
            Some(list) => list
                .iter()
                .position(|&x| x == ci)
                .map_or((0, 1), |i| (i, list.len())),
            None => (0, 1),
        }
    };

    let mut result = ConcurrentResult::default();
    for (k, layer_nets) in asg.per_layer.iter().enumerate() {
        let layer = WireLayer(k as u8);
        for &ci in layer_nets {
            // Cooperative budget: unrouted candidates go to the sequential
            // stage instead of being dropped.
            if ctx.interrupted() {
                result.skipped.push(ci);
                continue;
            }
            let Some(c) = pre.candidates.get(ci) else {
                return Err(RouterError::Concurrent(format!(
                    "assignment references candidate {ci} of {}",
                    pre.candidates.len()
                )));
            };
            // First try the tight pattern (border crossings only); if it
            // cannot be committed, retry through the grid centers, which
            // gives conflicts near pad rows a wide berth.
            let mut attempt = None;
            for (via_centers, pref) in
                [(false, 0u8), (true, 0), (true, 1), (true, 2), (true, 3)]
            {
                let Some(real) = realize_candidate(
                    package, pre, c, layer, bottom, pitch, via_centers, pref,
                    |g1, g2| offset_of(ci, g1, g2, k as u8),
                    grid_offset_of(ci, c.pre_route[0], k as u8),
                ) else {
                    continue;
                };
                let valid = real.routes.iter().all(|(_, pl)| pl.validate().is_ok());
                let crosses = real.routes.iter().any(|(l, pl)| {
                    layout.routes_on(*l).any(|r| r.net != c.net && pl.crosses(&r.path))
                });
                let proposal = crate::trial::Proposal {
                    routes: real.routes.clone(),
                    vias: real.vias.clone(),
                };
                if valid
                    && !crosses
                    && crate::trial::clearance_ok(package, layout, c.net, &proposal)
                {
                    attempt = Some(real);
                    break;
                }
            }
            match attempt {
                Some(real) => {
                    ctx.check(FaultSite::ConcurrentCommit)?;
                    for (l, pl) in real.routes {
                        layout.add_route(c.net, l, pl);
                    }
                    for (at, top, bot) in real.vias {
                        layout.add_via(c.net, at, rules.via_width, top, bot, false);
                    }
                    result.routed.push(c.net);
                }
                None => result.skipped.push(ci),
            }
        }
    }
    Ok(result)
}

struct Realized {
    routes: Vec<(WireLayer, Polyline)>,
    vias: Vec<(Point, WireLayer, WireLayer)>,
}

/// Builds the geometry of one candidate on its assigned layer.
#[allow(clippy::too_many_arguments)]
fn realize_candidate(
    package: &Package,
    pre: &Preprocessed,
    c: &CandidateNet,
    layer: WireLayer,
    bottom: WireLayer,
    pitch: Coord,
    via_centers: bool,
    pref: u8,
    offset_of: impl Fn(usize, usize) -> (usize, usize),
    grid_offset: (usize, usize),
) -> Option<Realized> {
    let rules = package.rules();
    let mut routes: Vec<(WireLayer, Polyline)> = Vec::new();
    let mut vias = Vec::new();

    // Lane index of this net among the nets sharing its corridor; used to
    // stagger escape lengths and center offsets.
    let (idx0, n0) = if c.pre_route.len() >= 2 {
        offset_of(c.pre_route[0], c.pre_route[1])
    } else {
        grid_offset
    };
    let lane_step = (pitch as f64 * std::f64::consts::SQRT_2).ceil() as Coord;

    // Terminal handling returns the point where the layer-`layer` wire
    // starts for this terminal.
    let terminal = |info: &crate::preprocess::AccessInfo,
                        routes: &mut Vec<(WireLayer, Polyline)>,
                        vias: &mut Vec<(Point, WireLayer, WireLayer)>|
     -> Option<Point> {
        let pad = package.pad(info.pad);
        let pad_layer = package.pad_layer(info.pad);
        if pad_layer == layer {
            if let PadKind::Io { chip } = pad.kind {
                // Escape perpendicular to the chip edge before running the
                // fan-out pattern, staggered per lane so no run slices a
                // neighbor's stub tip.
                let out = outward(package.chip(chip).outline, info.at);
                let escape = info.at + out.step() * (2 * pitch + idx0 as Coord * lane_step);
                let (mut pts, _) = xarch_connect(pad.center, escape, None);
                let mut stub = vec![pad.center];
                stub.append(&mut pts);
                if stub.len() >= 2 {
                    let mut pl = Polyline::new(stub);
                    pl.simplify();
                    pl.validate().ok()?;
                    routes.push((layer, pl));
                }
                return Some(escape);
            }
            return Some(pad.center);
        }
        match pad.kind {
            PadKind::Io { chip } => {
                // Stub on the top layer from the pad to a via just outside
                // the chip, then dive to the assigned layer.
                let out = outward(package.chip(chip).outline, info.at);
                let margin = rules.via_width / 2 + rules.min_spacing + rules.wire_width;
                let via_at = info.at + out.step() * margin;
                let (mut pts, _) = xarch_connect(pad.center, via_at, None);
                let mut stub = vec![pad.center];
                stub.append(&mut pts);
                if stub.len() >= 2 {
                    let mut pl = Polyline::new(stub);
                    pl.simplify();
                    pl.validate().ok()?;
                    routes.push((WireLayer::TOP, pl));
                }
                vias.push((via_at, WireLayer::TOP, layer));
                Some(via_at)
            }
            PadKind::Bump => {
                // Via straight up from the bump pad center.
                vias.push((pad.center, layer, bottom));
                Some(pad.center)
            }
        }
    };

    let start = terminal(&c.a, &mut routes, &mut vias)?;
    let end = terminal(&c.b, &mut routes, &mut vias)?;

    // Waypoints across the fan-out grids with per-border offsets; the
    // retry style also threads each grid's center so bundles swing wide
    // of pad rows.
    let mut waypoints = vec![start];
    let center_offset = |g: usize| -> Point {
        let ctr = pre.grids[g].center();
        // A vertical offset shrinks by √2 across diagonal runs; spread by
        // pitch·√2 so every orientation keeps a full pitch.
        let spread = (((idx0 as f64) - (n0 as f64 - 1.0) / 2.0) * lane_step as f64).round() as Coord;
        // Displace vertically: a vertical shift changes both diagonal
        // coordinates (x+y and x−y), so nested nets separate on every
        // X-architecture orientation.
        Point::new(ctr.x, ctr.y + spread)
    };
    if via_centers && c.pre_route.len() == 1 {
        waypoints.push(center_offset(c.pre_route[0]));
    }
    for w in c.pre_route.windows(2) {
        let (g1, g2) = (w[0], w[1]);
        if via_centers {
            waypoints.push(center_offset(g1));
        }
        let border = shared_border(pre.grids[g1], pre.grids[g2])?;
        let (idx, n) = offset_of(g1, g2);
        let dir = border.delta();
        let len = border.len_euclid();
        let step = pitch as f64 * std::f64::consts::SQRT_2;
        // Center the bundle on the border midpoint, clamp inside.
        let spread = ((idx as f64) - (n as f64 - 1.0) / 2.0) * step;
        let t = (0.5 + spread / len).clamp(0.05, 0.95);
        let p = Point::new(
            border.a.x + (dir.dx as f64 * t).round() as Coord,
            border.a.y + (dir.dy as f64 * t).round() as Coord,
        );
        waypoints.push(p);
    }
    if via_centers {
        if let [.., last] = c.pre_route[..] {
            if c.pre_route.len() >= 2 {
                waypoints.push(center_offset(last));
            }
        }
    }
    waypoints.push(end);

    // Connect waypoints with legal X-architecture patterns.
    let mut pts = vec![waypoints[0]];
    let mut dir = None;
    for &wp in &waypoints[1..] {
        let Some(&from) = pts.last() else { break };
        if wp == from {
            continue;
        }
        let (mut seg_pts, d) = xarch_connect_pref(from, wp, dir, pref);
        pts.append(&mut seg_pts);
        dir = d;
    }
    if pts.len() >= 2 {
        let mut pl = Polyline::new(pts);
        pl.simplify();
        pl.validate().ok()?;
        routes.push((layer, pl));
    } else if routes.is_empty() && vias.is_empty() {
        return None;
    }
    Some(Realized { routes, vias })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign_layers;
    use crate::preprocess::preprocess;
    use info_model::{drc, DesignRules, PackageBuilder};

    fn facing_pads_package(n: usize, layers: usize) -> info_model::Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            layers,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(400_000, 600_000)));
        let c2 = b.add_chip(Rect::new(Point::new(800_000, 200_000), Point::new(1_100_000, 600_000)));
        for i in 0..n {
            let y = 260_000 + 60_000 * i as i64;
            let a = b.add_io_pad(c1, Point::new(380_000, y)).unwrap();
            let z = b.add_io_pad(c2, Point::new(820_000, y)).unwrap();
            b.add_net(a, z).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn concurrent_routes_connect_and_pass_drc() {
        let pkg = facing_pads_package(4, 2);
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        let asg = assign_layers(&pre, &cfg, pkg.wire_layer_count(), &crate::resilience::FlowCtx::default()).unwrap();
        let mut layout = Layout::new(&pkg);
        let res = route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(res.routed.len(), 4, "skipped: {:?}", res.skipped);
        let report = drc::check(&pkg, &layout);
        for n in pkg.nets() {
            assert!(
                drc::is_connected(&pkg, &layout, n.id),
                "{} not connected; violations: {:?}",
                n.id,
                report.violations()
            );
        }
        assert!(
            report.is_clean(),
            "violations: {:#?}",
            report.violations()
        );
    }

    #[test]
    fn layer_one_assignment_uses_vias() {
        // Force nets onto a deeper layer by crowding layer 0: route 8 nets
        // with 2 layers; the planar set all fit on layer 0 here, so instead
        // check the via machinery directly via a bump-pad net.
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
            DesignRules::default(),
            2,
        );
        let c1 = b.add_chip(Rect::new(Point::new(100_000, 150_000), Point::new(350_000, 450_000)));
        let a1 = b.add_io_pad(c1, Point::new(330_000, 300_000)).unwrap();
        let g1 = b.add_bump_pad(Point::new(700_000, 300_000)).unwrap();
        b.add_net(a1, g1).unwrap();
        let pkg = b.build().unwrap();
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(pre.candidates.len(), 1);
        let asg = assign_layers(&pre, &cfg, pkg.wire_layer_count(), &crate::resilience::FlowCtx::default()).unwrap();
        let mut layout = Layout::new(&pkg);
        let res = route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        assert_eq!(res.routed.len(), 1);
        // The net ends on a bump pad (bottom layer): either it was assigned
        // to layer 0 and needs a via down, or assigned to layer 1 and needs
        // one at the I/O side.
        assert!(layout.via_count() >= 1);
        assert!(drc::is_connected(&pkg, &layout, info_model::NetId(0)));
    }

    #[test]
    fn offsets_keep_parallel_nets_apart() {
        let pkg = facing_pads_package(3, 2);
        let cfg = RouterConfig::default();
        let pre = preprocess(&pkg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        let asg = assign_layers(&pre, &cfg, pkg.wire_layer_count(), &crate::resilience::FlowCtx::default()).unwrap();
        let mut layout = Layout::new(&pkg);
        route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &crate::resilience::FlowCtx::default()).unwrap();
        // No two routes of different nets cross.
        let routes: Vec<_> = layout.routes().collect();
        for (i, r1) in routes.iter().enumerate() {
            for r2 in &routes[i + 1..] {
                if r1.net != r2.net && r1.layer == r2.layer {
                    assert!(!r1.path.crosses(&r2.path), "{} crosses {}", r1.net, r2.net);
                }
            }
        }
    }
}
