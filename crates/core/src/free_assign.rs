//! Free-assignment (FA) routing extension.
//!
//! The paper solves the *pre-assignment* problem — the hardest variant —
//! but industrial flows also carry FA nets whose I/O pads may connect to
//! *any* free bump pad (§I-A; Fang et al. \[4\] solve FA with network
//! flows). This module adds that capability on top of the PA router: a
//! min-cost max-flow assignment picks a bump pad per FA I/O pad
//! (X-architecture distance as cost), the package is augmented with the
//! resulting pre-assigned pairs, and the five-stage flow routes everything
//! together.

use crate::config::RouterConfig;
use crate::flow::{InfoRouter, RouteOutcome};
use info_geom::x_arch_len;
use info_model::{Package, PackageBuilder, PadId, PadKind};
use info_tile::mcmf::assign_min_cost;

/// Result of the assignment step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeAssignment {
    /// Chosen `(I/O pad, bump pad)` pairs.
    pub pairs: Vec<(PadId, PadId)>,
    /// FA pads that could not be assigned (no free bump pad).
    pub unassigned: Vec<PadId>,
}

/// Picks a free bump pad for every FA I/O pad, maximizing the number of
/// assignments and minimizing total X-architecture distance.
///
/// A bump pad is *free* when no pre-assigned net uses it. FA pads must be
/// I/O pads not already consumed by a net.
///
/// # Panics
///
/// Panics if an entry of `fa_pads` is not an unused I/O pad of `package`.
pub fn assign_free_pads(package: &Package, fa_pads: &[PadId]) -> FreeAssignment {
    let mut used = vec![false; package.pads().len()];
    for n in package.nets() {
        used[n.a.index()] = true;
        used[n.b.index()] = true;
    }
    for &p in fa_pads {
        assert!(package.pad(p).is_io(), "{p} is not an I/O pad");
        assert!(!used[p.index()], "{p} already carries a pre-assigned net");
    }
    let bumps: Vec<PadId> = package
        .pads()
        .iter()
        .filter(|p| !p.is_io() && !used[p.id.index()])
        .map(|p| p.id)
        .collect();

    // Cost in µm so i64 stays comfortable.
    let costs: Vec<Vec<Option<i64>>> = fa_pads
        .iter()
        .map(|&io| {
            let a = package.pad(io).center;
            bumps
                .iter()
                .map(|&g| Some((x_arch_len(a, package.pad(g).center) / 1_000.0) as i64))
                .collect()
        })
        .collect();
    let choice = assign_min_cost(&costs);

    let mut pairs = Vec::new();
    let mut unassigned = Vec::new();
    for (i, &io) in fa_pads.iter().enumerate() {
        match choice[i] {
            Some(j) => pairs.push((io, bumps[j])),
            None => unassigned.push(io),
        }
    }
    FreeAssignment { pairs, unassigned }
}

/// Rebuilds a package with extra pre-assigned nets appended.
///
/// Entity ids are preserved (insertion order is identical); only the net
/// list grows.
///
/// # Panics
///
/// Panics if the augmented package fails validation (it cannot: the
/// original validated and nets only add pairings of unused pads).
pub fn augment_with_nets(package: &Package, extra: &[(PadId, PadId)]) -> Package {
    let mut b = PackageBuilder::new(package.die(), *package.rules(), package.wire_layer_count());
    for c in package.chips() {
        b.add_chip(c.outline);
    }
    for p in package.pads() {
        match p.kind {
            PadKind::Io { chip } => {
                b.set_io_pad_size(p.width, p.height);
                b.add_io_pad(chip, p.center).expect("pad was valid");
            }
            PadKind::Bump => {
                b.set_bump_pad_width(p.width);
                b.add_bump_pad(p.center).expect("pad was valid");
            }
        }
    }
    for o in package.obstacles() {
        b.add_obstacle(o.layer, o.rect).expect("obstacle was valid");
    }
    for n in package.nets() {
        b.add_net(n.a, n.b).expect("net was valid");
    }
    for &(a, z) in extra {
        b.add_net(a, z).expect("extra net pairs unused pads");
    }
    for v in package.pre_vias() {
        b.add_fixed_via(v.net, v.center, v.top, v.bottom).expect("fixed via was valid");
    }
    b.build().expect("augmented package validates")
}

/// One-call FA routing: assign each FA pad a bump, then run the full
/// five-stage flow on the augmented package. Returns the augmented package
/// (whose trailing nets are the FA nets), the assignment, and the routing
/// outcome.
pub fn route_with_free_pads(
    package: &Package,
    fa_pads: &[PadId],
    cfg: RouterConfig,
) -> (Package, FreeAssignment, RouteOutcome) {
    let asg = assign_free_pads(package, fa_pads);
    let augmented = augment_with_nets(package, &asg.pairs);
    let outcome = InfoRouter::new(cfg).route(&augmented);
    (augmented, asg, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::{Point, Rect};
    use info_model::DesignRules;

    fn fa_package() -> (Package, Vec<PadId>) {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_200_000, 800_000)),
            DesignRules::default(),
            2,
        );
        let chip = b.add_chip(Rect::new(Point::new(100_000, 200_000), Point::new(450_000, 600_000)));
        // One pre-assigned net.
        let pa = b.add_io_pad(chip, Point::new(430_000, 250_000)).unwrap();
        let ga = b.add_bump_pad(Point::new(700_000, 250_000)).unwrap();
        b.add_net(pa, ga).unwrap();
        // Three FA pads.
        let fa: Vec<PadId> = (0..3)
            .map(|i| b.add_io_pad(chip, Point::new(430_000, 350_000 + 90_000 * i)).unwrap())
            .collect();
        // Free bumps, one clearly nearest per FA pad, plus a spare.
        for i in 0..4i64 {
            b.add_bump_pad(Point::new(700_000, 350_000 + 90_000 * i)).unwrap();
        }
        (b.build().unwrap(), fa)
    }

    #[test]
    fn assignment_picks_nearest_free_bumps() {
        let (pkg, fa) = fa_package();
        let asg = assign_free_pads(&pkg, &fa);
        assert_eq!(asg.pairs.len(), 3);
        assert!(asg.unassigned.is_empty());
        // Each pad pairs with the bump at its own row.
        for &(io, bump) in &asg.pairs {
            assert_eq!(pkg.pad(io).center.y, pkg.pad(bump).center.y);
        }
        // The used bump (net 0's) is never chosen.
        for &(_, bump) in &asg.pairs {
            assert_ne!(pkg.pad(bump).center.y, 250_000);
        }
    }

    #[test]
    fn augmented_package_preserves_ids() {
        let (pkg, fa) = fa_package();
        let asg = assign_free_pads(&pkg, &fa);
        let aug = augment_with_nets(&pkg, &asg.pairs);
        assert_eq!(aug.pads().len(), pkg.pads().len());
        for (a, b) in pkg.pads().iter().zip(aug.pads().iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.center, b.center);
            assert_eq!(a.width, b.width);
        }
        assert_eq!(aug.nets().len(), pkg.nets().len() + 3);
        assert_eq!(aug.pre_vias().len(), pkg.pre_vias().len());
        assert_eq!(aug.obstacles().len(), pkg.obstacles().len());
    }

    #[test]
    fn full_fa_flow_routes_everything() {
        let (pkg, fa) = fa_package();
        let (aug, asg, out) =
            route_with_free_pads(&pkg, &fa, RouterConfig::default().with_global_cells(12));
        assert_eq!(asg.pairs.len(), 3);
        assert!(
            out.stats.fully_routed(),
            "{}; failed {:?}; violations {:#?}",
            out.stats,
            out.failed,
            out.drc.violations()
        );
        assert_eq!(aug.nets().len(), 4);
    }

    #[test]
    fn more_fa_pads_than_bumps_reports_unassigned() {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(1_000_000, 600_000)),
            DesignRules::default(),
            2,
        );
        let chip = b.add_chip(Rect::new(Point::new(100_000, 100_000), Point::new(400_000, 500_000)));
        let fa: Vec<PadId> = (0..3)
            .map(|i| b.add_io_pad(chip, Point::new(380_000, 150_000 + 100_000 * i)).unwrap())
            .collect();
        b.add_bump_pad(Point::new(700_000, 300_000)).unwrap();
        let pkg = b.build().unwrap();
        let asg = assign_free_pads(&pkg, &fa);
        assert_eq!(asg.pairs.len(), 1);
        assert_eq!(asg.unassigned.len(), 2);
    }
}
