//! Work-stealing scoped worker pool (std::thread only — the workspace
//! builds offline, so no rayon) used by the sequential stage's
//! speculative parallel planner, the rip-up victim scan, and the LP
//! constraint generator.
//!
//! ## Why stealing instead of a shared counter
//!
//! The previous pool handed out items one at a time from a single shared
//! `AtomicUsize`, which serializes every claim on one contended cache
//! line and costs one RMW per item even when items are microseconds
//! long. Here the items are pre-split into one contiguous range per
//! worker; a worker pops from the *front* of its own range (one
//! uncontended CAS) and, only when its range runs dry, steals the *back
//! half* of the largest remaining victim range. Steal granularity halves
//! with each steal, so the tail of a skewed batch — one net whose A\*
//! search dwarfs its batchmates is the normal case, not the exception —
//! spreads across workers at logarithmic cost instead of idling them.
//!
//! Determinism is unaffected by scheduling: callers must make `f` a pure
//! function of `(index, item)`, and results are returned in item order
//! regardless of which worker computed them.

use std::sync::atomic::{AtomicU64, Ordering};

/// What one `parallel_map` call observed, for telemetry: how many times
/// a worker ran out of local work and successfully stole a range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful steals (a worker took the back half of another's
    /// remaining range). 0 on single-threaded runs.
    pub steals: u64,
}

impl PoolStats {
    /// Accumulates another call's stats into this one.
    pub fn absorb(&mut self, other: PoolStats) {
        self.steals += other.steals;
    }
}

/// A half-open index range `[start, end)` packed into one atomic word
/// (start in the high 32 bits), so pops and steals are single CASes.
struct Range(AtomicU64);

const fn pack(start: u32, end: u32) -> u64 {
    ((start as u64) << 32) | end as u64
}

const fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Range {
    fn new(start: u32, end: u32) -> Self {
        Range(AtomicU64::new(pack(start, end)))
    }

    /// Claims the front element of the range, if any.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(start + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(start as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Steals the back half of the range (at least one item) when it
    /// holds two or more items; a single remaining item is left to its
    /// owner — stealing it would just move the cache miss.
    fn steal_back_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if end.saturating_sub(start) < 2 {
                return None;
            }
            let keep = start + (end - start).div_ceil(2);
            match self.0.compare_exchange_weak(
                cur,
                pack(start, keep),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((keep, end)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Items currently left in the range.
    fn remaining(&self) -> u32 {
        let (start, end) = unpack(self.0.load(Ordering::Acquire));
        end.saturating_sub(start)
    }

    /// Publishes a stolen range as this worker's own (valid only when the
    /// worker's range is empty, which is the only time the owner writes).
    fn publish(&self, start: u32, end: u32) {
        self.0.store(pack(start, end), Ordering::Release);
    }
}

/// Applies `f` to every item on up to `threads` OS threads and returns
/// the results in item order. Work is split into per-worker ranges with
/// back-half stealing, so item-to-thread assignment is nondeterministic —
/// callers must make `f` a pure function of `(index, item)` for the
/// output to be deterministic. With `threads <= 1` (or fewer than two
/// items) everything runs on the caller's thread and no threads are
/// spawned.
///
/// A panic inside `f` propagates to the caller after the scope joins
/// (callers that need isolation wrap `f` in `catch_unwind`).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_stats(items, threads, f).0
}

/// [`parallel_map`] that also reports what the pool did (steal counts).
pub fn parallel_map_stats<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        return (out, PoolStats::default());
    }
    assert!(items.len() <= u32::MAX as usize, "range packing holds 32-bit indices");
    // Pre-split: worker w owns [w * per, ...), remainder spread over the
    // first ranges so no worker starts more than one item ahead.
    let n = items.len() as u32;
    let per = n / workers as u32;
    let extra = n % workers as u32;
    let mut cut = 0u32;
    let ranges: Vec<Range> = (0..workers as u32)
        .map(|w| {
            let len = per + u32::from(w < extra);
            let r = Range::new(cut, cut + len);
            cut += len;
            r
        })
        .collect();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut stats = PoolStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        // Drain the local range first.
                        while let Some(i) = ranges[w].pop_front() {
                            out.push((i, f(i, &items[i])));
                        }
                        // Empty: steal the back half of the fullest
                        // victim. Largest-first keeps steal sizes — and
                        // therefore rebalancing quality — as high as the
                        // remaining work allows.
                        let victim = (0..ranges.len())
                            .filter(|&v| v != w)
                            .max_by_key(|&v| ranges[v].remaining())
                            .filter(|&v| ranges[v].remaining() > 0);
                        let Some(v) = victim else { break };
                        match ranges[v].steal_back_half() {
                            Some((start, end)) => {
                                steals += 1;
                                // Publish so other starved workers can
                                // re-steal from this chunk in turn.
                                ranges[w].publish(start, end);
                            }
                            // Lost the race (or the victim drained to a
                            // single item); rescan for another victim.
                            None => continue,
                        }
                    }
                    (out, steals)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((results, steals)) => {
                    stats.steals += steals;
                    for (i, r) in results {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let out = slots.into_iter().map(|r| r.expect("every index claimed exactly once")).collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let items: Vec<usize> = (0..4096).collect();
        let claims: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        for threads in [2, 3, 8] {
            let out = parallel_map(&items, threads, |i, &x| {
                claims[i].fetch_add(1, Ordering::Relaxed);
                x
            });
            assert_eq!(out.len(), items.len());
        }
        for c in &claims {
            assert_eq!(c.load(Ordering::Relaxed), 3, "once per parallel_map call");
        }
    }

    #[test]
    fn skewed_items_spread_across_workers() {
        // One item 1000x the cost of its batchmates, placed at the front
        // of the first worker's range: back-half stealing must let other
        // workers drain the rest (this deadlocks or serializes if steals
        // are broken, and the test would then blow its time budget).
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 200_000 } else { 200 }).collect();
        let (out, stats) = parallel_map_stats(&items, 4, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            acc
        });
        assert_eq!(out.len(), 64);
        // With a skewed front item on 4 workers at least one steal must
        // happen (worker 0 is pinned on item 0 while its range holds 15
        // more items).
        assert!(stats.steals > 0, "expected steals on a skewed batch: {stats:?}");
    }

    #[test]
    fn range_pop_and_steal_are_exclusive() {
        let r = Range::new(0, 10);
        let mut popped = Vec::new();
        while let Some(i) = r.pop_front() {
            popped.push(i);
            if popped.len() == 3 {
                // Steal the back half of the remaining 7: [start+4, 10).
                let (s, e) = r.steal_back_half().expect("7 items remain");
                assert_eq!((s, e), (7, 10));
            }
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(r.remaining(), 0);
        assert!(r.steal_back_half().is_none());
        // A single-item range is never stolen.
        let one = Range::new(5, 6);
        assert!(one.steal_back_half().is_none());
        assert_eq!(one.pop_front(), Some(5));
    }
}
