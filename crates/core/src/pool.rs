//! Minimal scoped worker pool (std::thread only — the workspace builds
//! offline, so no rayon) used by the sequential stage's speculative
//! parallel planner.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on up to `threads` OS threads and returns
/// the results in item order. Work is claimed from a shared counter, so
/// item-to-thread assignment is nondeterministic — callers must make `f`
/// a pure function of `(index, item)` for the output to be deterministic.
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// caller's thread and no threads are spawned.
///
/// A panic inside `f` propagates to the caller after the scope joins
/// (callers that need isolation wrap `f` in `catch_unwind`).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (i, r) in results {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * x), vec![1, 4, 9]);
    }
}
