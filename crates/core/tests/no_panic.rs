//! Property: `InfoRouter::route` never panics — on any small random
//! circuit, under any single injected fault, error or panic, at any site.

use info_gen::{build_dense, DenseSpec};
use info_router::{
    FaultDirective, FaultKind, FaultPlan, FaultSite, InfoRouter, RouterConfig,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A small random dense-style circuit (2 chips, a handful of nets).
fn small_circuit(seed: u64, nets: usize, wire_layers: usize) -> info_model::Package {
    build_dense(
        DenseSpec {
            chips_x: 2,
            chips_y: 1,
            io_pads: nets * 2,
            bump_pads: 64,
            nets,
            wire_layers,
            seed,
        },
        false,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// No fault plan, random circuit: route() returns.
    #[test]
    fn route_never_panics_on_random_circuits(
        seed in 0u64..10_000,
        nets in 2usize..8,
        layers in 2usize..4,
    ) {
        let pkg = small_circuit(seed, nets, layers);
        let cfg = RouterConfig::default().with_global_cells(10);
        let out = catch_unwind(AssertUnwindSafe(|| InfoRouter::new(cfg).route(&pkg)));
        prop_assert!(out.is_ok(), "route panicked on seed {seed}");
    }

    /// Random circuit + random single fault: route() still returns, and the
    /// layout stays DRC-clean apart from unrouted nets.
    #[test]
    fn route_never_panics_under_injected_faults(
        seed in 0u64..10_000,
        nets in 2usize..8,
        site_idx in 0usize..FaultSite::COUNT,
        panic_kind in any::<bool>(),
        skip in 0u32..4,
        fires in 1u32..3,
    ) {
        let pkg = small_circuit(seed, nets, 2);
        let site = FaultSite::ALL[site_idx];
        let kind = if panic_kind { FaultKind::Panic } else { FaultKind::Error };
        let plan = FaultPlan::none().with(FaultDirective { site, kind, skip, fires });
        let cfg = RouterConfig::default().with_global_cells(10).with_fault_plan(plan);
        let out = catch_unwind(AssertUnwindSafe(|| InfoRouter::new(cfg).route(&pkg)));
        prop_assert!(out.is_ok(), "route panicked on seed {seed} at {site}");
        let out = out.unwrap();
        for v in out.drc.violations() {
            prop_assert!(
                matches!(v, info_model::drc::Violation::Disconnected { .. }),
                "seed {seed} at {site}: unexpected violation {v}"
            );
        }
        prop_assert_eq!(
            out.stats.routed_nets + out.drc.dirty_nets().len(),
            out.stats.total_nets
        );
    }
}
