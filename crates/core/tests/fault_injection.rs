//! Deterministic fault-injection suite: under any single injected fault —
//! error-return or panic, at every [`FaultSite`] — `route()` must return
//! normally with a DRC-clean (possibly partial) layout, record the fault in
//! [`FlowDiagnostics`], and lose at most the nets the fault touched.

use info_geom::{Point, Rect};
use info_model::{drc, DesignRules, Package, PackageBuilder};
use info_router::{
    FaultDirective, FaultKind, FaultPlan, FaultSite, InfoRouter, RouteOutcome, RouterConfig,
    RouterError, StageOutcome,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Two facing chips with `nets_per_side` straight-across nets — small
/// enough to route fully, rich enough to exercise every stage.
fn two_chip_package(nets_per_side: usize) -> Package {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
        DesignRules::default(),
        2,
    );
    let c1 = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
    let c2 = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));
    for i in 0..nets_per_side {
        let y = 300_000 + 70_000 * i as i64;
        let a = b.add_io_pad(c1, Point::new(480_000, y)).unwrap();
        let z = b.add_io_pad(c2, Point::new(920_000, y)).unwrap();
        b.add_net(a, z).unwrap();
    }
    b.build().unwrap()
}

/// The config under which `site`'s check is guaranteed to be reached on the
/// two-chip package: per-net sites need every net in the sequential stage.
fn config_for(site: FaultSite) -> RouterConfig {
    let cfg = RouterConfig::default().with_global_cells(10);
    match site {
        FaultSite::AstarExpand | FaultSite::TileViaInsert => cfg.without_concurrent(),
        // The pool-worker check lives inside the speculative planner, which
        // only runs above one thread and only over nets the concurrent
        // stage left to the sequential stage.
        FaultSite::PoolWorker => cfg.without_concurrent().with_threads(4),
        _ => cfg,
    }
}

/// Routes under `plan`, asserting no panic escapes `route()`.
fn route_with_plan(pkg: &Package, cfg: RouterConfig, plan: FaultPlan) -> RouteOutcome {
    let router = InfoRouter::new(cfg.with_fault_plan(plan));
    catch_unwind(AssertUnwindSafe(|| router.route(pkg)))
        .expect("a panic escaped InfoRouter::route")
}

/// The invariants every faulted run must keep.
fn assert_isolated(out: &RouteOutcome, site: FaultSite, baseline_routed: usize, max_lost: usize) {
    // The fault actually fired and was recorded.
    assert!(
        out.diagnostics.faults_fired.iter().any(|(s, n)| *s == site && *n >= 1),
        "{site}: fault did not fire: {:?}",
        out.diagnostics.faults_fired
    );
    // The layout is DRC-clean apart from unrouted nets.
    for v in out.drc.violations() {
        assert!(
            matches!(v, drc::Violation::Disconnected { .. }),
            "{site}: non-disconnection violation {v}"
        );
    }
    // Every net is accounted for: routed or reported dirty.
    assert_eq!(
        out.stats.routed_nets + out.drc.dirty_nets().len(),
        out.stats.total_nets,
        "{site}: nets unaccounted for"
    );
    // Bounded degradation: the fault costs at most `max_lost` nets.
    assert!(
        out.stats.routed_nets + max_lost >= baseline_routed,
        "{site}: routed {} of baseline {} (allowed loss {max_lost})",
        out.stats.routed_nets,
        baseline_routed,
    );
}

/// Which diagnostics slot a stage-level site lands in, plus the loss bound.
fn stage_slot(out: &RouteOutcome, site: FaultSite) -> Option<&StageOutcome> {
    match site {
        FaultSite::PreprocessPartition => Some(&out.diagnostics.preprocess),
        FaultSite::AssignPeel => Some(&out.diagnostics.assign),
        FaultSite::ConcurrentCommit => Some(&out.diagnostics.concurrent),
        _ => None,
    }
}

fn check_site(site: FaultSite, kind: FaultKind) {
    let pkg = two_chip_package(4);
    let cfg = config_for(site);
    let baseline = InfoRouter::new(cfg).route(&pkg);
    assert!(baseline.diagnostics.all_ok(), "{site}: baseline not clean");
    let baseline_routed = baseline.stats.routed_nets;

    let plan = match kind {
        FaultKind::Error => FaultPlan::single(site),
        FaultKind::Panic => FaultPlan::single_panic(site),
    };
    let out = route_with_plan(&pkg, cfg, plan);

    // Stage-level faults degrade to all-sequential (no nets lost); per-net
    // faults cost at most the one net whose check fired; an LP fault only
    // freezes geometry.
    let max_lost = match site {
        FaultSite::AstarExpand | FaultSite::TileViaInsert => 1,
        _ => 0,
    };
    assert_isolated(&out, site, baseline_routed, max_lost);

    match site {
        // Stage-level sites mark their stage recovered...
        FaultSite::PreprocessPartition | FaultSite::AssignPeel | FaultSite::ConcurrentCommit => {
            let slot = stage_slot(&out, site).unwrap();
            match (kind, slot) {
                (FaultKind::Error, StageOutcome::Recovered(RouterError::FaultInjected { site: s })) => {
                    assert_eq!(*s, site)
                }
                (FaultKind::Panic, StageOutcome::Recovered(RouterError::Panic { .. })) => {}
                other => panic!("{site}: unexpected stage outcome {other:?}"),
            }
        }
        // ...an LP fault surfaces on whichever LP pass ran it...
        FaultSite::LpFactorize => {
            let recovered = [&out.diagnostics.lp_mid, &out.diagnostics.lp_final]
                .into_iter()
                .any(|o| matches!(o, StageOutcome::Recovered(_)));
            assert!(recovered, "{site}: no LP pass recorded the fault");
        }
        // ...and per-net sites cost exactly one attributed net failure.
        FaultSite::AstarExpand | FaultSite::TileViaInsert => {
            assert!(
                !out.diagnostics.net_failures.is_empty(),
                "{site}: per-net fault not attributed"
            );
        }
        // ...a pool-worker fault only kills a speculative plan, which is
        // recomputed authoritatively, so there is nothing to attribute
        // beyond the fired count asserted above (the thread-matrix
        // equivalence claims live in tests/thread_scaling.rs).
        FaultSite::PoolWorker => {}
        // Service-layer sites never fire inside `route()`; they are
        // exercised by the serve fault suite (tests/serve_faults.rs).
        FaultSite::ServeParse | FaultSite::ServeWorker | FaultSite::ServeCancel => {
            unreachable!("check_site is only called with flow sites")
        }
    }
}

#[test]
fn error_fault_at_preprocess_partition_is_isolated() {
    check_site(FaultSite::PreprocessPartition, FaultKind::Error);
}

#[test]
fn panic_fault_at_preprocess_partition_is_isolated() {
    check_site(FaultSite::PreprocessPartition, FaultKind::Panic);
}

#[test]
fn error_fault_at_assign_peel_is_isolated() {
    check_site(FaultSite::AssignPeel, FaultKind::Error);
}

#[test]
fn panic_fault_at_assign_peel_is_isolated() {
    check_site(FaultSite::AssignPeel, FaultKind::Panic);
}

#[test]
fn error_fault_at_concurrent_commit_is_isolated() {
    check_site(FaultSite::ConcurrentCommit, FaultKind::Error);
}

#[test]
fn panic_fault_at_concurrent_commit_is_isolated() {
    check_site(FaultSite::ConcurrentCommit, FaultKind::Panic);
}

#[test]
fn error_fault_at_lp_factorize_is_isolated() {
    check_site(FaultSite::LpFactorize, FaultKind::Error);
}

#[test]
fn panic_fault_at_lp_factorize_is_isolated() {
    check_site(FaultSite::LpFactorize, FaultKind::Panic);
}

#[test]
fn error_fault_at_astar_expand_is_isolated() {
    check_site(FaultSite::AstarExpand, FaultKind::Error);
}

#[test]
fn panic_fault_at_astar_expand_is_isolated() {
    check_site(FaultSite::AstarExpand, FaultKind::Panic);
}

#[test]
fn error_fault_at_tile_via_insert_is_isolated() {
    check_site(FaultSite::TileViaInsert, FaultKind::Error);
}

#[test]
fn panic_fault_at_tile_via_insert_is_isolated() {
    check_site(FaultSite::TileViaInsert, FaultKind::Panic);
}

#[test]
fn error_fault_at_pool_worker_is_isolated() {
    check_site(FaultSite::PoolWorker, FaultKind::Error);
}

#[test]
fn panic_fault_at_pool_worker_is_isolated() {
    check_site(FaultSite::PoolWorker, FaultKind::Panic);
}

#[test]
fn repeated_per_net_faults_cost_only_the_faulted_nets() {
    // Three consecutive A* faults cost at most three nets; the rest of the
    // flow is untouched.
    let pkg = two_chip_package(5);
    let cfg = RouterConfig::default().with_global_cells(10).without_concurrent();
    let baseline = InfoRouter::new(cfg).route(&pkg).stats.routed_nets;
    let plan = FaultPlan::none().with(FaultDirective {
        site: FaultSite::AstarExpand,
        kind: FaultKind::Error,
        skip: 1,
        fires: 3,
    });
    let out = route_with_plan(&pkg, cfg, plan);
    assert!(out.stats.routed_nets + 3 >= baseline);
    assert!(out
        .diagnostics
        .faults_fired
        .iter()
        .any(|(s, n)| *s == FaultSite::AstarExpand && *n == 3));
    for v in out.drc.violations() {
        assert!(matches!(v, drc::Violation::Disconnected { .. }));
    }
}

#[test]
fn empty_fault_plan_changes_nothing() {
    let pkg = two_chip_package(3);
    let cfg = RouterConfig::default().with_global_cells(10);
    let clean = InfoRouter::new(cfg).route(&pkg);
    let planned = route_with_plan(&pkg, cfg, FaultPlan::none());
    assert!(planned.diagnostics.all_ok());
    assert_eq!(planned.stats.routed_nets, clean.stats.routed_nets);
}
