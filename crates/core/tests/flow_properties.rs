//! Randomized end-to-end properties of the five-stage flow.

use info_geom::{Point, Rect};
use info_model::{drc, DesignRules, PackageBuilder};
use info_router::{InfoRouter, RouterConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Random two-chip package with facing pads (some shuffled) and a few
/// chip-to-board nets.
fn random_package(seed: u64) -> info_model::Package {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
        DesignRules::default(),
        rng.gen_range(2..=3),
    );
    let c1 = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
    let c2 = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));
    let k = rng.gen_range(2..6);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..k {
        let y = 300_000 + 64_000 * i as i64 + rng.gen_range(0..20_000);
        left.push(b.add_io_pad(c1, Point::new(480_000 - rng.gen_range(0..16_000), y)).unwrap());
        right.push(b.add_io_pad(c2, Point::new(920_000 + rng.gen_range(0..16_000), y)).unwrap());
    }
    // Shuffle the right side a little to create entanglement.
    for i in (1..right.len()).rev() {
        if rng.gen_bool(0.4) {
            let j = rng.gen_range(0..=i);
            right.swap(i, j);
        }
    }
    for i in 0..k {
        b.add_net(left[i], right[i]).unwrap();
    }
    // One board net when there's room.
    if rng.gen_bool(0.7) {
        let io = b.add_io_pad(c1, Point::new(480_000, 630_000)).unwrap();
        let g = b.add_bump_pad(Point::new(700_000, 120_000)).unwrap();
        b.add_net(io, g).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the instance, the final layout never contains crossings,
    /// spacing violations, or turn-rule breaks — only (possibly) unrouted
    /// nets.
    #[test]
    fn flow_output_is_always_drc_clean_modulo_unrouted(seed in 0u64..10_000) {
        let pkg = random_package(seed);
        let out = InfoRouter::new(RouterConfig::default().with_global_cells(12)).route(&pkg);
        for v in out.drc.violations() {
            prop_assert!(
                matches!(v, drc::Violation::Disconnected { .. }),
                "seed {seed}: unexpected violation {v}"
            );
        }
        // Every net the stats count as routed is individually connected.
        prop_assert_eq!(
            out.stats.routed_nets + out.drc.dirty_nets().len(),
            pkg.nets().len()
        );
    }

    /// `lpopt::optimize` is monotone on a fixed layout: never longer, and
    /// never more DRC violations.
    #[test]
    fn lp_optimize_is_monotone(seed in 0u64..5_000) {
        let pkg = random_package(seed);
        let cfg = RouterConfig::default().with_global_cells(12);
        let out = InfoRouter::new(cfg.without_lp()).route(&pkg);
        let violations_before = out.drc.violations().len();
        let wl_before: f64 = out.layout.routes().map(|r| r.length()).sum();
        let mut layout = out.layout.clone();
        let rep = info_router::lpopt::optimize(
            &pkg,
            &mut layout,
            &cfg,
            &info_router::FlowCtx::default(),
        );
        let wl_after: f64 = layout.routes().map(|r| r.length()).sum();
        prop_assert!(
            wl_after <= wl_before + 1.0,
            "seed {seed}: optimize lengthened {wl_before} -> {wl_after} ({rep:?})"
        );
        let violations_after = drc::check(&pkg, &layout).violations().len();
        prop_assert!(
            violations_after <= violations_before,
            "seed {seed}: optimize added violations {violations_before} -> {violations_after}"
        );
    }
}
