//! Experiment harness reproducing the paper's Table I and figure claims.
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I: routability / wirelength / runtime, Lin-ext vs ours, dense1–dense5 |
//! | `fig2_layers` | Fig. 2: minimum layer count for entangled nets, with vs without flexible vias |
//! | `fig5_mpsc` | Fig. 5: weighted vs unweighted MPSC on a congested channel |
//! | `fig7_lpopt` | Fig. 7: wirelength before/after LP-based layout optimization |
//! | `ablation_weights` | A1: chord-weight parameters on/off across the dense suite |
//! | `ablation_cells` | A2: global-cell grid sweep |
//! | `ablation_lp` | A3: LP stage on/off effect on routability and wirelength |
//!
//! Criterion micro-benchmarks live in `benches/`.

use std::time::Duration;

/// Formats a duration as fractional seconds for table output.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Geometric-mean helper used for the paper-style "Comparisons" row.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Splits the body of a JSON object or array into its top-level pieces
/// *as raw text*, so a writer can carry entries from an existing file
/// into a rewrite byte-for-byte (the splice discipline the bench
/// binaries use on `BENCH_rdl.json`: keys another binary owns must
/// survive a rewrite without reformatting).
///
/// `text` must be the full object/array including its outer braces.
/// Returns one string per element: for objects the `"key": value` text,
/// for arrays the element text, each trimmed of surrounding whitespace
/// and the separating comma. The scan is string- and escape-aware but
/// does not validate — feed it only text that already parsed as JSON.
pub fn json_pieces(text: &str) -> Vec<String> {
    let inner = text.trim();
    let inner = &inner[1..inner.len().saturating_sub(1)];
    let mut pieces = Vec::new();
    let (mut depth, mut in_str, mut escape) = (0usize, false, false);
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            ',' if depth == 0 => {
                let piece = inner[start..i].trim();
                if !piece.is_empty() {
                    pieces.push(piece.to_string());
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        pieces.push(tail.to_string());
    }
    pieces
}

/// The key of one `"key": value` piece returned by [`json_pieces`] for
/// an object, or `None` for a piece that does not start with a string
/// key (an array element).
pub fn json_piece_key(piece: &str) -> Option<&str> {
    let rest = piece.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1234)), "1.23");
    }

    #[test]
    fn json_pieces_splits_object_entries_verbatim() {
        let text = "{\n  \"a\": 1,\n  \"b\": {\"x\": [1, 2], \"y\": \"s,{}\"},\n  \"c\": [\n    {\"k\": 1},\n    {\"k\": 2}\n  ]\n}\n";
        let pieces = json_pieces(text);
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0], "\"a\": 1");
        assert_eq!(pieces[1], "\"b\": {\"x\": [1, 2], \"y\": \"s,{}\"}");
        assert!(pieces[2].starts_with("\"c\": ["), "{}", pieces[2]);
        assert_eq!(json_piece_key(&pieces[1]), Some("b"));
        // Array pieces keep their multi-line raw text.
        let value = pieces[2].split_once(':').unwrap().1.trim();
        let elems = json_pieces(value);
        assert_eq!(elems, ["{\"k\": 1}", "{\"k\": 2}"]);
        assert_eq!(json_piece_key(&elems[0]), None);
    }

    #[test]
    fn json_pieces_ignores_separators_inside_strings() {
        let pieces = json_pieces(r#"{"a": "1,2", "b": "\"q\",", "c": 3}"#);
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[1], r#""b": "\"q\",""#);
        assert_eq!(json_pieces("{}"), Vec::<String>::new());
        assert_eq!(json_pieces("[1, 2]"), ["1", "2"]);
    }
}
