//! Experiment harness reproducing the paper's Table I and figure claims.
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I: routability / wirelength / runtime, Lin-ext vs ours, dense1–dense5 |
//! | `fig2_layers` | Fig. 2: minimum layer count for entangled nets, with vs without flexible vias |
//! | `fig5_mpsc` | Fig. 5: weighted vs unweighted MPSC on a congested channel |
//! | `fig7_lpopt` | Fig. 7: wirelength before/after LP-based layout optimization |
//! | `ablation_weights` | A1: chord-weight parameters on/off across the dense suite |
//! | `ablation_cells` | A2: global-cell grid sweep |
//! | `ablation_lp` | A3: LP stage on/off effect on routability and wirelength |
//!
//! Criterion micro-benchmarks live in `benches/`.

use std::time::Duration;

/// Formats a duration as fractional seconds for table output.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Geometric-mean helper used for the paper-style "Comparisons" row.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1234)), "1.23");
    }
}
