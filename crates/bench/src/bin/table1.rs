//! Regenerates Table I: benchmark statistics plus routability, total
//! wirelength and runtime for Lin-ext and our via-based router on
//! dense1–dense5.
//!
//! Usage: `table1 [max_index]` (default 5; pass 3 for a quick run).

use info_baseline::LinExtRouter;
use info_bench::{geomean, secs};
use info_router::{InfoRouter, RouterConfig};
use std::time::Instant;

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("Table I — Lin-ext vs Ours (synthetic dense suite; see DESIGN.md substitutions)");
    println!(
        "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9} {:>9} | {:>12} {:>12} | {:>8} {:>8}",
        "Circuit", "#Chips", "|Q|", "|G|", "|N|", "Lw", "Lv",
        "Lin rt%", "Ours rt%", "Lin WL(um)", "Ours WL(um)", "Lin s", "Ours s"
    );

    let mut ratios_rt = Vec::new();
    let mut ratios_time = Vec::new();
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);

        let t0 = Instant::now();
        let base = LinExtRouter::new(RouterConfig::default()).route(&pkg);
        let base_time = t0.elapsed();

        let t1 = Instant::now();
        let ours = InfoRouter::new(RouterConfig::default()).route(&pkg);
        let ours_time = t1.elapsed();

        println!(
            "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9.1} {:>9.1} | {:>12.0} {:>12.0} | {:>8} {:>8}",
            format!("dense{idx}"),
            pkg.chips().len(),
            pkg.io_pad_count(),
            pkg.bump_pad_count(),
            pkg.nets().len(),
            pkg.wire_layer_count(),
            pkg.via_layer_count(),
            base.stats.routability_pct,
            ours.stats.routability_pct,
            base.stats.total_wirelength_um,
            ours.stats.total_wirelength_um,
            secs(base_time),
            secs(ours_time),
        );
        if ours.stats.routability_pct > 0.0 {
            ratios_rt.push(base.stats.routability_pct / ours.stats.routability_pct);
        }
        if ours_time.as_secs_f64() > 0.0 {
            ratios_time.push(base_time.as_secs_f64() / ours_time.as_secs_f64());
        }
    }
    println!(
        "Comparisons (geo-mean ratios, Lin-ext / Ours): routability {:.3}, runtime {:.3}",
        geomean(ratios_rt),
        geomean(ratios_time)
    );
    println!("(paper: routability 0.794, runtime 0.297)");
}
