//! Regenerates Table I: benchmark statistics plus routability, total
//! wirelength and runtime for Lin-ext and our via-based router on
//! dense1–dense5. Also emits `BENCH_rdl.json` with the per-circuit
//! numbers and the measured spatial-index speedup of the DRC query path
//! (indexed `drc::check` vs the reference `drc::check_naive`).
//!
//! Usage: `table1 [max_index]` (default 5; pass 3 for a quick run).
//! Routing is multi-threaded by default (`with_threads_auto`, capped at
//! 8); set `RDL_THREADS=<n>` to pin the worker count, `RDL_SCALING=0`
//! to skip the per-circuit thread-scaling matrix (each measured circuit
//! is otherwise re-routed at 1/2/4/8 threads with the layout hash
//! asserted identical at every count).
//!
//! A rewrite preserves what other binaries own: top-level keys spliced
//! by `loadtest`/`eco_sweep` are carried over byte-for-byte, and circuit
//! blocks this run did not re-route (e.g. dense4/5 under `table1 3`)
//! are kept from the existing file instead of being dropped.

use info_baseline::LinExtRouter;
use info_bench::{geomean, json_piece_key, json_pieces, secs};
use info_geom::{Point, Polyline};
use info_model::{drc, DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use info_router::serve::json;
use info_router::{InfoRouter, RouteOutcome, RouterConfig};
use info_telemetry::{Sink, TelemetryReport};
use std::time::{Duration, Instant};

struct Row {
    name: String,
    nets: usize,
    routability_pct: f64,
    wirelength_um: f64,
    runtime_s: f64,
    layout_hash: u64,
    drc_indexed_s: f64,
    drc_naive_s: f64,
    /// Which sweep path the production `drc::check` actually took on
    /// this layout ("indexed", "naive", or "mixed" across layers) — so a
    /// consumer reading `drc_speedup` knows whether the two timed paths
    /// did different work at all. Small circuits sit below
    /// `drc::INDEX_CUTOFF` on every layer, the auto path *is* the naive
    /// scan, and the honest ratio is ~1.0.
    drc_mode: &'static str,
    /// Thread-scaling matrix of this circuit (empty when skipped).
    scaling: Vec<ScalePoint>,
    /// Per-stage wall-clock (preprocess, concurrent, sequential, lp).
    stage_s: [f64; 4],
    /// Sequential-stage A\* statistics (see `info_tile::SearchStats`).
    search: info_router::SearchStats,
    /// Telemetry report of the routed run (counters, failure-reason
    /// counts, and the per-net journal summary).
    report: TelemetryReport,
    /// The same circuit routed with `congestion_mode` on.
    neg: NegRow,
}

/// One circuit's negotiated-congestion run, for the rip-up-vs-negotiated
/// comparison rows in BENCH_rdl.json and EXPERIMENTS.md.
struct NegRow {
    routability_pct: f64,
    wirelength_um: f64,
    runtime_s: f64,
    sequential_s: f64,
    layout_hash: u64,
    iterations: u32,
    converged: bool,
    declined: bool,
    endgame_iterations: u32,
    final_overuse: u32,
    reroutes: u64,
    ripup_wall_s: f64,
}

impl Row {
    fn drc_speedup(&self) -> f64 {
        if self.drc_indexed_s > 0.0 {
            self.drc_naive_s / self.drc_indexed_s
        } else {
            0.0
        }
    }
}

/// Production-scale DRC stress instance: a hand-built layout (no routing
/// required) of ~6k wire segments and vias on a 10 mm die, where the
/// all-pairs spacing sweep is genuinely quadratic. The routed dense1–2
/// layouts are too small for asymptotics to matter; this is the scale the
/// spatial index exists for.
fn drc_stress_instance() -> (Package, Layout) {
    let die = info_geom::Rect::new(Point::new(0, 0), Point::new(10_000_000, 10_000_000));
    let pkg = PackageBuilder::new(die, DesignRules::default(), 2)
        .build()
        .expect("empty stress package is valid");
    let mut layout = Layout::new(&pkg);
    const ROWS: i64 = 240;
    const PITCH: i64 = 40_000;
    const SEGS: i64 = 10;
    for row in 0..ROWS {
        let y = 50_000 + row * PITCH;
        for k in 0..SEGS {
            let x0 = 50_000 + k * 990_000;
            let path = Polyline::new(vec![Point::new(x0, y), Point::new(x0 + 900_000, y)]);
            layout.add_route(NetId(row as u32), WireLayer(0), path);
        }
    }
    for col in 0..ROWS {
        let x = 50_000 + col * PITCH;
        for k in 0..SEGS {
            let y0 = 50_000 + k * 990_000;
            let path = Polyline::new(vec![Point::new(x, y0), Point::new(x, y0 + 900_000)]);
            layout.add_route(NetId((ROWS + col) as u32), WireLayer(1), path);
        }
    }
    // Vias midway between wire rows/columns: far from all foreign geometry,
    // so the instance is violation-free and both checks do identical work.
    for i in 0..24 {
        for j in 0..24 {
            let c = Point::new(70_000 + i * 400_000, 70_000 + j * 400_000);
            layout.add_via(NetId(i as u32), c, 5_000, WireLayer(0), WireLayer(1), false);
        }
    }
    (pkg, layout)
}

/// One point of a circuit's thread-scaling curve: the same route at a
/// fixed worker count, with the speculative-planner counters that
/// explain the wall-clock (commit/conflict ratio, steal traffic, and
/// how the adaptive batch controller moved).
struct ScalePoint {
    threads: usize,
    runtime_s: f64,
    sequential_s: f64,
    layout_hash: u64,
    commits: u64,
    conflicts: u64,
    steals: u64,
    grows: u64,
    shrinks: u64,
}

impl ScalePoint {
    fn from_route(threads: usize, wall: Duration, out: &RouteOutcome) -> Self {
        let counter = |label: &str| {
            out.telemetry.as_ref().map_or(0, |r| r.counter(label))
        };
        ScalePoint {
            threads,
            runtime_s: wall.as_secs_f64(),
            sequential_s: out.timings.sequential.as_secs_f64(),
            layout_hash: out.layout.canonical_hash(),
            commits: counter("speculative_commits"),
            conflicts: counter("speculative_conflicts"),
            steals: counter("pool_steals"),
            grows: counter("speculative_batch_grows"),
            shrinks: counter("speculative_batch_shrinks"),
        }
    }
}

/// Paired, order-alternating best-of-five timing of the auto (indexed)
/// and naive DRC sweeps over one layout, returned as
/// `(indexed_s, naive_s)`. The old measurement ran all five indexed
/// reps before any naive rep, so process warm-up (allocator, page
/// cache) booked against whichever side went first — on circuits below
/// the index cutoff the two paths do *identical* work, yet dense1
/// reproducibly printed a 0.95x "speedup" that was pure ordering
/// artifact. Timing the two paths back to back within each round and
/// alternating which goes first cancels that drift; best-of-five per
/// path keeps the convergence behavior near the cutoff.
fn time_drc_pair(package: &Package, layout: &Layout) -> (f64, f64) {
    let time_one = |naive: bool| {
        let t = Instant::now();
        let report =
            if naive { drc::check_naive(package, layout) } else { drc::check(package, layout) };
        std::hint::black_box(report.violations().len());
        t.elapsed().as_secs_f64()
    };
    let (mut indexed, mut naive) = (f64::INFINITY, f64::INFINITY);
    for round in 0..5 {
        if round % 2 == 0 {
            indexed = indexed.min(time_one(false));
            naive = naive.min(time_one(true));
        } else {
            naive = naive.min(time_one(true));
            indexed = indexed.min(time_one(false));
        }
    }
    (indexed, naive)
}

/// Which sweep path `drc::check` took on this layout, from the per-layer
/// sweep counters: "indexed", "naive", "mixed", or "empty".
fn drc_mode(package: &Package, layout: &Layout) -> &'static str {
    let tel = Sink::enabled();
    std::hint::black_box(drc::check_with(package, layout, &tel).violations().len());
    let report = tel.report().expect("enabled sink yields a report");
    match (report.counter("drc_sweeps_indexed") > 0, report.counter("drc_sweeps_naive") > 0) {
        (true, false) => "indexed",
        (false, true) => "naive",
        (true, true) => "mixed",
        (false, false) => "empty",
    }
}

struct Stress {
    items: usize,
    indexed_s: f64,
    naive_s: f64,
}

impl Stress {
    fn speedup(&self) -> f64 {
        if self.indexed_s > 0.0 {
            self.naive_s / self.indexed_s
        } else {
            0.0
        }
    }
}

fn run_drc_stress() -> Stress {
    let (pkg, layout) = drc_stress_instance();
    let items = layout.routes().map(|r| r.path.segments().count()).sum::<usize>()
        + layout.vias().count() * 2;
    let (indexed_s, naive_s) = time_drc_pair(&pkg, &layout);
    let report = drc::check(&pkg, &layout);
    assert!(report.violations().is_empty(), "stress instance must be violation-free");
    Stress { items, indexed_s, naive_s }
}

/// `{"label": n, ...}` — one plain JSON object for a list of labeled
/// counts (labels are unique), so consumers index `counters["searches"]`
/// directly instead of scanning an array of single-key objects.
fn counts_json(counts: &[(&'static str, u64)]) -> String {
    let items: Vec<String> = counts.iter().map(|(label, n)| format!("\"{label}\": {n}")).collect();
    format!("{{{}}}", items.join(", "))
}

/// Per-net journal summary: one compact object per net that appears in
/// the route journal (attempt count, expansion work, escalations, final
/// outcome, rip-up victims).
fn journal_json(report: &TelemetryReport) -> String {
    let items: Vec<String> = report
        .net_summaries()
        .iter()
        .map(|s| {
            let failure = match s.last_failure {
                Some(f) => format!("\"{}\"", f.label()),
                None => "null".to_string(),
            };
            let victims: Vec<String> = s.victims.iter().map(|v| v.to_string()).collect();
            format!(
                "{{\"net\": {}, \"attempts\": {}, \"expansions\": {}, \"escalations\": {}, \
                 \"routed\": {}, \"last_failure\": {}, \"victims\": [{}]}}",
                s.net,
                s.attempts,
                s.expansions,
                s.escalations,
                s.routed,
                failure,
                victims.join(", "),
            )
        })
        .collect();
    format!("[\n      {}\n    ]", items.join(",\n      "))
}

/// Telemetry on-vs-off cost on dense2: median seconds per mode across
/// the paired rounds, plus the median of the per-round relative deltas
/// (`pct` is *not* derived from `on_s`/`off_s` — pairing within a round
/// is what cancels machine drift, so the delta medians separately).
struct Overhead {
    on_s: f64,
    off_s: f64,
    pct: f64,
}

/// Median of a small sample (sorts in place; even lengths average the
/// middle pair, which is what cancels the alternating first-of-pair
/// order effect across an even round count).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timing sample"));
    let n = xs.len();
    if n % 2 == 1 { xs[n / 2] } else { (xs[n / 2 - 1] + xs[n / 2]) / 2.0 }
}

/// Top-level keys `table1` itself generates; anything else found in an
/// existing `BENCH_rdl.json` (the `eco`/`loadtest` splices) is carried
/// into the rewrite byte-for-byte.
const OWNED_KEYS: [&str; 8] = [
    "bench",
    "generated_by",
    "threads",
    "circuits",
    "telemetry_overhead",
    "drc_speedup_geomean",
    "drc_stress",
    "drc_query_speedup",
];

/// The circuit name inside one raw circuit-object block.
fn circuit_name(elem: &str) -> Option<&str> {
    let rest = elem.split_once("\"name\":")?.1.trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// Splits an existing `BENCH_rdl.json` into the top-level pieces other
/// binaries own (kept verbatim) and the old circuit blocks by name (kept
/// for circuits this run did not re-route).
fn carried_sections(old: &str) -> (Vec<String>, Vec<(String, String)>) {
    let mut preserved = Vec::new();
    let mut circuits = Vec::new();
    for piece in json_pieces(old) {
        match json_piece_key(&piece) {
            Some("circuits") => {
                let value = piece.split_once(':').map_or("", |(_, v)| v.trim());
                for elem in json_pieces(value) {
                    if let Some(name) = circuit_name(&elem) {
                        circuits.push((name.to_string(), elem.clone()));
                    }
                }
            }
            Some(key) if !OWNED_KEYS.contains(&key) => preserved.push(piece),
            _ => {}
        }
    }
    (preserved, circuits)
}

/// One line of thread-scaling points (`[]` when the matrix was skipped).
fn scaling_json(points: &[ScalePoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\": {}, \"runtime_s\": {:.4}, \"sequential_s\": {:.4}, \
                 \"layout_hash\": \"{:016x}\", \"speculative_commits\": {}, \
                 \"speculative_conflicts\": {}, \"pool_steals\": {}, \
                 \"batch_grows\": {}, \"batch_shrinks\": {}}}",
                p.threads,
                p.runtime_s,
                p.sequential_s,
                p.layout_hash,
                p.commits,
                p.conflicts,
                p.steals,
                p.grows,
                p.shrinks,
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// One circuit block (no leading indent, no trailing comma).
fn circuit_json(r: &Row) -> String {
    format!(
        "{{\"name\": \"{}\", \"nets\": {}, \"routability_pct\": {:.3}, \
         \"wirelength_um\": {:.1}, \"runtime_s\": {:.4}, \"layout_hash\": \"{:016x}\", \
         \"drc_indexed_s\": {:.6}, \"drc_naive_s\": {:.6}, \"drc_speedup\": {:.2}, \
         \"drc_mode\": \"{}\", \
         \"stage_s\": {{\"preprocess\": {:.4}, \"concurrent\": {:.4}, \
         \"sequential\": {:.4}, \"lp\": {:.4}}}, \
         \"search\": {{\"searches\": {}, \"nodes_expanded\": {}, \
         \"window_escalations\": {}, \"escalation_expansions\": {}, \"heap_peak\": {}, \
         \"heuristic_tightenings\": {}}}, \
         \"ripup_wall_s\": {:.4}, \
         \"thread_scaling\": {}, \
         \"negotiated\": {{\"routability_pct\": {:.3}, \"wirelength_um\": {:.1}, \
         \"runtime_s\": {:.4}, \"sequential_s\": {:.4}, \"layout_hash\": \"{:016x}\", \
         \"iterations\": {}, \"converged\": {}, \"declined\": {}, \
         \"endgame_iterations\": {}, \"final_overuse\": {}, \
         \"reroutes\": {}, \"ripup_wall_s\": {:.4}}}, \
         \"failure_reasons\": {}, \
         \"counters\": {}, \
         \"journal\": {}}}",
        r.name,
        r.nets,
        r.routability_pct,
        r.wirelength_um,
        r.runtime_s,
        r.layout_hash,
        r.drc_indexed_s,
        r.drc_naive_s,
        r.drc_speedup(),
        r.drc_mode,
        r.stage_s[0],
        r.stage_s[1],
        r.stage_s[2],
        r.stage_s[3],
        r.search.searches,
        r.search.nodes_expanded,
        r.search.window_escalations,
        r.search.escalation_expansions,
        r.search.heap_peak,
        r.search.heuristic_tightenings,
        r.report.counter("ripup_wall_us") as f64 / 1e6,
        scaling_json(&r.scaling),
        r.neg.routability_pct,
        r.neg.wirelength_um,
        r.neg.runtime_s,
        r.neg.sequential_s,
        r.neg.layout_hash,
        r.neg.iterations,
        r.neg.converged,
        r.neg.declined,
        r.neg.endgame_iterations,
        r.neg.final_overuse,
        r.neg.reroutes,
        r.neg.ripup_wall_s,
        counts_json(&r.report.failure_counts()),
        counts_json(&r.report.counters),
        journal_json(&r.report),
    )
}

fn write_bench_json(rows: &[Row], stress: &Stress, threads: usize, overhead: Option<&Overhead>) {
    let (preserved, old_circuits) = match std::fs::read_to_string("BENCH_rdl.json") {
        Ok(old) if json::parse(&old).is_ok() => carried_sections(&old),
        _ => Default::default(),
    };
    let mut blocks: Vec<(String, String)> =
        rows.iter().map(|r| (r.name.clone(), circuit_json(r))).collect();
    let fresh = blocks.len();
    for (name, text) in old_circuits {
        if !blocks.iter().any(|(n, _)| *n == name) {
            blocks.push((name, text));
        }
    }
    if blocks.len() > fresh {
        let carried: Vec<&str> = blocks[fresh..].iter().map(|(n, _)| n.as_str()).collect();
        println!("carrying over committed circuit blocks not re-run: {}", carried.join(", "));
    }
    blocks.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n");
    for piece in &preserved {
        out.push_str(&format!("  {piece},\n"));
    }
    out.push_str("  \"bench\": \"rdl\",\n");
    out.push_str("  \"generated_by\": \"table1\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"circuits\": [\n");
    for (i, (_, text)) in blocks.iter().enumerate() {
        out.push_str("    ");
        out.push_str(text);
        out.push_str(if i + 1 < blocks.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    if let Some(oh) = overhead {
        out.push_str(&format!(
            "  \"telemetry_overhead\": {{\"circuit\": \"dense2\", \"on_s\": {:.4}, \
             \"off_s\": {:.4}, \"overhead_pct\": {:.2}}},\n",
            oh.on_s, oh.off_s, oh.pct
        ));
    }
    out.push_str(&format!(
        "  \"drc_speedup_geomean\": {:.2},\n",
        geomean(rows.iter().map(Row::drc_speedup))
    ));
    out.push_str(&format!(
        "  \"drc_stress\": {{\"items\": {}, \"indexed_s\": {:.6}, \"naive_s\": {:.6}, \
         \"speedup\": {:.2}}},\n",
        stress.items,
        stress.indexed_s,
        stress.naive_s,
        stress.speedup(),
    ));
    out.push_str(&format!("  \"drc_query_speedup\": {:.2}\n", stress.speedup()));
    out.push_str("}\n");
    // The merge carries raw text from the old file; refuse to clobber
    // the artifact with anything that does not round-trip as JSON.
    if let Err(e) = json::parse(&out) {
        eprintln!("refusing to write BENCH_rdl.json: merged output is invalid JSON: {e}");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_rdl.json", &out) {
        Ok(()) => println!("wrote BENCH_rdl.json"),
        Err(e) => eprintln!("could not write BENCH_rdl.json: {e}"),
    }
}

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    // Multi-threaded by default: the parallel planner is the production
    // configuration now, so the published numbers are measured with it.
    let threads: usize = std::env::var("RDL_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| RouterConfig::default().with_threads_auto().threads);
    let scaling_on = std::env::var("RDL_SCALING").map_or(true, |v| v != "0");
    println!("Table I — Lin-ext vs Ours (synthetic dense suite; see DESIGN.md substitutions)");
    println!(
        "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9} {:>9} | {:>12} {:>12} | {:>8} {:>8}",
        "Circuit", "#Chips", "|Q|", "|G|", "|N|", "Lw", "Lv",
        "Lin rt%", "Ours rt%", "Lin WL(um)", "Ours WL(um)", "Lin s", "Ours s"
    );

    let mut ratios_rt = Vec::new();
    let mut ratios_time = Vec::new();
    let mut rows = Vec::new();
    // Paired-round telemetry overhead measurement for dense2.
    let mut overhead: Option<Overhead> = None;
    // `threads` as the router config actually clamps/records it, so the
    // JSON "threads" field is the configured value, not the raw env var.
    let configured_threads = RouterConfig::default().with_threads(threads).threads;
    println!(
        "routing with {configured_threads} worker thread(s) \
         (RDL_THREADS overrides; scaling matrix {})",
        if scaling_on { "on" } else { "off (RDL_SCALING=0)" }
    );
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);

        let t0 = Instant::now();
        let base = LinExtRouter::new(RouterConfig::default()).route(&pkg);
        let base_time = t0.elapsed();

        // Telemetry on for the measured run: the journal and counters go
        // into BENCH_rdl.json, and the disabled-sink overhead is bounded
        // separately below (`telemetry_overhead`).
        let cfg = RouterConfig::default().with_threads(threads).with_telemetry();
        let t1 = Instant::now();
        let ours = InfoRouter::new(cfg).route(&pkg);
        let ours_time = t1.elapsed();
        if idx == 2 {
            // Paired rounds with alternating order: each round routes
            // telemetry-on and -off back to back and contributes one
            // relative delta; the *median* delta is the overhead
            // estimate. Pairing cancels the process-level drift that
            // dominates at ~20 s per route (identical-config runs on
            // one core spread by ±6%, several times the genuine
            // disabled-sink cost), alternating which mode goes first
            // cancels the first-of-pair slowdown (consecutive routes in
            // one process speed up as the allocator and page cache
            // warm — with a fixed order that slope books against one
            // mode), and the median discards the odd round the machine
            // stole. The measured run above is the warm-up, not a
            // sample — the process's first dense2 route is reliably its
            // slowest.
            let route_on = |t: &mut f64| {
                let cfg2 = RouterConfig::default().with_threads(threads).with_telemetry();
                let t0 = Instant::now();
                let on = InfoRouter::new(cfg2).route(&pkg);
                *t = t0.elapsed().as_secs_f64();
                assert_eq!(
                    on.layout.canonical_hash(),
                    ours.layout.canonical_hash(),
                    "telemetry-on rerun must reproduce the dense2 layout"
                );
            };
            let route_off = |t: &mut f64| {
                let t0 = Instant::now();
                let off =
                    InfoRouter::new(RouterConfig::default().with_threads(threads)).route(&pkg);
                *t = t0.elapsed().as_secs_f64();
                assert_eq!(
                    off.layout.canonical_hash(),
                    ours.layout.canonical_hash(),
                    "telemetry must not change the dense2 layout"
                );
            };
            let mut on_times = Vec::new();
            let mut off_times = Vec::new();
            let mut deltas = Vec::new();
            for round in 0..4 {
                let (mut on_s, mut off_s) = (0.0, 0.0);
                if round % 2 == 0 {
                    route_on(&mut on_s);
                    route_off(&mut off_s);
                } else {
                    route_off(&mut off_s);
                    route_on(&mut on_s);
                }
                deltas.push((on_s / off_s - 1.0) * 100.0);
                on_times.push(on_s);
                off_times.push(off_s);
            }
            overhead = Some(Overhead {
                on_s: median(&mut on_times),
                off_s: median(&mut off_times),
                pct: median(&mut deltas),
            });
        }

        // Negotiated-congestion run of the same circuit (DESIGN.md §4h):
        // same config plus `congestion_mode`, timed and journaled
        // separately so the JSON carries both sides of the comparison.
        let cfg_neg =
            RouterConfig::default().with_threads(threads).with_telemetry().with_congestion_mode();
        let t2 = Instant::now();
        let negotiated = InfoRouter::new(cfg_neg).route(&pkg);
        let neg_time = t2.elapsed();
        let negst = negotiated.negotiation.clone().unwrap_or_default();
        let neg_report = negotiated.telemetry.unwrap_or_default();
        let neg = NegRow {
            routability_pct: negotiated.stats.routability_pct,
            wirelength_um: negotiated.stats.total_wirelength_um,
            runtime_s: neg_time.as_secs_f64(),
            sequential_s: negotiated.timings.sequential.as_secs_f64(),
            layout_hash: negotiated.layout.canonical_hash(),
            iterations: negst.iterations,
            converged: negst.converged,
            declined: negst.declined,
            endgame_iterations: negst.endgame_iterations,
            final_overuse: negst.final_overuse,
            reroutes: negst.reroutes,
            ripup_wall_s: neg_report.counter("ripup_wall_us") as f64 / 1e6,
        };
        println!(
            "  negotiated: rt {:.1}%  seq {:.2}s (total {:.2}s)  iters {}  converged {}  \
             declined {}  endgame {}  reroutes {}  ripup {:.2}s",
            neg.routability_pct,
            neg.sequential_s,
            neg.runtime_s,
            neg.iterations,
            neg.converged,
            neg.declined,
            neg.endgame_iterations,
            neg.reroutes,
            neg.ripup_wall_s,
        );
        println!(
            "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9.1} {:>9.1} | {:>12.0} {:>12.0} | {:>8} {:>8}",
            format!("dense{idx}"),
            pkg.chips().len(),
            pkg.io_pad_count(),
            pkg.bump_pad_count(),
            pkg.nets().len(),
            pkg.wire_layer_count(),
            pkg.via_layer_count(),
            base.stats.routability_pct,
            ours.stats.routability_pct,
            base.stats.total_wirelength_um,
            ours.stats.total_wirelength_um,
            secs(base_time),
            secs(ours_time),
        );
        if ours.stats.routability_pct > 0.0 {
            ratios_rt.push(base.stats.routability_pct / ours.stats.routability_pct);
        }
        if ours_time.as_secs_f64() > 0.0 {
            ratios_time.push(base_time.as_secs_f64() / ours_time.as_secs_f64());
        }

        // Thread-scaling matrix: the same circuit at 1/2/4/8 workers.
        // The configured-thread point reuses the measured run above;
        // every other point routes fresh. Identical layout hashes at
        // every count are the parallel planner's core contract — a
        // divergence here is a bug, not a data point, so it aborts.
        let mut scaling = Vec::new();
        if scaling_on {
            for t in [1usize, 2, 4, 8] {
                let point = if t == configured_threads {
                    ScalePoint::from_route(t, ours_time, &ours)
                } else {
                    let cfg_t = RouterConfig::default().with_threads(t).with_telemetry();
                    let ts = Instant::now();
                    let out = InfoRouter::new(cfg_t).route(&pkg);
                    ScalePoint::from_route(t, ts.elapsed(), &out)
                };
                assert_eq!(
                    point.layout_hash,
                    ours.layout.canonical_hash(),
                    "dense{idx}: layout diverged at {t} threads"
                );
                scaling.push(point);
            }
            let one = scaling[0].sequential_s;
            let curve: Vec<String> = scaling
                .iter()
                .map(|p| {
                    format!(
                        "{}t {:.2}s ({:.2}x, {}c/{}x/{}s)",
                        p.threads,
                        p.sequential_s,
                        one / p.sequential_s.max(1e-9),
                        p.commits,
                        p.conflicts,
                        p.steals,
                    )
                })
                .collect();
            println!("  thread scaling (sequential stage): {}", curve.join(", "));
        }

        let (drc_indexed_s, drc_naive_s) = time_drc_pair(&pkg, &ours.layout);
        rows.push(Row {
            name: format!("dense{idx}"),
            nets: pkg.nets().len(),
            routability_pct: ours.stats.routability_pct,
            wirelength_um: ours.stats.total_wirelength_um,
            runtime_s: ours_time.as_secs_f64(),
            layout_hash: ours.layout.canonical_hash(),
            drc_indexed_s,
            drc_naive_s,
            drc_mode: drc_mode(&pkg, &ours.layout),
            scaling,
            stage_s: [
                ours.timings.preprocess.as_secs_f64(),
                ours.timings.concurrent.as_secs_f64(),
                ours.timings.sequential.as_secs_f64(),
                ours.timings.lp.as_secs_f64(),
            ],
            search: ours.timings.search,
            report: ours.telemetry.unwrap_or_default(),
            neg,
        });
    }
    println!(
        "Comparisons (geo-mean ratios, Lin-ext / Ours): routability {:.3}, runtime {:.3}",
        geomean(ratios_rt),
        geomean(ratios_time)
    );
    println!("(paper: routability 0.794, runtime 0.297)");
    println!(
        "DRC on final layouts: indexed vs naive geo-mean speedup {:.2}x",
        geomean(rows.iter().map(Row::drc_speedup))
    );
    let stress = run_drc_stress();
    println!(
        "DRC query path (stress, {} items): indexed {:.4}s vs naive {:.4}s = {:.2}x",
        stress.items,
        stress.indexed_s,
        stress.naive_s,
        stress.speedup(),
    );
    if let Some(oh) = &overhead {
        println!(
            "Telemetry overhead (dense2): median on {:.2}s vs off {:.2}s, \
             median paired delta {:+.2}%",
            oh.on_s, oh.off_s, oh.pct
        );
    }
    write_bench_json(&rows, &stress, configured_threads, overhead.as_ref());
}
