//! Regenerates Table I: benchmark statistics plus routability, total
//! wirelength and runtime for Lin-ext and our via-based router on
//! dense1–dense5. Also emits `BENCH_rdl.json` with the per-circuit
//! numbers and the measured spatial-index speedup of the DRC query path
//! (indexed `drc::check` vs the reference `drc::check_naive`).
//!
//! Usage: `table1 [max_index]` (default 5; pass 3 for a quick run).
//! Set `RDL_THREADS=<n>` to route with the parallel sequential planner.

use info_baseline::LinExtRouter;
use info_bench::{geomean, secs};
use info_geom::{Point, Polyline};
use info_model::{drc, DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use info_router::{InfoRouter, RouterConfig};
use info_telemetry::TelemetryReport;
use std::time::Instant;

struct Row {
    name: String,
    nets: usize,
    routability_pct: f64,
    wirelength_um: f64,
    runtime_s: f64,
    layout_hash: u64,
    drc_indexed_s: f64,
    drc_naive_s: f64,
    /// Per-stage wall-clock (preprocess, concurrent, sequential, lp).
    stage_s: [f64; 4],
    /// Sequential-stage A\* statistics (see `info_tile::SearchStats`).
    search: info_router::SearchStats,
    /// Telemetry report of the routed run (counters, failure-reason
    /// counts, and the per-net journal summary).
    report: TelemetryReport,
    /// The same circuit routed with `congestion_mode` on.
    neg: NegRow,
}

/// One circuit's negotiated-congestion run, for the rip-up-vs-negotiated
/// comparison rows in BENCH_rdl.json and EXPERIMENTS.md.
struct NegRow {
    routability_pct: f64,
    wirelength_um: f64,
    runtime_s: f64,
    sequential_s: f64,
    layout_hash: u64,
    iterations: u32,
    converged: bool,
    declined: bool,
    endgame_iterations: u32,
    final_overuse: u32,
    reroutes: u64,
    ripup_wall_s: f64,
}

impl Row {
    fn drc_speedup(&self) -> f64 {
        if self.drc_indexed_s > 0.0 {
            self.drc_naive_s / self.drc_indexed_s
        } else {
            0.0
        }
    }
}

/// Production-scale DRC stress instance: a hand-built layout (no routing
/// required) of ~6k wire segments and vias on a 10 mm die, where the
/// all-pairs spacing sweep is genuinely quadratic. The routed dense1–2
/// layouts are too small for asymptotics to matter; this is the scale the
/// spatial index exists for.
fn drc_stress_instance() -> (Package, Layout) {
    let die = info_geom::Rect::new(Point::new(0, 0), Point::new(10_000_000, 10_000_000));
    let pkg = PackageBuilder::new(die, DesignRules::default(), 2)
        .build()
        .expect("empty stress package is valid");
    let mut layout = Layout::new(&pkg);
    const ROWS: i64 = 240;
    const PITCH: i64 = 40_000;
    const SEGS: i64 = 10;
    for row in 0..ROWS {
        let y = 50_000 + row * PITCH;
        for k in 0..SEGS {
            let x0 = 50_000 + k * 990_000;
            let path = Polyline::new(vec![Point::new(x0, y), Point::new(x0 + 900_000, y)]);
            layout.add_route(NetId(row as u32), WireLayer(0), path);
        }
    }
    for col in 0..ROWS {
        let x = 50_000 + col * PITCH;
        for k in 0..SEGS {
            let y0 = 50_000 + k * 990_000;
            let path = Polyline::new(vec![Point::new(x, y0), Point::new(x, y0 + 900_000)]);
            layout.add_route(NetId((ROWS + col) as u32), WireLayer(1), path);
        }
    }
    // Vias midway between wire rows/columns: far from all foreign geometry,
    // so the instance is violation-free and both checks do identical work.
    for i in 0..24 {
        for j in 0..24 {
            let c = Point::new(70_000 + i * 400_000, 70_000 + j * 400_000);
            layout.add_via(NetId(i as u32), c, 5_000, WireLayer(0), WireLayer(1), false);
        }
    }
    (pkg, layout)
}

/// Best-of-five timing of one DRC pass over the final layout. Five reps
/// because the routed layouts sit near the index cutoff where the two
/// paths do identical work: the reported ratio should converge to ~1.0,
/// and best-of converges with reps.
fn time_drc(package: &Package, layout: &Layout, naive: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        let report =
            if naive { drc::check_naive(package, layout) } else { drc::check(package, layout) };
        std::hint::black_box(report.violations().len());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Stress {
    items: usize,
    indexed_s: f64,
    naive_s: f64,
}

impl Stress {
    fn speedup(&self) -> f64 {
        if self.indexed_s > 0.0 {
            self.naive_s / self.indexed_s
        } else {
            0.0
        }
    }
}

fn run_drc_stress() -> Stress {
    let (pkg, layout) = drc_stress_instance();
    let items = layout.routes().map(|r| r.path.segments().count()).sum::<usize>()
        + layout.vias().count() * 2;
    let indexed_s = time_drc(&pkg, &layout, false);
    let naive_s = time_drc(&pkg, &layout, true);
    let report = drc::check(&pkg, &layout);
    assert!(report.violations().is_empty(), "stress instance must be violation-free");
    Stress { items, indexed_s, naive_s }
}

/// `{"label": n, ...}` — one plain JSON object for a list of labeled
/// counts (labels are unique), so consumers index `counters["searches"]`
/// directly instead of scanning an array of single-key objects.
fn counts_json(counts: &[(&'static str, u64)]) -> String {
    let items: Vec<String> = counts.iter().map(|(label, n)| format!("\"{label}\": {n}")).collect();
    format!("{{{}}}", items.join(", "))
}

/// Per-net journal summary: one compact object per net that appears in
/// the route journal (attempt count, expansion work, escalations, final
/// outcome, rip-up victims).
fn journal_json(report: &TelemetryReport) -> String {
    let items: Vec<String> = report
        .net_summaries()
        .iter()
        .map(|s| {
            let failure = match s.last_failure {
                Some(f) => format!("\"{}\"", f.label()),
                None => "null".to_string(),
            };
            let victims: Vec<String> = s.victims.iter().map(|v| v.to_string()).collect();
            format!(
                "{{\"net\": {}, \"attempts\": {}, \"expansions\": {}, \"escalations\": {}, \
                 \"routed\": {}, \"last_failure\": {}, \"victims\": [{}]}}",
                s.net,
                s.attempts,
                s.expansions,
                s.escalations,
                s.routed,
                failure,
                victims.join(", "),
            )
        })
        .collect();
    format!("[\n      {}\n    ]", items.join(",\n      "))
}

/// Telemetry on-vs-off cost on dense2: median seconds per mode across
/// the paired rounds, plus the median of the per-round relative deltas
/// (`pct` is *not* derived from `on_s`/`off_s` — pairing within a round
/// is what cancels machine drift, so the delta medians separately).
struct Overhead {
    on_s: f64,
    off_s: f64,
    pct: f64,
}

/// Median of a small sample (sorts in place; even lengths average the
/// middle pair, which is what cancels the alternating first-of-pair
/// order effect across an even round count).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timing sample"));
    let n = xs.len();
    if n % 2 == 1 { xs[n / 2] } else { (xs[n / 2 - 1] + xs[n / 2]) / 2.0 }
}

fn write_bench_json(rows: &[Row], stress: &Stress, threads: usize, overhead: Option<&Overhead>) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"rdl\",\n");
    out.push_str("  \"generated_by\": \"table1\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"circuits\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nets\": {}, \"routability_pct\": {:.3}, \
             \"wirelength_um\": {:.1}, \"runtime_s\": {:.4}, \"layout_hash\": \"{:016x}\", \
             \"drc_indexed_s\": {:.6}, \"drc_naive_s\": {:.6}, \"drc_speedup\": {:.2}, \
             \"stage_s\": {{\"preprocess\": {:.4}, \"concurrent\": {:.4}, \
             \"sequential\": {:.4}, \"lp\": {:.4}}}, \
             \"search\": {{\"searches\": {}, \"nodes_expanded\": {}, \
             \"window_escalations\": {}, \"escalation_expansions\": {}, \"heap_peak\": {}, \
             \"heuristic_tightenings\": {}}}, \
             \"ripup_wall_s\": {:.4}, \
             \"negotiated\": {{\"routability_pct\": {:.3}, \"wirelength_um\": {:.1}, \
             \"runtime_s\": {:.4}, \"sequential_s\": {:.4}, \"layout_hash\": \"{:016x}\", \
             \"iterations\": {}, \"converged\": {}, \"declined\": {}, \
             \"endgame_iterations\": {}, \"final_overuse\": {}, \
             \"reroutes\": {}, \"ripup_wall_s\": {:.4}}}, \
             \"failure_reasons\": {}, \
             \"counters\": {}, \
             \"journal\": {}}}{}\n",
            r.name,
            r.nets,
            r.routability_pct,
            r.wirelength_um,
            r.runtime_s,
            r.layout_hash,
            r.drc_indexed_s,
            r.drc_naive_s,
            r.drc_speedup(),
            r.stage_s[0],
            r.stage_s[1],
            r.stage_s[2],
            r.stage_s[3],
            r.search.searches,
            r.search.nodes_expanded,
            r.search.window_escalations,
            r.search.escalation_expansions,
            r.search.heap_peak,
            r.search.heuristic_tightenings,
            r.report.counter("ripup_wall_us") as f64 / 1e6,
            r.neg.routability_pct,
            r.neg.wirelength_um,
            r.neg.runtime_s,
            r.neg.sequential_s,
            r.neg.layout_hash,
            r.neg.iterations,
            r.neg.converged,
            r.neg.declined,
            r.neg.endgame_iterations,
            r.neg.final_overuse,
            r.neg.reroutes,
            r.neg.ripup_wall_s,
            counts_json(&r.report.failure_counts()),
            counts_json(&r.report.counters),
            journal_json(&r.report),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    if let Some(oh) = overhead {
        out.push_str(&format!(
            "  \"telemetry_overhead\": {{\"circuit\": \"dense2\", \"on_s\": {:.4}, \
             \"off_s\": {:.4}, \"overhead_pct\": {:.2}}},\n",
            oh.on_s, oh.off_s, oh.pct
        ));
    }
    out.push_str(&format!(
        "  \"drc_speedup_geomean\": {:.2},\n",
        geomean(rows.iter().map(Row::drc_speedup))
    ));
    out.push_str(&format!(
        "  \"drc_stress\": {{\"items\": {}, \"indexed_s\": {:.6}, \"naive_s\": {:.6}, \
         \"speedup\": {:.2}}},\n",
        stress.items,
        stress.indexed_s,
        stress.naive_s,
        stress.speedup(),
    ));
    out.push_str(&format!("  \"drc_query_speedup\": {:.2}\n", stress.speedup()));
    out.push_str("}\n");
    match std::fs::write("BENCH_rdl.json", &out) {
        Ok(()) => println!("wrote BENCH_rdl.json"),
        Err(e) => eprintln!("could not write BENCH_rdl.json: {e}"),
    }
}

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let threads: usize = std::env::var("RDL_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!("Table I — Lin-ext vs Ours (synthetic dense suite; see DESIGN.md substitutions)");
    println!(
        "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9} {:>9} | {:>12} {:>12} | {:>8} {:>8}",
        "Circuit", "#Chips", "|Q|", "|G|", "|N|", "Lw", "Lv",
        "Lin rt%", "Ours rt%", "Lin WL(um)", "Ours WL(um)", "Lin s", "Ours s"
    );

    let mut ratios_rt = Vec::new();
    let mut ratios_time = Vec::new();
    let mut rows = Vec::new();
    // Paired-round telemetry overhead measurement for dense2.
    let mut overhead: Option<Overhead> = None;
    // `threads` as the router config actually clamps/records it, so the
    // JSON "threads" field is the configured value, not the raw env var.
    let configured_threads = RouterConfig::default().with_threads(threads).threads;
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);

        let t0 = Instant::now();
        let base = LinExtRouter::new(RouterConfig::default()).route(&pkg);
        let base_time = t0.elapsed();

        // Telemetry on for the measured run: the journal and counters go
        // into BENCH_rdl.json, and the disabled-sink overhead is bounded
        // separately below (`telemetry_overhead`).
        let cfg = RouterConfig::default().with_threads(threads).with_telemetry();
        let t1 = Instant::now();
        let ours = InfoRouter::new(cfg).route(&pkg);
        let ours_time = t1.elapsed();
        if idx == 2 {
            // Paired rounds with alternating order: each round routes
            // telemetry-on and -off back to back and contributes one
            // relative delta; the *median* delta is the overhead
            // estimate. Pairing cancels the process-level drift that
            // dominates at ~20 s per route (identical-config runs on
            // one core spread by ±6%, several times the genuine
            // disabled-sink cost), alternating which mode goes first
            // cancels the first-of-pair slowdown (consecutive routes in
            // one process speed up as the allocator and page cache
            // warm — with a fixed order that slope books against one
            // mode), and the median discards the odd round the machine
            // stole. The measured run above is the warm-up, not a
            // sample — the process's first dense2 route is reliably its
            // slowest.
            let route_on = |t: &mut f64| {
                let cfg2 = RouterConfig::default().with_threads(threads).with_telemetry();
                let t0 = Instant::now();
                let on = InfoRouter::new(cfg2).route(&pkg);
                *t = t0.elapsed().as_secs_f64();
                assert_eq!(
                    on.layout.canonical_hash(),
                    ours.layout.canonical_hash(),
                    "telemetry-on rerun must reproduce the dense2 layout"
                );
            };
            let route_off = |t: &mut f64| {
                let t0 = Instant::now();
                let off =
                    InfoRouter::new(RouterConfig::default().with_threads(threads)).route(&pkg);
                *t = t0.elapsed().as_secs_f64();
                assert_eq!(
                    off.layout.canonical_hash(),
                    ours.layout.canonical_hash(),
                    "telemetry must not change the dense2 layout"
                );
            };
            let mut on_times = Vec::new();
            let mut off_times = Vec::new();
            let mut deltas = Vec::new();
            for round in 0..4 {
                let (mut on_s, mut off_s) = (0.0, 0.0);
                if round % 2 == 0 {
                    route_on(&mut on_s);
                    route_off(&mut off_s);
                } else {
                    route_off(&mut off_s);
                    route_on(&mut on_s);
                }
                deltas.push((on_s / off_s - 1.0) * 100.0);
                on_times.push(on_s);
                off_times.push(off_s);
            }
            overhead = Some(Overhead {
                on_s: median(&mut on_times),
                off_s: median(&mut off_times),
                pct: median(&mut deltas),
            });
        }

        // Negotiated-congestion run of the same circuit (DESIGN.md §4h):
        // same config plus `congestion_mode`, timed and journaled
        // separately so the JSON carries both sides of the comparison.
        let cfg_neg =
            RouterConfig::default().with_threads(threads).with_telemetry().with_congestion_mode();
        let t2 = Instant::now();
        let negotiated = InfoRouter::new(cfg_neg).route(&pkg);
        let neg_time = t2.elapsed();
        let negst = negotiated.negotiation.clone().unwrap_or_default();
        let neg_report = negotiated.telemetry.unwrap_or_default();
        let neg = NegRow {
            routability_pct: negotiated.stats.routability_pct,
            wirelength_um: negotiated.stats.total_wirelength_um,
            runtime_s: neg_time.as_secs_f64(),
            sequential_s: negotiated.timings.sequential.as_secs_f64(),
            layout_hash: negotiated.layout.canonical_hash(),
            iterations: negst.iterations,
            converged: negst.converged,
            declined: negst.declined,
            endgame_iterations: negst.endgame_iterations,
            final_overuse: negst.final_overuse,
            reroutes: negst.reroutes,
            ripup_wall_s: neg_report.counter("ripup_wall_us") as f64 / 1e6,
        };
        println!(
            "  negotiated: rt {:.1}%  seq {:.2}s (total {:.2}s)  iters {}  converged {}  \
             declined {}  endgame {}  reroutes {}  ripup {:.2}s",
            neg.routability_pct,
            neg.sequential_s,
            neg.runtime_s,
            neg.iterations,
            neg.converged,
            neg.declined,
            neg.endgame_iterations,
            neg.reroutes,
            neg.ripup_wall_s,
        );
        println!(
            "{:<8} {:>6} {:>5} {:>5} {:>5} {:>4} {:>4} | {:>9.1} {:>9.1} | {:>12.0} {:>12.0} | {:>8} {:>8}",
            format!("dense{idx}"),
            pkg.chips().len(),
            pkg.io_pad_count(),
            pkg.bump_pad_count(),
            pkg.nets().len(),
            pkg.wire_layer_count(),
            pkg.via_layer_count(),
            base.stats.routability_pct,
            ours.stats.routability_pct,
            base.stats.total_wirelength_um,
            ours.stats.total_wirelength_um,
            secs(base_time),
            secs(ours_time),
        );
        if ours.stats.routability_pct > 0.0 {
            ratios_rt.push(base.stats.routability_pct / ours.stats.routability_pct);
        }
        if ours_time.as_secs_f64() > 0.0 {
            ratios_time.push(base_time.as_secs_f64() / ours_time.as_secs_f64());
        }
        rows.push(Row {
            name: format!("dense{idx}"),
            nets: pkg.nets().len(),
            routability_pct: ours.stats.routability_pct,
            wirelength_um: ours.stats.total_wirelength_um,
            runtime_s: ours_time.as_secs_f64(),
            layout_hash: ours.layout.canonical_hash(),
            drc_indexed_s: time_drc(&pkg, &ours.layout, false),
            drc_naive_s: time_drc(&pkg, &ours.layout, true),
            stage_s: [
                ours.timings.preprocess.as_secs_f64(),
                ours.timings.concurrent.as_secs_f64(),
                ours.timings.sequential.as_secs_f64(),
                ours.timings.lp.as_secs_f64(),
            ],
            search: ours.timings.search,
            report: ours.telemetry.unwrap_or_default(),
            neg,
        });
    }
    println!(
        "Comparisons (geo-mean ratios, Lin-ext / Ours): routability {:.3}, runtime {:.3}",
        geomean(ratios_rt),
        geomean(ratios_time)
    );
    println!("(paper: routability 0.794, runtime 0.297)");
    println!(
        "DRC on final layouts: indexed vs naive geo-mean speedup {:.2}x",
        geomean(rows.iter().map(Row::drc_speedup))
    );
    let stress = run_drc_stress();
    println!(
        "DRC query path (stress, {} items): indexed {:.4}s vs naive {:.4}s = {:.2}x",
        stress.items,
        stress.indexed_s,
        stress.naive_s,
        stress.speedup(),
    );
    if let Some(oh) = &overhead {
        println!(
            "Telemetry overhead (dense2): median on {:.2}s vs off {:.2}s, \
             median paired delta {:+.2}%",
            oh.on_s, oh.off_s, oh.pct
        );
    }
    write_bench_json(&rows, &stress, configured_threads, overhead.as_ref());
}
