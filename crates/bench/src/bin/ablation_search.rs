//! Sequential-search ablation: isolates the contribution of each of the
//! three A\*-cost axes — the edge-legality (adjacency) cache, the
//! allocation-free trace arena, and the ALT landmark heuristic — on the
//! dense suite.
//!
//! Rows are cumulative, lossless axes first: `baseline` disables all
//! three, `+legality` re-enables the adjacency cache, `+arena` adds the
//! trace arena (both are output-preserving, so their layout hashes must
//! equal the baseline's — the run asserts it), and `+alt` adds landmark
//! tables. ALT preserves per-net path *costs* (the heuristic stays
//! admissible and consistent) but may break equal-cost ties differently,
//! so its hash is reported rather than asserted.
//!
//! Usage: `ablation_search [max_index] [alt_k]` (defaults 2 and 8). The
//! EXPERIMENTS.md table is generated with `ablation_search 5`; CI runs
//! the default as a fast smoke.

use info_router::{InfoRouter, RouterConfig};
use std::time::Instant;

struct Cell {
    routability_pct: f64,
    nodes_expanded: u64,
    tightenings: u64,
    sequential_s: f64,
    layout_hash: u64,
}

fn run(pkg: &info_model::Package, cfg: RouterConfig) -> Cell {
    let out = InfoRouter::new(cfg).route(pkg);
    Cell {
        routability_pct: out.stats.routability_pct,
        nodes_expanded: out.timings.search.nodes_expanded,
        tightenings: out.timings.search.heuristic_tightenings,
        sequential_s: out.timings.sequential.as_secs_f64(),
        layout_hash: out.layout.canonical_hash(),
    }
}

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let alt_k: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let configs: Vec<(&str, RouterConfig)> = vec![
        ("baseline", RouterConfig::default().without_legality_cache().without_search_arena()),
        ("+legality", RouterConfig::default().without_search_arena()),
        ("+arena", RouterConfig::default()),
        ("+alt", RouterConfig::default().with_alt_landmarks(alt_k)),
    ];
    println!("Sequential-search ablation (cumulative rows; alt_k = {alt_k})");
    println!(
        "{:<8} {:<10} {:>6} {:>14} {:>12} {:>8}  layout_hash",
        "circuit", "config", "rt%", "nodes_expanded", "tightenings", "seq_s"
    );
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);
        let mut baseline_hash = None;
        for (name, cfg) in &configs {
            let t = Instant::now();
            let cell = run(&pkg, *cfg);
            let total_s = t.elapsed().as_secs_f64();
            println!(
                "{:<8} {:<10} {:>6.1} {:>14} {:>12} {:>8.2}  {:016x}  (total {:.2}s)",
                format!("dense{idx}"),
                name,
                cell.routability_pct,
                cell.nodes_expanded,
                cell.tightenings,
                cell.sequential_s,
                cell.layout_hash,
                total_s,
            );
            match *name {
                "baseline" => baseline_hash = Some(cell.layout_hash),
                // The legality cache and the trace arena are lossless by
                // construction; a hash drift here is a bug, not noise.
                "+legality" | "+arena" => assert_eq!(
                    Some(cell.layout_hash),
                    baseline_hash,
                    "{name} must be byte-identical to baseline on dense{idx}"
                ),
                _ => {}
            }
        }
    }
}
