//! Quick development check: run only the via-based router on one circuit.
//! `oursonly [idx] [neg]` — pass `neg` to route in negotiated-congestion
//! mode; `RDL_THREADS=<n>` sets the sequential worker count.
use std::time::Instant;
fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let neg = std::env::args().any(|a| a == "neg");
    let threads: usize =
        std::env::var("RDL_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let pkg = info_gen::dense(idx);
    let mut cfg = info_router::RouterConfig::default().with_threads(threads).with_telemetry();
    if neg {
        cfg = cfg.with_congestion_mode();
    }
    let t = Instant::now();
    let out = info_router::InfoRouter::new(cfg).route(&pkg);
    println!("dense{idx} OURS: {} in {:?} (conc {} seq {} fail {:?})",
        out.stats, t.elapsed(), out.concurrent_routed, out.sequential_routed, out.failed);
    println!("  sequential {:?}  hash {:016x}", out.timings.sequential, out.layout.canonical_hash());
    if let Some(n) = out.negotiation {
        println!(
            "  negotiation: iters {} converged {} declined {} endgame {} overuse {} reroutes {} history {:?}",
            n.iterations, n.converged, n.declined, n.endgame_iterations, n.final_overuse,
            n.reroutes, n.history_totals
        );
    }
    if let Some(rep) = &out.telemetry {
        for span in ["negotiation_iteration", "negotiation_endgame_iteration"] {
            let iters: Vec<String> = rep
                .spans
                .iter()
                .filter(|(n, _)| *n == span)
                .map(|(_, s)| format!("{s:.2}"))
                .collect();
            if !iters.is_empty() {
                println!("  {span} spans (s): [{}]", iters.join(", "));
            }
        }
        println!("  ripup_wall {:.3}s", rep.counter("ripup_wall_us") as f64 / 1e6);
    }
}
