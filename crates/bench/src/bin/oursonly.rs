//! Quick development check: run only the via-based router on one circuit.
use std::time::Instant;
fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let pkg = info_gen::dense(idx);
    let t = Instant::now();
    let out = info_router::InfoRouter::new(info_router::RouterConfig::default()).route(&pkg);
    println!("dense{idx} OURS: {} in {:?} (conc {} seq {} fail {:?})",
        out.stats, t.elapsed(), out.concurrent_routed, out.sequential_routed, out.failed);
}
