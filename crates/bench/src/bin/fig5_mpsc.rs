//! Regenerates the Fig. 5 claim: congestion-aware chord weights close the
//! gap between layer assignment and detailed routing.
//!
//! On the congested-channel pattern, the unweighted (Supowit) assignment
//! happily floods the narrow corridor; the weighted assignment discounts
//! the corridor nets (Eq. (1)–(2)) so the concurrent stage commits nets
//! that detailed routing can actually finish.

use info_gen::patterns::congested_channel;
use info_model::Layout;
use info_router::{assign, concurrent, preprocess, FlowCtx, RouterConfig, RouterError};

fn run(
    weighted: bool,
    n_through: usize,
    n_local: usize,
) -> Result<(usize, usize, f64), RouterError> {
    let pkg = congested_channel(n_through, n_local, 1);
    let cfg = if weighted {
        RouterConfig::default()
    } else {
        RouterConfig::default().with_unweighted_mpsc()
    };
    let ctx = FlowCtx::default();
    let pre = preprocess::preprocess(&pkg, &cfg, &ctx)?;
    let asg = assign::assign_layers(&pre, &cfg, pkg.wire_layer_count(), &ctx)?;
    let mut layout = Layout::new(&pkg);
    let res = concurrent::route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &ctx)?;
    // Of the nets the assignment promised, how many did detailed routing
    // deliver cleanly?
    let report = info_model::drc::check(&pkg, &layout);
    let clean = res
        .routed
        .iter()
        .filter(|n| !report.dirty_nets().contains(n))
        .count();
    let promised = asg.assigned_count();
    let max_ov = pre
        .capacities
        .iter()
        .zip(pre.demands.iter())
        .map(|(c, d)| if d > c { d / c } else { 0.0 })
        .fold(0.0f64, f64::max);
    Ok((promised, clean, max_ov))
}

fn main() {
    println!("Fig. 5 — layer-assignment vs detailed-routing gap on a congested channel");
    println!(
        "{:<22} | {:>9} | {:>9} | {:>10}",
        "assignment", "assigned", "delivered", "max overflow"
    );
    for (through, local) in [(6usize, 3usize), (8, 4), (10, 4)] {
        let (pu, du, ov) = match run(false, through, local) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fig5_mpsc: unweighted t={through} l={local}: {e}");
                std::process::exit(1);
            }
        };
        let (pw, dw, _) = match run(true, through, local) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fig5_mpsc: weighted t={through} l={local}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "unweighted t={through} l={local:<3} | {:>9} | {:>9} | {:>10.2}",
            pu, du, ov
        );
        println!(
            "weighted   t={through} l={local:<3} | {:>9} | {:>9} |",
            pw, dw
        );
        println!("{}", "-".repeat(60));
    }
    println!("(the weighted assignment should deliver at least as many nets as it assigns,");
    println!(" while the unweighted one over-promises through the congested corridor)");
}
