//! Ablation A4: the chord-weight parameters α, β, γ, δ of Eq. (2).
//!
//! Runs the assignment + concurrent stage on the congested-channel pattern
//! under several parameterizations and reports the assignment/delivery
//! gap. The paper fixes α, β, γ, δ = 0.1, 1, 1, 2.

use info_model::Layout;
use info_router::{assign, concurrent, preprocess, FlowCtx, RouterConfig, RouterError};

fn run(cfg: RouterConfig) -> Result<(usize, usize), RouterError> {
    let pkg = info_gen::patterns::congested_channel(8, 4, 1);
    let ctx = FlowCtx::default();
    let pre = preprocess::preprocess(&pkg, &cfg, &ctx)?;
    let asg = assign::assign_layers(&pre, &cfg, pkg.wire_layer_count(), &ctx)?;
    let mut layout = Layout::new(&pkg);
    let res = concurrent::route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &ctx)?;
    let report = info_model::drc::check(&pkg, &layout);
    let delivered =
        res.routed.iter().filter(|n| !report.dirty_nets().contains(n)).count();
    Ok((asg.assigned_count(), delivered))
}

fn main() {
    println!("Ablation A4 — Eq. (2) parameters on the congested channel (t=8, l=4, 1 layer)");
    println!("{:<28} | {:>9} | {:>9}", "(alpha, beta, gamma, delta)", "assigned", "delivered");
    let base = RouterConfig::default();
    let combos = [
        ("paper (0.1, 1, 1, 2)", base),
        ("no detour (0, 1, 1, 2)", RouterConfig { alpha: 0.0, ..base }),
        ("no overflow (0.1, 0, 0, 2)", RouterConfig { beta: 0.0, gamma: 0.0, ..base }),
        ("max-only (0.1, 1, 0, 2)", RouterConfig { gamma: 0.0, ..base }),
        ("avg-only (0.1, 0, 1, 2)", RouterConfig { beta: 0.0, ..base }),
        ("log base 10 (0.1, 1, 1, 10)", RouterConfig { delta: 10.0, ..base }),
    ];
    for (label, cfg) in combos {
        match run(cfg) {
            Ok((assigned, delivered)) => {
                println!("{label:<28} | {assigned:>9} | {delivered:>9}");
            }
            Err(e) => {
                eprintln!("ablation_params: {label}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(dropping the overflow terms reverts to cardinality behavior: more assigned, fewer delivered)");
}
