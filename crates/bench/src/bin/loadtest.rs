//! Serve-path load test: `loadtest [jobs] [workers]` pushes N concurrent
//! dense1 jobs through the [`JobServer`] worker pool and reports
//! throughput and service-latency percentiles.
//!
//! Three contracts are enforced (nonzero exit on violation):
//!
//! - **byte identity** — every concurrent job's layout hash equals the
//!   single-job direct `InfoRouter::route` hash;
//! - **warm-cache reuse** — with identical jobs, the shared space cache
//!   must see at least one hit;
//! - **scaling** — with 4+ workers on a 4+ core machine, throughput must
//!   be at least 2x the serial rate (gate skipped on smaller machines).
//!   The serial rate is measured *with the same warm-space benefit* the
//!   pool gets (one cold route plus N-1 warm-cache routes), so the
//!   comparison is pool-vs-serial scheduling, not cache-vs-no-cache.
//!
//! The summary is spliced into `BENCH_rdl.json` under a top-level
//! `"loadtest"` key (the rest of the file is left byte-for-byte intact),
//! so CI's artifact upload carries it alongside the Table I numbers.

use info_gen::dense;
use info_router::serve::{json, JobRequest, JobServer, ServeConfig};
use info_router::{InfoRouter, RouterConfig, WarmSpaceCache};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    let idx = (sorted.len().saturating_sub(1) * pct) / 100;
    sorted[idx]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let pkg = Arc::new(dense(1));
    let rcfg = RouterConfig::default();

    // Single-job reference: the hash every concurrent job must reproduce,
    // and the serial-time denominator for the speedup figure. The serial
    // leg gets its own warm-space cache so it pays exactly what a serial
    // worker would for N identical jobs: one cold build, then N-1 warm
    // starts. The old measurement timed a single *cold* route and scaled
    // it by N, while the pool's wall clock enjoyed N-1 warm hits — the
    // denominator was inflated by (N-1) space builds the pool never did,
    // and the printed "speedup" swung below 1.0 on machines where the
    // pool was genuinely fine (0.94x with warm_hits 7 on one core).
    let serial_cache = Arc::new(WarmSpaceCache::new(2));
    let t0 = Instant::now();
    let direct =
        InfoRouter::new(rcfg).with_warm_cache(Arc::clone(&serial_cache)).route(&pkg);
    let serial_cold = t0.elapsed();
    let want = direct.layout.canonical_hash();
    let t0 = Instant::now();
    let rewarm = InfoRouter::new(rcfg).with_warm_cache(Arc::clone(&serial_cache)).route(&pkg);
    let serial_warm = t0.elapsed();
    assert_eq!(
        rewarm.layout.canonical_hash(),
        want,
        "warm-start direct route must reproduce the cold layout"
    );
    // Modeled serial wall for N jobs with the same cache benefit the
    // pool gets: one cold route, N-1 warm ones.
    let serial_total =
        serial_cold.as_secs_f64() + serial_warm.as_secs_f64() * jobs.saturating_sub(1) as f64;
    println!(
        "direct route: dense1 ({} nets) cold {:.3}s, warm {:.3}s, hash {want:016x}",
        pkg.nets().len(),
        serial_cold.as_secs_f64(),
        serial_warm.as_secs_f64()
    );

    let scfg = ServeConfig {
        workers,
        queue_capacity: jobs.max(1),
        ..ServeConfig::default()
    };
    let (server, results) = JobServer::start(scfg);
    let t0 = Instant::now();
    for i in 0..jobs {
        server
            .submit(JobRequest {
                id: format!("load-{i}"),
                package: Arc::clone(&pkg),
                cfg: rcfg,
                deadline: None,
                changes: None,
            })
            .unwrap_or_else(|r| panic!("submit load-{i} rejected: {r:?}"));
    }
    let mut latencies = Vec::with_capacity(jobs);
    let mut mismatches = 0usize;
    for _ in 0..jobs {
        let r = results
            .recv_timeout(Duration::from_secs(3600))
            .expect("job result");
        latencies.push(r.elapsed);
        match r.outcome {
            Ok(out) => {
                let got = out.layout.canonical_hash();
                if got != want {
                    eprintln!("{}: HASH MISMATCH {got:016x} != {want:016x}", r.id);
                    mismatches += 1;
                }
            }
            Err(e) => {
                eprintln!("{}: job failed: {e}", r.id);
                mismatches += 1;
            }
        }
    }
    let wall = t0.elapsed();
    let (hits, misses) = server.warm_cache().stats();
    server.shutdown();

    latencies.sort();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    let throughput = jobs as f64 / wall.as_secs_f64();
    let speedup = serial_total / wall.as_secs_f64();
    println!(
        "{jobs} jobs x {workers} workers: wall {:.3}s, {throughput:.2} jobs/s, \
         p50 {:.1}ms, p99 {:.1}ms, speedup {speedup:.2}x, warm {hits} hits / {misses} misses",
        wall.as_secs_f64(),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );

    if mismatches > 0 {
        eprintln!("{mismatches} of {jobs} jobs diverged from the direct route");
        std::process::exit(1);
    }
    if jobs > 1 && hits == 0 {
        eprintln!("warm cache saw no reuse across {jobs} identical jobs");
        std::process::exit(1);
    }
    // Scaling regression gate: with 4+ workers on a machine that can
    // actually run them (4+ cores), anything under 2x over serial means
    // the worker pool is serializing somewhere (lock held across a
    // route, queue starvation). Skipped on smaller machines, where
    // sub-serial throughput is the hardware's fault, not the pool's.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if workers >= 4 && cores >= 4 && speedup < 2.0 {
        eprintln!(
            "speedup {speedup:.2}x with {workers} workers on {cores} cores is below the 2.0x floor"
        );
        std::process::exit(1);
    }

    let summary = json::Json::Obj(vec![
        ("jobs".to_string(), json::Json::Num(jobs as f64)),
        ("workers".to_string(), json::Json::Num(workers as f64)),
        ("wall_s".to_string(), json::Json::Num((wall.as_secs_f64() * 1e4).round() / 1e4)),
        ("throughput_jobs_s".to_string(), json::Json::Num((throughput * 100.0).round() / 100.0)),
        ("p50_ms".to_string(), json::Json::Num((p50.as_secs_f64() * 1e4).round() / 10.0)),
        ("p99_ms".to_string(), json::Json::Num((p99.as_secs_f64() * 1e4).round() / 10.0)),
        // `serial_s` is the modeled per-job serial cost (cold + N-1 warm,
        // averaged) so speedup == serial_s * jobs / wall_s still holds;
        // the cold/warm split is published alongside it.
        (
            "serial_s".to_string(),
            json::Json::Num((serial_total / jobs.max(1) as f64 * 1e4).round() / 1e4),
        ),
        (
            "serial_cold_s".to_string(),
            json::Json::Num((serial_cold.as_secs_f64() * 1e4).round() / 1e4),
        ),
        (
            "serial_warm_s".to_string(),
            json::Json::Num((serial_warm.as_secs_f64() * 1e4).round() / 1e4),
        ),
        ("speedup".to_string(), json::Json::Num((speedup * 100.0).round() / 100.0)),
        ("warm_hits".to_string(), json::Json::Num(hits as f64)),
        ("warm_misses".to_string(), json::Json::Num(misses as f64)),
        ("hash".to_string(), json::Json::Str(format!("{want:016x}"))),
    ]);
    match splice_loadtest("BENCH_rdl.json", &summary) {
        Ok(()) => println!("updated BENCH_rdl.json (loadtest key)"),
        Err(e) => eprintln!("could not update BENCH_rdl.json: {e}"),
    }
}

/// Inserts/replaces the top-level `"loadtest"` key in `path` without
/// reformatting anything else: the existing `"loadtest"` line (if any) is
/// dropped and a fresh one is inserted right after the opening brace.
fn splice_loadtest(path: &str, summary: &json::Json) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    json::parse(&text).map_err(|e| format!("existing file is not valid JSON: {e}"))?;
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.retain(|l| !l.trim_start().starts_with("\"loadtest\""));
    let open = lines
        .iter()
        .position(|l| l.trim() == "{")
        .ok_or_else(|| "no top-level object".to_string())?;
    lines.insert(open + 1, format!("  \"loadtest\": {summary},"));
    let spliced = lines.join("\n") + "\n";
    json::parse(&spliced).map_err(|e| format!("splice produced invalid JSON: {e}"))?;
    std::fs::write(path, spliced).map_err(|e| format!("write: {e}"))
}
