//! ECO sweep: `eco_sweep [max_dense] [--gate PCT]` measures every
//! single-net-deletion ECO on dense1..=max_dense (default 3).
//!
//! For each circuit the base design is routed once through the full
//! five-stage flow, then each net is deleted in turn and re-routed as a
//! delta via [`InfoRouter::reroute_delta`] against a shared
//! [`WarmSpaceCache`] keyed on the prior layout — the deployment shape
//! the serve `"eco"` job kind uses. Reported per circuit: mean/max ECO
//! wall time, the mean as a percentage of the full-route time, and the
//! warm-cache hit counts that prove the "one build, N-1 warm patches"
//! contract.
//!
//! Two contracts are enforced (nonzero exit on violation):
//!
//! - **legality** — every ECO outcome is geometrically clean (violations
//!   only `Disconnected` on nets the outcome itself declares unrouted);
//! - **incrementality** — with `--gate PCT`, the mean single-net ECO
//!   time on every measured circuit must stay under PCT% of that
//!   circuit's full-route time (CI runs `eco_sweep 1 --gate 5`).
//!
//! The summary is spliced into `BENCH_rdl.json` under a top-level
//! `"eco"` key, leaving the rest of the file byte-for-byte intact.
//! Suite circuits no committed run has measured are listed under
//! `eco.skipped` (and announced on stderr) — a partial sweep never
//! publishes a file that silently looks complete.

use info_gen::dense;
use info_router::serve::json;
use info_router::{
    EcoChangeSet, InfoRouter, NetStatus, RouteOutcome, RouterConfig, WarmSpaceCache,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn geom_clean(out: &RouteOutcome) -> bool {
    use info_model::drc::Violation;
    let unrouted: std::collections::BTreeSet<usize> = out
        .net_status
        .iter()
        .filter(|(_, st)| *st != NetStatus::Routed)
        .map(|(id, _)| id.index())
        .collect();
    out.drc
        .violations()
        .iter()
        .all(|v| matches!(v, Violation::Disconnected { net } if unrouted.contains(&net.index())))
}

fn main() {
    let mut max_dense = 3usize;
    let mut gate_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gate" => {
                gate_pct = args.next().and_then(|v| v.parse().ok());
                if gate_pct.is_none() {
                    eprintln!("error: --gate requires a percentage");
                    std::process::exit(2);
                }
            }
            _ => match a.parse::<usize>() {
                Ok(n) if (1..=5).contains(&n) => max_dense = n,
                _ => {
                    eprintln!("usage: eco_sweep [max_dense 1-5] [--gate PCT]");
                    std::process::exit(2);
                }
            },
        }
    }

    let mut sections = Vec::new();
    let mut gate_failed = false;
    for d in 1..=max_dense {
        let pkg = dense(d);
        let nets = pkg.nets().len();
        let rcfg = RouterConfig::default();

        let t0 = Instant::now();
        let prior = InfoRouter::new(rcfg).route(&pkg);
        let full = t0.elapsed();
        println!(
            "dense{d}: full route {} nets in {:.3}s, hash {:016x}",
            nets,
            full.as_secs_f64(),
            prior.layout.canonical_hash()
        );

        let cache = Arc::new(WarmSpaceCache::new(2));
        let router = InfoRouter::new(rcfg).with_warm_cache(Arc::clone(&cache));
        let mut times: Vec<Duration> = Vec::with_capacity(nets);
        let mut rerouted_total = 0usize;
        let mut illegal = 0usize;
        for net in pkg.nets() {
            let changes = EcoChangeSet::new().remove_net(net.id);
            let t0 = Instant::now();
            let out = router
                .reroute_delta(&pkg, &prior, &changes)
                .unwrap_or_else(|e| panic!("dense{d}: delete net {}: {e:?}", net.id.index()));
            times.push(t0.elapsed());
            if !geom_clean(&out) {
                eprintln!(
                    "dense{d}: deleting net {} left DRC violations: {:?}",
                    net.id.index(),
                    out.drc.violations()
                );
                illegal += 1;
            }
            rerouted_total += out.eco.as_ref().map_or(0, |s| s.nets_rerouted);
        }
        let (hits, misses) = cache.stats();
        let mean = times.iter().sum::<Duration>() / times.len().max(1) as u32;
        let max = times.iter().max().copied().unwrap_or_default();
        let mean_pct = 100.0 * mean.as_secs_f64() / full.as_secs_f64();
        println!(
            "dense{d}: {nets} single-net ECOs: mean {:.1}ms ({mean_pct:.2}% of full), \
             max {:.1}ms, {rerouted_total} nets re-routed total, warm {hits} hits / {misses} misses",
            mean.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        );

        if illegal > 0 {
            eprintln!("dense{d}: {illegal} of {nets} ECOs were geometrically illegal");
            std::process::exit(1);
        }
        if let Some(gate) = gate_pct {
            if mean_pct > gate {
                eprintln!(
                    "dense{d}: GATE FAILED: mean single-net ECO is {mean_pct:.2}% of the \
                     full-route time (budget {gate}%)"
                );
                gate_failed = true;
            }
        }

        sections.push((
            format!("dense{d}"),
            json::Json::Obj(vec![
                ("nets".to_string(), json::Json::Num(nets as f64)),
                (
                    "full_s".to_string(),
                    json::Json::Num((full.as_secs_f64() * 1e4).round() / 1e4),
                ),
                (
                    "eco_mean_ms".to_string(),
                    json::Json::Num((mean.as_secs_f64() * 1e5).round() / 100.0),
                ),
                (
                    "eco_max_ms".to_string(),
                    json::Json::Num((max.as_secs_f64() * 1e5).round() / 100.0),
                ),
                (
                    "eco_mean_pct".to_string(),
                    json::Json::Num((mean_pct * 100.0).round() / 100.0),
                ),
                (
                    "nets_rerouted_total".to_string(),
                    json::Json::Num(rerouted_total as f64),
                ),
                ("warm_hits".to_string(), json::Json::Num(hits as f64)),
                ("warm_misses".to_string(), json::Json::Num(misses as f64)),
            ]),
        ));
    }

    if gate_failed {
        std::process::exit(1);
    }

    // Merge with any committed circuits this run did not cover, so a
    // dense1-only smoke (the CI gate) never drops the dense2/3 results.
    let mut merged = sections;
    if let Ok(text) = std::fs::read_to_string("BENCH_rdl.json") {
        if let Ok(json::Json::Obj(top)) = json::parse(&text) {
            if let Some((_, json::Json::Obj(prev))) = top.into_iter().find(|(k, _)| k == "eco") {
                for (name, stats) in prev {
                    if name == "skipped" || merged.iter().any(|(n, _)| *n == name) {
                        continue;
                    }
                    merged.push((name, stats));
                }
            }
        }
    }
    merged.sort_by(|(a, _), (b, _)| a.cmp(b));

    // Circuits of the dense suite with no section even after the merge
    // were never measured by *any* committed run — say so, in the JSON
    // and on stderr, instead of silently publishing a file that looks
    // complete. (The suite is dense1..=5; this run covered 1..=max_dense.)
    let skipped: Vec<String> = (1..=5)
        .map(|d| format!("dense{d}"))
        .filter(|name| !merged.iter().any(|(n, _)| n == name))
        .collect();
    if !skipped.is_empty() {
        eprintln!(
            "note: no ECO measurements for {} (this run swept dense1..=dense{max_dense}; \
             pass a larger max_dense to cover them)",
            skipped.join(", ")
        );
    }
    merged.push((
        "skipped".to_string(),
        json::Json::Arr(skipped.into_iter().map(json::Json::Str).collect()),
    ));

    let summary = json::Json::Obj(merged);
    match splice_key("BENCH_rdl.json", "eco", &summary) {
        Ok(()) => println!("updated BENCH_rdl.json (eco key)"),
        Err(e) => eprintln!("could not update BENCH_rdl.json: {e}"),
    }
}

/// Inserts/replaces a top-level `"<key>"` entry in `path` without
/// reformatting anything else (same discipline as loadtest's splice):
/// the existing line (if any) is dropped and a fresh single-line entry
/// is inserted right after the opening brace.
fn splice_key(path: &str, key: &str, summary: &json::Json) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    json::parse(&text).map_err(|e| format!("existing file is not valid JSON: {e}"))?;
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.retain(|l| !l.trim_start().starts_with(&format!("\"{key}\"")));
    let open = lines
        .iter()
        .position(|l| l.trim() == "{")
        .ok_or_else(|| "no top-level object".to_string())?;
    lines.insert(open + 1, format!("  \"{key}\": {summary},"));
    let spliced = lines.join("\n") + "\n";
    json::parse(&spliced).map_err(|e| format!("splice produced invalid JSON: {e}"))?;
    std::fs::write(path, spliced).map_err(|e| format!("write: {e}"))
}
