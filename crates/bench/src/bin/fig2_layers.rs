//! Regenerates the Fig. 2 claim: how many wire layers each router needs to
//! fully route `k` entangled (order-reversed) nets.
//!
//! The paper's example has k = 3: the no-flexible-via prior work needs 3
//! RDLs, the via-based router only 2. This harness sweeps k and reports
//! the minimum layer count at which each router reaches 100% routability.
//!
//! Usage: `fig2_layers [max_k]` (default 5).

use info_baseline::LinExtRouter;
use info_gen::patterns::entangled;
use info_router::{InfoRouter, RouterConfig};

fn min_layers<F: Fn(usize) -> bool>(upper: usize, fully_routed_with: F) -> Option<usize> {
    (1..=upper).find(|&l| fully_routed_with(l))
}

fn main() {
    let max_k: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("Fig. 2 — minimum wire layers for k entangled nets");
    println!("{:>3} | {:>14} | {:>14}", "k", "Lin-ext (no vias)", "Ours (vias)");
    for k in 1..=max_k {
        let upper = k + 1;
        let base = min_layers(upper, |l| {
            LinExtRouter::new(RouterConfig::default().with_global_cells(16))
                .route(&entangled(k, l))
                .stats
                .fully_routed()
        });
        let ours = min_layers(upper, |l| {
            InfoRouter::new(RouterConfig::default().with_global_cells(16))
                .route(&entangled(k, l))
                .stats
                .fully_routed()
        });
        let show = |o: Option<usize>| o.map_or("-".to_string(), |v| v.to_string());
        println!("{:>3} | {:>14} | {:>14}", k, show(base), show(ours));
    }
    println!("(paper's k = 3 example: 3 layers without flexible vias, 2 with)");
}
