//! Renders a benchmark circuit (optionally routed) to SVG.
//!
//! Usage: `render <dense-index> [--route] [output.svg]`

use info_model::svg;
use info_router::{InfoRouter, RouterConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let idx: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
    let route = args.iter().any(|a| a == "--route");
    let out = args
        .iter()
        .find(|a| a.ends_with(".svg"))
        .cloned()
        .unwrap_or_else(|| format!("dense{idx}.svg"));

    let pkg = info_gen::dense(idx);
    let doc = if route {
        let outcome = InfoRouter::new(RouterConfig::default()).route(&pkg);
        eprintln!("routed: {}", outcome.stats);
        svg::render(&pkg, Some(&outcome.layout))
    } else {
        svg::render(&pkg, None)
    };
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("render: failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
