//! Ablation A2: global-cell grid sweep (the paper fixes 30 × 30).

use info_router::{InfoRouter, RouterConfig};
use std::time::Instant;

fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("Ablation A2 — global-cell count sweep on dense{idx}");
    println!("{:>7} | {:>8} | {:>12} | {:>8}", "grid", "rt%", "WL (um)", "time (s)");
    let pkg = info_gen::dense(idx);
    for cells in [10usize, 20, 30, 40] {
        let t = Instant::now();
        let out =
            InfoRouter::new(RouterConfig::default().with_global_cells(cells)).route(&pkg);
        println!(
            "{:>4}x{:<2} | {:>8.1} | {:>12.0} | {:>8.2}",
            cells,
            cells,
            out.stats.routability_pct,
            out.stats.total_wirelength_um,
            t.elapsed().as_secs_f64()
        );
    }
}
