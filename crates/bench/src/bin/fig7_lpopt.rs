//! Regenerates the Fig. 7 claim: LP-based layout optimization shortens an
//! initial routing solution, converging within the paper's observed
//! iteration budget (≤ 50 on the largest benchmark).
//!
//! Usage: `fig7_lpopt [max_index]` (default 3).

use info_router::{lpopt, FlowCtx, InfoRouter, RouterConfig};
use std::time::Instant;

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("Fig. 7 — wirelength before/after LP-based layout optimization");
    println!(
        "{:<8} | {:>12} | {:>12} | {:>7} | {:>6} | {:>8}",
        "Circuit", "before (um)", "after (um)", "gain %", "iters", "time (s)"
    );
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);
        // Route without any LP to get the raw initial solution.
        let out = InfoRouter::new(RouterConfig::default().without_lp()).route(&pkg);
        let mut layout = out.layout.clone();
        let t = Instant::now();
        let rep =
            lpopt::optimize(&pkg, &mut layout, &RouterConfig::default(), &FlowCtx::default());
        let dt = t.elapsed();
        let gain = if rep.wirelength_before > 0.0 {
            100.0 * (rep.wirelength_before - rep.wirelength_after) / rep.wirelength_before
        } else {
            0.0
        };
        println!(
            "{:<8} | {:>12.0} | {:>12.0} | {:>7.2} | {:>6} | {:>8.2}",
            format!("dense{idx}"),
            rep.wirelength_before / 1_000.0,
            rep.wirelength_after / 1_000.0,
            gain,
            rep.iterations,
            dt.as_secs_f64()
        );
        if rep.iterations > 50 {
            eprintln!(
                "fig7_lpopt: dense{idx} needed {} iterations, above the paper's observed \
                 bound of 50",
                rep.iterations
            );
            std::process::exit(1);
        }
        // The optimized layout must remain DRC-clean wherever it was clean.
        let before_report = info_model::drc::check(&pkg, &out.layout);
        let after_report = info_model::drc::check(&pkg, &layout);
        if after_report.violations().len() > before_report.violations().len() {
            eprintln!(
                "fig7_lpopt: dense{idx}: optimization added DRC violations ({} -> {})",
                before_report.violations().len(),
                after_report.violations().len()
            );
            std::process::exit(1);
        }
    }
}
