//! Per-net failure report for a dense-suite circuit.
//!
//! Routes the circuit with telemetry enabled, then renders what the route
//! journal says about every unrouted net: how many attempts it got, how
//! much search work they burned, why the last one failed, and which
//! victims rip-up evicted along the way. Alongside the text report it
//! writes an SVG of the final layout with the failed nets' terminals
//! circled (`failure_report_dense<N>.svg`), so "where is the wall?" is a
//! one-glance question.
//!
//! Usage: `failure_report [index]` (default 2 — the congested circuit).
//! Set `RDL_THREADS=<n>` to route with the parallel sequential planner.

use info_model::svg::{self, Mark};
use info_router::{InfoRouter, RouterConfig};
use info_telemetry::NetSummary;
use std::time::Instant;

fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let threads: usize =
        std::env::var("RDL_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let pkg = info_gen::dense(idx);
    let cfg = RouterConfig::default().with_threads(threads).with_telemetry();
    let t = Instant::now();
    let out = InfoRouter::new(cfg).route(&pkg);
    let elapsed = t.elapsed().as_secs_f64();
    let report = out.telemetry.expect("telemetry was enabled");

    println!(
        "dense{idx}: {}/{} nets routed ({:.3}%) in {elapsed:.2}s",
        out.stats.routed_nets,
        pkg.nets().len(),
        out.stats.routability_pct
    );
    println!(
        "search: {} searches, {} expansions, {} window escalations \
         ({} expansions in escalated continuations)",
        report.counter("searches"),
        report.counter("nodes_expanded"),
        report.counter("window_escalations"),
        report.counter("escalation_expansions"),
    );
    println!(
        "rip-up: {} trials, {} committed, {} restored",
        report.counter("ripup_attempts"),
        report.counter("ripup_commits"),
        report.counter("snapshot_restores"),
    );
    let reasons: Vec<String> = report
        .failure_counts()
        .iter()
        .filter(|&&(_, n)| n > 0)
        .map(|&(label, n)| format!("{label}={n}"))
        .collect();
    println!(
        "failed attempts by reason: {}",
        if reasons.is_empty() { "none".to_string() } else { reasons.join(", ") }
    );

    let failed: Vec<NetSummary> =
        report.net_summaries().into_iter().filter(|s| !s.routed).collect();
    if failed.is_empty() {
        println!("\nno unrouted nets — nothing to report.");
    } else {
        println!("\nunrouted nets ({}):", failed.len());
        for s in &failed {
            let reason = s.last_failure.map_or("unknown", |f| f.label());
            let victims: Vec<String> = s.victims.iter().map(|v| v.to_string()).collect();
            println!(
                "  net {:>3}: {} attempts, {} expansions, {} escalations, last failure {}",
                s.net, s.attempts, s.expansions, s.escalations, reason
            );
            println!(
                "           rip-up victims tried: {}",
                if victims.is_empty() { "none".to_string() } else { victims.join(", ") }
            );
        }
    }

    // SVG overlay: circle both terminals of every unrouted net.
    let mut marks = Vec::new();
    for s in &failed {
        let id = info_model::NetId(s.net);
        let net = pkg.net(id);
        let reason = s.last_failure.map_or("unknown", |f| f.label());
        marks.push(Mark {
            at: pkg.pad(net.a).center,
            label: format!("net {} ({reason})", s.net),
            color: "#c00".into(),
        });
        marks.push(Mark {
            at: pkg.pad(net.b).center,
            label: format!("net {}", s.net),
            color: "#c00".into(),
        });
    }
    let doc = svg::render_with_marks(&pkg, Some(&out.layout), &marks);
    let path = format!("failure_report_dense{idx}.svg");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {path} ({} failed-net marks)", marks.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
