//! Ablation A3: the LP optimization stage's effect on routability and
//! wirelength (§IV analysis, second bullet: LP releases routing resources
//! after concurrent routing, helping the sequential stage).

use info_router::{InfoRouter, RouterConfig};

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("Ablation A3 — LP-based layout optimization on vs off");
    println!(
        "{:<8} | {:>9} {:>12} | {:>9} {:>12}",
        "Circuit", "LP rt%", "LP WL(um)", "noLP rt%", "noLP WL(um)"
    );
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);
        let with = InfoRouter::new(RouterConfig::default()).route(&pkg);
        let without = InfoRouter::new(RouterConfig::default().without_lp()).route(&pkg);
        println!(
            "{:<8} | {:>9.1} {:>12.0} | {:>9.1} {:>12.0}",
            format!("dense{idx}"),
            with.stats.routability_pct,
            with.stats.total_wirelength_um,
            without.stats.routability_pct,
            without.stats.total_wirelength_um,
        );
    }
}
