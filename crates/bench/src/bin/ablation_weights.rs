//! Ablation A1: weighted vs unweighted MPSC inside the full flow.

use info_router::{InfoRouter, RouterConfig};

fn main() {
    let max_index: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("Ablation A1 — weighted (paper Eq. 2) vs unweighted (Supowit) layer assignment");
    println!(
        "{:<8} | {:>12} {:>12} | {:>12} {:>12}",
        "Circuit", "w rt%", "w WL(um)", "unw rt%", "unw WL(um)"
    );
    for idx in 1..=max_index {
        let pkg = info_gen::dense(idx);
        let w = InfoRouter::new(RouterConfig::default()).route(&pkg);
        let u = InfoRouter::new(RouterConfig::default().with_unweighted_mpsc()).route(&pkg);
        println!(
            "{:<8} | {:>12.1} {:>12.0} | {:>12.1} {:>12.0}",
            format!("dense{idx}"),
            w.stats.routability_pct,
            w.stats.total_wirelength_um,
            u.stats.routability_pct,
            u.stats.total_wirelength_um,
        );
    }
}
