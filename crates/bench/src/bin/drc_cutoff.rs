//! Calibration sweep for `drc::INDEX_CUTOFF`.
//!
//! Builds violation-free single-layer layouts of growing item counts and
//! times the spacing/crossing sweep with the spatial index forced on
//! (`drc::check_forced_index`) against the naive all-pairs reference
//! (`drc::check_naive`). The crossover of the two curves is where the
//! cutoff belongs; the committed constant (1024) sits at the measured
//! crossover on this harness (table in EXPERIMENTS.md).
//!
//! Usage: `drc_cutoff [reps]` (default 5, best-of).

use info_geom::{Point, Polyline, Rect};
use info_model::{drc, DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use std::time::Instant;

/// `n` disjoint short horizontal wires on layer 0 of a 10 mm die, packed
/// row-major at a comfortable pitch (no violations, so both sweeps do
/// identical pair work and the timing difference is pure data-structure
/// overhead).
fn instance(n: usize) -> (Package, Layout) {
    let die = Rect::new(Point::new(0, 0), Point::new(10_000_000, 10_000_000));
    let pkg =
        PackageBuilder::new(die, DesignRules::default(), 1).build().expect("empty package");
    let mut layout = Layout::new(&pkg);
    let per_row = 200usize;
    for i in 0..n {
        let row = (i / per_row) as i64;
        let col = (i % per_row) as i64;
        let x = 30_000 + col * 48_000;
        let y = 30_000 + row * 40_000;
        let path = Polyline::new(vec![Point::new(x, y), Point::new(x + 30_000, y)]);
        layout.add_route(NetId(i as u32), WireLayer(0), path);
    }
    (pkg, layout)
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let reps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("DRC sweep-path calibration (best of {reps}); committed cutoff = {}", drc::INDEX_CUTOFF);
    println!("{:>7} {:>12} {:>12} {:>9}", "items", "indexed_s", "naive_s", "ratio");
    for n in [128usize, 256, 512, 768, 1024, 1536, 2048, 4096, 8192] {
        let (pkg, layout) = instance(n);
        // Both paths must agree on every instance before we trust the times.
        let a = drc::check_forced_index(&pkg, &layout);
        let b = drc::check_naive(&pkg, &layout);
        assert_eq!(a.violations(), b.violations(), "paths diverged at n={n}");
        let indexed_s = best_of(reps, || {
            std::hint::black_box(drc::check_forced_index(&pkg, &layout).violations().len());
        });
        let naive_s = best_of(reps, || {
            std::hint::black_box(drc::check_naive(&pkg, &layout).violations().len());
        });
        println!(
            "{n:>7} {indexed_s:>12.6} {naive_s:>12.6} {:>9.2}",
            if indexed_s > 0.0 { naive_s / indexed_s } else { 0.0 }
        );
    }
}
