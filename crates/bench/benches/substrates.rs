//! Micro-benchmarks of the algorithmic substrates: MPSC scaling, the LP
//! solver, geometry kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use info_geom::{Octagon, Point, Rect, Segment};
use info_lp::{Cmp, Model};
use info_mpsc::{max_planar_subset, Chord};
use rand::{Rng, SeedableRng};

fn bench_mpsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpsc");
    for n_points in [64usize, 256, 1024, 4096] {
        // Random disjoint chords over the circle.
        let mut rng = rand::rngs::StdRng::seed_from_u64(n_points as u64);
        let mut points: Vec<usize> = (0..n_points).collect();
        for i in (1..points.len()).rev() {
            let j = rng.gen_range(0..=i);
            points.swap(i, j);
        }
        let chords: Vec<Chord> = points
            .chunks(2)
            .map(|p| Chord::new(p[0], p[1], rng.gen_range(0.1..3.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_points), &n_points, |b, _| {
            b.iter(|| max_planar_subset(n_points, &chords).expect("valid chords"));
        });
    }
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_chain");
    group.sample_size(10);
    for n in [100usize, 500, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Model::new();
                let vars: Vec<_> = (0..n).map(|_| m.add_var(0.0, f64::INFINITY, 1.0)).collect();
                for i in 0..n - 1 {
                    m.add_row([(vars[i + 1], 1.0), (vars[i], -1.0)], Cmp::Ge, 1.0);
                }
                m.solve().expect("chain LP is feasible")
            });
        });
    }
    group.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("geom");
    let a = Octagon::regular(Point::new(0, 0), 10_000);
    let b = Octagon::regular(Point::new(7_000, 2_000), 10_000);
    group.bench_function("octagon_intersection", |bch| {
        bch.iter(|| a.intersection(std::hint::black_box(&b)));
    });
    let s1 = Segment::new(Point::new(0, 0), Point::new(100_000, 40_000));
    let s2 = Segment::new(Point::new(0, 40_000), Point::new(100_000, 0));
    group.bench_function("segment_intersect", |bch| {
        bch.iter(|| std::hint::black_box(s1).intersect(std::hint::black_box(s2)));
    });
    group.bench_function("partition_16_holes", |bch| {
        let region = Rect::new(Point::new(0, 0), Point::new(1_000_000, 1_000_000));
        let holes: Vec<Rect> = (0..16)
            .map(|i| {
                let x = 100_000 + (i % 4) * 220_000;
                let y = 100_000 + (i / 4) * 220_000;
                Rect::new(Point::new(x, y), Point::new(x + 120_000, y + 120_000))
            })
            .collect();
        bch.iter(|| info_tile::line_extension_partition(region, &holes));
    });
    group.finish();
}

criterion_group!(benches, bench_mpsc, bench_lp, bench_geometry);
criterion_main!(benches);
