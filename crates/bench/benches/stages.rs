//! Stage-level benchmarks of the routing flow on dense1.

use criterion::{criterion_group, criterion_main, Criterion};
use info_model::Layout;
use info_router::{assign, concurrent, preprocess, sequential, FlowCtx, InfoRouter, RouterConfig};
use info_tile::{astar, RoutingSpace};

fn bench_stages(c: &mut Criterion) {
    let pkg = info_gen::dense(1);
    let cfg = RouterConfig::default();
    let ctx = FlowCtx::default();

    let mut group = c.benchmark_group("stages_dense1");
    group.sample_size(10);

    group.bench_function("preprocess", |b| {
        b.iter(|| preprocess::preprocess(&pkg, &cfg, &ctx));
    });

    let pre = preprocess::preprocess(&pkg, &cfg, &ctx).expect("preprocess dense1");
    group.bench_function("assign_layers", |b| {
        b.iter(|| assign::assign_layers(&pre, &cfg, pkg.wire_layer_count(), &ctx));
    });

    let asg =
        assign::assign_layers(&pre, &cfg, pkg.wire_layer_count(), &ctx).expect("assign dense1");
    group.bench_function("concurrent_route", |b| {
        b.iter(|| {
            let mut layout = Layout::new(&pkg);
            concurrent::route_concurrent(&pkg, &mut layout, &pre, &asg, &cfg, &ctx)
        });
    });

    let layout = Layout::new(&pkg);
    group.bench_function("space_build", |b| {
        b.iter(|| RoutingSpace::build(&pkg, &layout, sequential::space_config(&pkg, &cfg)));
    });

    let space = RoutingSpace::build(&pkg, &layout, sequential::space_config(&pkg, &cfg));
    let net = pkg.nets()[0];
    let src = (pkg.pad_layer(net.a), pkg.pad(net.a).center);
    let dst = (pkg.pad_layer(net.b), pkg.pad(net.b).center);
    group.bench_function("astar_one_net", |b| {
        b.iter(|| astar::route(&space, net.id, src, dst).expect("open space"));
    });
    group.finish();

    let mut full = c.benchmark_group("full_flow");
    full.sample_size(10);
    full.bench_function("dense1_ours", |b| {
        b.iter(|| InfoRouter::new(RouterConfig::default()).route(&pkg));
    });
    full.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
