//! The canonical eight-half-plane octagon.
//!
//! An octagon here is the intersection of eight half-planes whose boundary
//! orientations are fixed (the paper's octagonal tile model, §III-C2):
//!
//! ```text
//!   xmin ≤ x ≤ xmax          (W / E edges)
//!   ymin ≤ y ≤ ymax          (S / N edges)
//!   smin ≤ x + y ≤ smax      (SW / NE edges)
//!   dmin ≤ x − y ≤ dmax      (NW / SE edges)
//! ```
//!
//! Any shape degradable from an octagon — rectangles, right triangles with a
//! 45° hypotenuse, 45° trapezoids — is an octagon with some edges collapsed
//! to points, which is exactly why the tile model can represent every region
//! produced by frame partitioning and diagonal wire splits.

use crate::{Coord, Dir8, Orient4, Point, Rect, Segment, XLine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A convex octagon with orientation-fixed boundary edges.
///
/// The representation is kept *canonical* (every bound tight against the
/// others) by [`Octagon::canonicalized`], which all constructors apply.
/// An octagon may be degenerate (a segment or a point) but a fully empty
/// octagon is represented by inverted bounds and reported by
/// [`Octagon::is_empty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Octagon {
    xmin: Coord,
    xmax: Coord,
    ymin: Coord,
    ymax: Coord,
    /// Lower bound on `x + y`.
    smin: Coord,
    /// Upper bound on `x + y`.
    smax: Coord,
    /// Lower bound on `x - y`.
    dmin: Coord,
    /// Upper bound on `x - y`.
    dmax: Coord,
}

#[inline]
fn div_floor(a: Coord, b: Coord) -> Coord {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

#[inline]
fn div_ceil(a: Coord, b: Coord) -> Coord {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

impl Octagon {
    /// Builds an octagon from raw bounds and canonicalizes it.
    #[allow(clippy::too_many_arguments)]
    pub fn from_bounds(
        xmin: Coord,
        xmax: Coord,
        ymin: Coord,
        ymax: Coord,
        smin: Coord,
        smax: Coord,
        dmin: Coord,
        dmax: Coord,
    ) -> Self {
        Octagon { xmin, xmax, ymin, ymax, smin, smax, dmin, dmax }.canonicalized()
    }

    /// The octagon equal to a rectangle (diagonal edges degenerate).
    pub fn from_rect(r: Rect) -> Self {
        Octagon {
            xmin: r.lo.x,
            xmax: r.hi.x,
            ymin: r.lo.y,
            ymax: r.hi.y,
            smin: r.lo.x + r.lo.y,
            smax: r.hi.x + r.hi.y,
            dmin: r.lo.x - r.hi.y,
            dmax: r.hi.x - r.lo.y,
        }
    }

    /// A regular octagon whose bounding box has width `width`, centered at
    /// `c` — the paper's via (and bump pad) model.
    ///
    /// All eight edges lie at apothem `width / 2` from the center; the
    /// diagonal bounds are rounded to the nearest lattice value.
    ///
    /// ```
    /// use info_geom::{Octagon, Point};
    /// let via = Octagon::regular(Point::new(0, 0), 10_000);
    /// assert!(via.contains(Point::new(5_000, 0)));
    /// assert!(!via.contains(Point::new(5_000, 5_000))); // corner cut off
    /// ```
    pub fn regular(c: Point, width: Coord) -> Self {
        let h = width / 2;
        let r = ((h as f64) * crate::SQRT2).round() as Coord;
        Octagon {
            xmin: c.x - h,
            xmax: c.x + h,
            ymin: c.y - h,
            ymax: c.y + h,
            smin: c.sum() - r,
            smax: c.sum() + r,
            dmin: c.diff() - r,
            dmax: c.diff() + r,
        }
        .canonicalized()
    }

    /// Tightens every bound against the others until a fixpoint.
    ///
    /// After canonicalization each of the eight bounds is supported by the
    /// region (or the octagon is empty). Integer divisions round inward so
    /// the canonical form never loses lattice points.
    pub fn canonicalized(mut self) -> Self {
        self.canonicalize();
        self
    }

    fn canonicalize(&mut self) {
        // Full tight closure of the two-variable octagon constraint system
        // over x, y, s = x + y, d = x − y. Every derivation of each bound is
        // applied and iterated to a fixpoint; integer divisions round toward
        // the feasible side, so no lattice point is ever lost. At the
        // fixpoint all closure inequalities hold simultaneously, which is
        // what makes [`Octagon::vertices`] exact.
        for _ in 0..16 {
            let before = *self;
            // x from pairs and from the halved sum/difference combination.
            self.xmax = self
                .xmax
                .min(self.smax - self.ymin)
                .min(self.dmax + self.ymax)
                .min(div_floor(self.smax + self.dmax, 2));
            self.xmin = self
                .xmin
                .max(self.smin - self.ymax)
                .max(self.dmin + self.ymin)
                .max(div_ceil(self.smin + self.dmin, 2));
            // y from pairs and the halved combination.
            self.ymax = self
                .ymax
                .min(self.smax - self.xmin)
                .min(self.xmax - self.dmin)
                .min(div_floor(self.smax - self.dmin, 2));
            self.ymin = self
                .ymin
                .max(self.smin - self.xmax)
                .max(self.xmin - self.dmax)
                .max(div_ceil(self.smin - self.dmax, 2));
            // s = x + y, with the triple derivations s = 2x − d = 2y + d.
            self.smax = self
                .smax
                .min(self.xmax + self.ymax)
                .min(2 * self.xmax - self.dmin)
                .min(2 * self.ymax + self.dmax);
            self.smin = self
                .smin
                .max(self.xmin + self.ymin)
                .max(2 * self.xmin - self.dmax)
                .max(2 * self.ymin + self.dmin);
            // d = x − y, with the triple derivations d = 2x − s = s − 2y.
            self.dmax = self
                .dmax
                .min(self.xmax - self.ymin)
                .min(2 * self.xmax - self.smin)
                .min(self.smax - 2 * self.ymin);
            self.dmin = self
                .dmin
                .max(self.xmin - self.ymax)
                .max(2 * self.xmin - self.smax)
                .max(self.smin - 2 * self.ymax);
            if *self == before || self.is_empty() {
                break;
            }
        }
    }

    /// Whether the octagon contains no lattice points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xmin > self.xmax || self.ymin > self.ymax || self.smin > self.smax || self.dmin > self.dmax
    }

    /// Whether the closed octagon contains the point (exact).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.xmin
            && p.x <= self.xmax
            && p.y >= self.ymin
            && p.y <= self.ymax
            && p.sum() >= self.smin
            && p.sum() <= self.smax
            && p.diff() >= self.dmin
            && p.diff() <= self.dmax
    }

    /// Whether the point is strictly interior (off every boundary edge).
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.xmin
            && p.x < self.xmax
            && p.y > self.ymin
            && p.y < self.ymax
            && p.sum() > self.smin
            && p.sum() < self.smax
            && p.diff() > self.dmin
            && p.diff() < self.dmax
    }

    /// Axis-aligned bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(Point::new(self.xmin, self.ymin), Point::new(self.xmax, self.ymax))
    }

    /// Intersection of two octagons — componentwise bound merge, then
    /// canonicalization (convexity makes this exact).
    pub fn intersection(&self, other: &Octagon) -> Octagon {
        Octagon {
            xmin: self.xmin.max(other.xmin),
            xmax: self.xmax.min(other.xmax),
            ymin: self.ymin.max(other.ymin),
            ymax: self.ymax.min(other.ymax),
            smin: self.smin.max(other.smin),
            smax: self.smax.min(other.smax),
            dmin: self.dmin.max(other.dmin),
            dmax: self.dmax.min(other.dmax),
        }
        .canonicalized()
    }

    /// Whether two octagons share at least one lattice point.
    #[inline]
    pub fn intersects(&self, other: &Octagon) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Grows the octagon outward by (at least) Euclidean `margin` on every
    /// side; diagonal bounds grow by `⌈margin·√2⌉` so the result covers every
    /// point within `margin` of the original (a conservative, convex
    /// over-approximation used for blockage expansion).
    pub fn inflate(&self, margin: Coord) -> Octagon {
        let dm = ((margin as f64) * crate::SQRT2).ceil() as Coord;
        Octagon {
            xmin: self.xmin - margin,
            xmax: self.xmax + margin,
            ymin: self.ymin - margin,
            ymax: self.ymax + margin,
            smin: self.smin - dm,
            smax: self.smax + dm,
            dmin: self.dmin - dm,
            dmax: self.dmax + dm,
        }
        // No canonicalization: inflation of a canonical octagon stays
        // canonical up to rounding, and tightening could only shrink it.
    }

    /// Keeps the part of the octagon on one side of an X-architecture line:
    /// `a·x + b·y ≤ c` when `keep_le` is true, `≥ c` otherwise.
    ///
    /// This is how a frame is split by a diagonal wire into two octagonal
    /// tiles (Fig. 6(c) of the paper).
    pub fn clip_halfplane(&self, line: XLine, keep_le: bool) -> Octagon {
        let mut o = *self;
        let c = line.c();
        match (line.orient(), keep_le) {
            (Orient4::H, true) => o.ymax = o.ymax.min(c),
            (Orient4::H, false) => o.ymin = o.ymin.max(c),
            (Orient4::V, true) => o.xmax = o.xmax.min(c),
            (Orient4::V, false) => o.xmin = o.xmin.max(c),
            (Orient4::D45, true) => o.dmax = o.dmax.min(c),
            (Orient4::D45, false) => o.dmin = o.dmin.max(c),
            (Orient4::D135, true) => o.smax = o.smax.min(c),
            (Orient4::D135, false) => o.smin = o.smin.max(c),
        }
        o.canonicalized()
    }

    /// The eight boundary vertices in counter-clockwise order starting at
    /// the south end of the east edge. Degenerate edges yield repeated
    /// vertices, which [`Octagon::edges`] filters out.
    ///
    /// # Panics
    ///
    /// Panics if the octagon is empty.
    pub fn vertices(&self) -> [Point; 8] {
        assert!(!self.is_empty(), "vertices of an empty octagon");
        [
            Point::new(self.xmax, self.xmax - self.dmax), // E ∩ SE
            Point::new(self.xmax, self.smax - self.xmax), // E ∩ NE
            Point::new(self.smax - self.ymax, self.ymax), // NE ∩ N
            Point::new(self.dmin + self.ymax, self.ymax), // N ∩ NW
            Point::new(self.xmin, self.xmin - self.dmin), // NW ∩ W
            Point::new(self.xmin, self.smin - self.xmin), // W ∩ SW
            Point::new(self.smin - self.ymin, self.ymin), // SW ∩ S
            Point::new(self.dmax + self.ymin, self.ymin), // S ∩ SE
        ]
    }

    /// The non-degenerate boundary edges, counter-clockwise, each labeled
    /// with its outward direction.
    pub fn edges(&self) -> Vec<(Dir8, Segment)> {
        let v = self.vertices();
        // Edge k runs from vertices[k] to vertices[(k + 1) % 8]; its outward
        // normal cycles E, NE, N, NW, W, SW, S, SE starting at the E edge
        // between (E ∩ SE) and (E ∩ NE).
        const NORMALS: [Dir8; 8] =
            [Dir8::E, Dir8::Ne, Dir8::N, Dir8::Nw, Dir8::W, Dir8::Sw, Dir8::S, Dir8::Se];
        let mut out = Vec::with_capacity(8);
        for k in 0..8 {
            let s = Segment::new(v[k], v[(k + 1) % 8]);
            if !s.is_degenerate() {
                out.push((NORMALS[k], s));
            }
        }
        out
    }

    /// Polygon area via the shoelace formula, exact in `i128`.
    ///
    /// Zero for degenerate (segment/point) octagons.
    pub fn area(&self) -> i128 {
        if self.is_empty() {
            return 0;
        }
        let v = self.vertices();
        let mut twice: i128 = 0;
        for k in 0..8 {
            let p = v[k];
            let q = v[(k + 1) % 8];
            twice += p.x as i128 * q.y as i128 - q.x as i128 * p.y as i128;
        }
        debug_assert!(twice >= 0, "CCW vertex order yields non-negative area");
        twice / 2
    }

    /// A point inside the octagon (the center of its bounding box, pulled
    /// into the region along the diagonal bounds if needed).
    ///
    /// # Panics
    ///
    /// Panics if the octagon is empty.
    pub fn interior_point(&self) -> Point {
        assert!(!self.is_empty(), "interior point of an empty octagon");
        let c = self.bbox().center();
        if self.contains(c) {
            return c;
        }
        // Clamp the diagonal coordinates of c into range, then re-project.
        let s = c.sum().clamp(self.smin, self.smax);
        let d = c.diff().clamp(self.dmin, self.dmax);
        // x = (s + d) / 2 rounded so parity works; nudge until contained.
        let x = div_floor(s + d, 2);
        let y = s - x;
        let cand = Point::new(
            x.clamp(self.xmin, self.xmax),
            y.clamp(self.ymin, self.ymax),
        );
        if self.contains(cand) {
            return cand;
        }
        // Fall back to scanning the vertices (always in the region).
        self.vertices()[0]
    }

    /// Euclidean distance from the octagon to a point (zero inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        if self.contains(p) {
            return 0.0;
        }
        self.edges()
            .iter()
            .map(|(_, e)| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
            .min(if self.area() == 0 {
                // Degenerate octagons may expose no edges (single point).
                (p - self.vertices()[0]).norm()
            } else {
                f64::INFINITY
            })
    }

    /// Euclidean distance between two octagons (zero if they intersect).
    ///
    /// Exact for convex polygons: the minimum is attained on an edge pair or
    /// vertex-edge pair, all of which are enumerated.
    pub fn distance_to_octagon(&self, other: &Octagon) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        if self.intersects(other) {
            return 0.0;
        }
        let ea = self.edges();
        let eb = other.edges();
        let mut best = f64::INFINITY;
        if ea.is_empty() || eb.is_empty() {
            // At least one octagon degenerates to a point.
            let pa = self.vertices()[0];
            let pb = other.vertices()[0];
            if ea.is_empty() && eb.is_empty() {
                return (pa - pb).norm();
            }
            if ea.is_empty() {
                for (_, e) in &eb {
                    best = best.min(e.distance_to_point(pa));
                }
            } else {
                for (_, e) in &ea {
                    best = best.min(e.distance_to_point(pb));
                }
            }
            return best;
        }
        for (_, sa) in &ea {
            for (_, sb) in &eb {
                best = best.min(sa.distance_to_segment(*sb));
            }
        }
        best
    }

    /// Euclidean distance from the octagon to a segment (zero if touching).
    pub fn distance_to_segment(&self, s: Segment) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        if self.contains(s.a) || self.contains(s.b) {
            return 0.0;
        }
        let edges = self.edges();
        if edges.is_empty() {
            return s.distance_to_point(self.vertices()[0]);
        }
        let mut best = f64::INFINITY;
        for (_, e) in &edges {
            best = best.min(e.distance_to_segment(s));
        }
        best
    }

    /// The minimal cross-section of the octagon: the smallest distance
    /// between two parallel boundary constraints. A wire corridor must be
    /// at least this thick to host a wire, so tiles thinner than the wire
    /// clearance are impassable.
    pub fn thickness(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let axis = (self.xmax - self.xmin).min(self.ymax - self.ymin) as f64;
        let diag =
            ((self.smax - self.smin).min(self.dmax - self.dmin) as f64) / crate::SQRT2;
        axis.min(diag)
    }

    /// If the octagon is degenerate (zero area but positive extent),
    /// returns it as the segment between its two extreme vertices.
    ///
    /// This is how tile adjacency is computed: the intersection of two
    /// interior-disjoint tiles is exactly their shared boundary segment.
    pub fn as_degenerate_segment(&self) -> Option<Segment> {
        if self.is_empty() || self.area() != 0 {
            return None;
        }
        let v = self.vertices();
        let mut best: Option<Segment> = None;
        let mut best_d: i128 = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = (v[i] - v[j]).norm_sq();
                if d > best_d {
                    best_d = d;
                    best = Some(Segment::new(v[i], v[j]));
                }
            }
        }
        best
    }

    /// Raw bound accessors `(xmin, xmax, ymin, ymax, smin, smax, dmin, dmax)`.
    pub fn bounds(&self) -> (Coord, Coord, Coord, Coord, Coord, Coord, Coord, Coord) {
        (self.xmin, self.xmax, self.ymin, self.ymax, self.smin, self.smax, self.dmin, self.dmax)
    }
}

impl From<Rect> for Octagon {
    fn from(r: Rect) -> Self {
        Octagon::from_rect(r)
    }
}

impl fmt::Display for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Oct[x:{}..{} y:{}..{} s:{}..{} d:{}..{}]",
            self.xmin, self.xmax, self.ymin, self.ymax, self.smin, self.smax, self.dmin, self.dmax
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_octagon_matches_rect() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 6));
        let o = Octagon::from_rect(r);
        assert_eq!(o.bbox(), r);
        assert_eq!(o.area(), r.area());
        for p in [Point::new(0, 0), Point::new(10, 6), Point::new(5, 3)] {
            assert!(o.contains(p));
        }
        assert!(!o.contains(Point::new(11, 3)));
        // All four diagonal edges are degenerate: only 4 real edges.
        assert_eq!(o.edges().len(), 4);
    }

    #[test]
    fn regular_octagon_cuts_corners() {
        let o = Octagon::regular(Point::new(0, 0), 10);
        assert!(o.contains(Point::new(5, 0)));
        assert!(o.contains(Point::new(0, -5)));
        assert!(o.contains(Point::new(3, 4)));
        assert!(!o.contains(Point::new(5, 5)));
        assert!(!o.contains(Point::new(-5, 5)));
        assert_eq!(o.edges().len(), 8);
        // Area between inscribed square-with-cut-corners bounds.
        assert!(o.area() > 64 && o.area() < 100, "area = {}", o.area());
    }

    #[test]
    fn canonicalization_tightens() {
        // A rectangle 0..10 with an aggressive diagonal cut x+y ≤ 5:
        // the reachable x and y maxima drop to 5.
        let o = Octagon::from_bounds(0, 10, 0, 10, 0, 5, -10, 10);
        let (xmin, xmax, ymin, ymax, ..) = o.bounds();
        assert_eq!((xmin, xmax, ymin, ymax), (0, 5, 0, 5));
        assert!(o.contains(Point::new(5, 0)));
        assert!(!o.contains(Point::new(5, 1)));
    }

    #[test]
    fn empty_detection() {
        let o = Octagon::from_bounds(0, 10, 0, 10, 30, 40, -100, 100);
        assert!(o.is_empty());
        let p = Octagon::from_bounds(0, 0, 0, 0, 0, 0, 0, 0);
        assert!(!p.is_empty()); // single point at origin
        assert!(p.contains(Point::origin()));
        assert_eq!(p.area(), 0);
    }

    #[test]
    fn intersection_exact() {
        let a = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 10)));
        let b = Octagon::regular(Point::new(10, 10), 8);
        let i = a.intersection(&b);
        assert!(!i.is_empty());
        assert!(i.contains(Point::new(8, 8)));
        assert!(a.intersects(&b));
        let far = Octagon::regular(Point::new(100, 100), 8);
        assert!(!a.intersects(&far));
    }

    #[test]
    fn clip_splits_frame_like_a_diagonal_wire() {
        let frame = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 10)));
        let wire = XLine::new(Orient4::D45, 0); // x − y = 0 through the middle
        let below = frame.clip_halfplane(wire, true); // x − y ≤ 0 (upper-left half)
        let above = frame.clip_halfplane(wire, false);
        assert!(below.contains(Point::new(0, 10)));
        assert!(!below.contains_strict(Point::new(10, 0)));
        assert!(above.contains(Point::new(10, 0)));
        // Both halves are triangles: 3 non-degenerate edges each.
        assert_eq!(below.edges().len(), 3);
        assert_eq!(above.edges().len(), 3);
        // Shoelace: each triangle has half the square's area.
        assert_eq!(below.area(), 50);
        assert_eq!(above.area(), 50);
    }

    #[test]
    fn inflate_covers_margin() {
        let o = Octagon::regular(Point::new(0, 0), 10);
        let big = o.inflate(3);
        // Any point within distance 3 of the original must be inside.
        for p in [Point::new(8, 0), Point::new(0, 8), Point::new(6, 5)] {
            assert!(
                o.distance_to_point(p) > 3.0 || big.contains(p),
                "point {p} at distance {} escaped the inflated octagon",
                o.distance_to_point(p)
            );
        }
    }

    #[test]
    fn distances_between_octagons() {
        let a = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 10)));
        let b = Octagon::from_rect(Rect::new(Point::new(13, 0), Point::new(20, 10)));
        assert_eq!(a.distance_to_octagon(&b), 3.0);
        assert_eq!(b.distance_to_octagon(&a), 3.0);
        let c = Octagon::from_rect(Rect::new(Point::new(5, 5), Point::new(7, 7)));
        assert_eq!(a.distance_to_octagon(&c), 0.0);
    }

    #[test]
    fn distance_to_segment_zero_when_piercing() {
        let o = Octagon::regular(Point::new(0, 0), 10);
        let s = Segment::new(Point::new(-20, 0), Point::new(20, 0));
        assert_eq!(o.distance_to_segment(s), 0.0);
        let miss = Segment::new(Point::new(-20, 9), Point::new(20, 9));
        assert!((o.distance_to_segment(miss) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn interior_point_is_inside() {
        let shapes = [
            Octagon::regular(Point::new(3, -7), 11),
            Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(1, 9))),
            Octagon::from_bounds(0, 10, 0, 10, 0, 5, -10, 10),
        ];
        for o in shapes {
            assert!(o.contains(o.interior_point()), "{o}");
        }
    }

    #[test]
    fn thickness_of_shapes() {
        let sq = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 20)));
        assert_eq!(sq.thickness(), 10.0);
        let oct = Octagon::regular(Point::new(0, 0), 10);
        // Regular octagon: all parallel pairs at distance = width.
        assert!((oct.thickness() - 10.0).abs() < 1.0);
        let sliver = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(100, 1)));
        assert_eq!(sliver.thickness(), 1.0);
    }

    #[test]
    fn degenerate_segment_extraction() {
        let a = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 10)));
        let b = Octagon::from_rect(Rect::new(Point::new(10, 2), Point::new(20, 30)));
        let shared = a.intersection(&b);
        let seg = shared.as_degenerate_segment().expect("boundary contact");
        assert_eq!(seg.len_euclid(), 8.0); // y from 2 to 10 at x = 10
        // Diagonal contact between two triangles split by x − y = 0.
        let frame = Octagon::from_rect(Rect::new(Point::new(0, 0), Point::new(10, 10)));
        let l = XLine::new(Orient4::D45, 0);
        let t1 = frame.clip_halfplane(l, true);
        let t2 = frame.clip_halfplane(l, false);
        let shared = t1.intersection(&t2);
        let seg = shared.as_degenerate_segment().expect("diagonal contact");
        assert!((seg.len_euclid() - 10.0 * crate::SQRT2).abs() < 1e-9);
        // Non-degenerate octagons return None.
        assert!(a.as_degenerate_segment().is_none());
    }

    #[test]
    fn vertices_are_ccw() {
        let o = Octagon::regular(Point::new(0, 0), 100);
        assert!(o.area() > 0);
        // Shoelace positive is asserted inside area(); also spot-check order.
        let v = o.vertices();
        assert!(v[0].y < v[1].y); // east edge goes south -> north
    }
}
