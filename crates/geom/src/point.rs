//! Lattice points and displacement vectors.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A point on the integer nanometer lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in nanometers.
    pub x: Coord,
    /// Vertical coordinate in nanometers.
    pub y: Coord,
}

/// An integer displacement between two [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Vector {
    /// Horizontal component.
    pub dx: Coord,
    /// Vertical component.
    pub dy: Coord,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// ```
    /// let p = info_geom::Point::new(10, -3);
    /// assert_eq!((p.x, p.y), (10, -3));
    /// ```
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point { x: 0, y: 0 }
    }

    /// Displacement from `other` to `self`.
    #[inline]
    pub fn vector_from(self, other: Point) -> Vector {
        Vector { dx: self.x - other.x, dy: self.y - other.y }
    }

    /// `x + y`, the coordinate along the 135°-diagonal family of lines.
    #[inline]
    pub const fn sum(self) -> Coord {
        self.x + self.y
    }

    /// `x - y`, the coordinate along the 45°-diagonal family of lines.
    #[inline]
    pub const fn diff(self) -> Coord {
        self.x - self.y
    }

    /// Componentwise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Vector {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(dx: Coord, dy: Coord) -> Self {
        Vector { dx, dy }
    }

    /// The zero displacement.
    #[inline]
    pub const fn zero() -> Self {
        Vector { dx: 0, dy: 0 }
    }

    /// 2D cross product (z-component), exact in `i128`.
    #[inline]
    pub fn cross(self, other: Vector) -> i128 {
        self.dx as i128 * other.dy as i128 - self.dy as i128 * other.dx as i128
    }

    /// Dot product, exact in `i128`.
    #[inline]
    pub fn dot(self, other: Vector) -> i128 {
        self.dx as i128 * other.dx as i128 + self.dy as i128 * other.dy as i128
    }

    /// Squared Euclidean norm, exact in `i128`.
    #[inline]
    pub fn norm_sq(self) -> i128 {
        self.dot(self)
    }

    /// Euclidean norm as `f64`.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.norm_sq() as f64).sqrt()
    }

    /// Whether this displacement lies along one of the four X-architecture
    /// orientations (or is zero).
    #[inline]
    pub fn is_x_arch(self) -> bool {
        self.dx == 0 || self.dy == 0 || self.dx == self.dy || self.dx == -self.dy
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vector) {
        self.x += v.dx;
        self.y += v.dy;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.dx, self.y - v.dy)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.dx;
        self.y -= v.dy;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Point) -> Vector {
        self.vector_from(other)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.dx + other.dx, self.dy + other.dy)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.dx - other.dx, self.dy - other.dy)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, k: Coord) -> Vector {
        Vector::new(self.dx * k, self.dy * k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

impl From<(Coord, Coord)> for Point {
    #[inline]
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (Coord, Coord) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic_roundtrips() {
        let p = Point::new(5, -7);
        let q = Point::new(-2, 11);
        let v = q - p;
        assert_eq!(p + v, q);
        assert_eq!(q - v, p);
        assert_eq!(v, Vector::new(-7, 18));
    }

    #[test]
    fn cross_and_dot_are_exact_for_large_coords() {
        let big = 4_000_000_000i64; // 4 m in nm; far beyond any die, still exact
        let a = Vector::new(big, big - 1);
        let b = Vector::new(big - 2, big);
        assert_eq!(a.cross(b), big as i128 * big as i128 - (big as i128 - 1) * (big as i128 - 2));
        assert!(a.norm_sq() > 0);
    }

    #[test]
    fn diagonal_coordinates() {
        let p = Point::new(3, 10);
        assert_eq!(p.sum(), 13);
        assert_eq!(p.diff(), -7);
    }

    #[test]
    fn x_arch_detection() {
        assert!(Vector::new(5, 0).is_x_arch());
        assert!(Vector::new(0, -4).is_x_arch());
        assert!(Vector::new(7, 7).is_x_arch());
        assert!(Vector::new(7, -7).is_x_arch());
        assert!(!Vector::new(2, 1).is_x_arch());
        assert!(Vector::zero().is_x_arch());
    }

    #[test]
    fn min_max_componentwise() {
        let p = Point::new(1, 9);
        let q = Point::new(4, -2);
        assert_eq!(p.min(q), Point::new(1, -2));
        assert_eq!(p.max(q), Point::new(4, 9));
    }
}
