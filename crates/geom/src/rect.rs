//! Axis-aligned rectangles.

use crate::{Coord, Point, Segment};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed axis-aligned rectangle, stored as its min/max corners.
///
/// Rectangles model I/O pads, obstacles, chip fan-in regions, global cells,
/// frames and fan-out grids. Degenerate (zero width or height) rectangles
/// are permitted; "empty" means inverted bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (lowest x and y).
    pub lo: Point,
    /// Maximum corner (highest x and y).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// ```
    /// use info_geom::{Point, Rect};
    /// let r = Rect::new(Point::new(5, 0), Point::new(0, 5));
    /// assert_eq!(r.lo, Point::new(0, 0));
    /// assert_eq!(r.hi, Point::new(5, 5));
    /// ```
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect { lo: a.min(b), hi: a.max(b) }
    }

    /// Creates a rectangle from `(x, y)` of the min corner plus extents.
    #[inline]
    pub fn from_origin_size(lo: Point, width: Coord, height: Coord) -> Self {
        Rect::new(lo, Point::new(lo.x + width, lo.y + height))
    }

    /// The square of the given half-width centered at `c`.
    #[inline]
    pub fn centered_square(c: Point, half: Coord) -> Self {
        Rect::new(Point::new(c.x - half, c.y - half), Point::new(c.x + half, c.y + half))
    }

    /// Width along x (non-negative for well-formed rectangles).
    #[inline]
    pub fn width(self) -> Coord {
        self.hi.x - self.lo.x
    }

    /// Height along y.
    #[inline]
    pub fn height(self) -> Coord {
        self.hi.y - self.lo.y
    }

    /// Center point (rounded toward `lo` on odd spans).
    #[inline]
    pub fn center(self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// Area, exact in `i128`.
    #[inline]
    pub fn area(self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Whether the bounds are inverted (no points at all).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Whether the closed rectangle contains the point.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether the *open* rectangle (strict interior) contains the point.
    #[inline]
    pub fn contains_strict(self, p: Point) -> bool {
        p.x > self.lo.x && p.x < self.hi.x && p.y > self.lo.y && p.y < self.hi.y
    }

    /// Whether `other` lies entirely inside this rectangle (closed).
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Whether the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(self, other: Rect) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Whether the open interiors overlap (edge touches excluded).
    #[inline]
    pub fn overlaps_interior(self, other: Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The (possibly empty) intersection rectangle.
    #[inline]
    pub fn intersection(self, other: Rect) -> Rect {
        Rect { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }

    /// Smallest rectangle covering both.
    #[inline]
    pub fn union(self, other: Rect) -> Rect {
        Rect { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Grows every side outward by `margin` (shrinks if negative).
    #[inline]
    pub fn inflate(self, margin: Coord) -> Rect {
        Rect {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        }
    }

    /// The four corners in counter-clockwise order starting at `lo`.
    #[inline]
    pub fn corners(self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }

    /// The four boundary edges in counter-clockwise order starting with the
    /// bottom edge.
    #[inline]
    pub fn edges(self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Euclidean distance from the rectangle to a point (zero inside).
    pub fn distance_to_point(self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0).max(p.y - self.hi.y);
        ((dx as f64).powi(2) + (dy as f64).powi(2)).sqrt()
    }

    /// Euclidean distance between two rectangles (zero if they touch).
    pub fn distance_to_rect(self, other: Rect) -> f64 {
        let dx = (self.lo.x - other.hi.x).max(0).max(other.lo.x - self.hi.x);
        let dy = (self.lo.y - other.hi.y).max(0).max(other.lo.y - self.hi.y);
        ((dx as f64).powi(2) + (dy as f64).powi(2)).sqrt()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} x {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let r = Rect::new(Point::new(10, -2), Point::new(-1, 8));
        assert_eq!(r.lo, Point::new(-1, -2));
        assert_eq!(r.hi, Point::new(10, 8));
        assert_eq!(r.width(), 11);
        assert_eq!(r.height(), 10);
        assert_eq!(r.area(), 110);
    }

    #[test]
    fn containment_closed_vs_strict() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert!(r.contains(Point::new(0, 5)));
        assert!(!r.contains_strict(Point::new(0, 5)));
        assert!(r.contains_strict(Point::new(1, 5)));
        assert!(!r.contains(Point::new(11, 5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(5, 5), Point::new(20, 7));
        let i = a.intersection(b);
        assert_eq!(i, Rect::new(Point::new(5, 5), Point::new(10, 7)));
        assert!(a.intersects(b));
        assert_eq!(a.union(b), Rect::new(Point::new(0, 0), Point::new(20, 10)));
    }

    #[test]
    fn edge_touch_intersects_but_does_not_overlap() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(10, 0), Point::new(20, 10));
        assert!(a.intersects(b));
        assert!(!a.overlaps_interior(b));
    }

    #[test]
    fn empty_after_disjoint_intersection() {
        let a = Rect::new(Point::new(0, 0), Point::new(1, 1));
        let b = Rect::new(Point::new(5, 5), Point::new(6, 6));
        assert!(a.intersection(b).is_empty());
        assert!(!a.intersects(b));
    }

    #[test]
    fn distances() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(r.distance_to_point(Point::new(5, 5)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(13, 14)), 5.0);
        let far = Rect::new(Point::new(13, 14), Point::new(20, 20));
        assert_eq!(r.distance_to_rect(far), 5.0);
        let touch = Rect::new(Point::new(10, 0), Point::new(12, 2));
        assert_eq!(r.distance_to_rect(touch), 0.0);
    }

    #[test]
    fn inflate_grows_all_sides() {
        let r = Rect::new(Point::new(0, 0), Point::new(4, 4)).inflate(3);
        assert_eq!(r, Rect::new(Point::new(-3, -3), Point::new(7, 7)));
    }
}
