//! The eight routing directions and four wire orientations.

use crate::{Coord, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eight cardinal/intercardinal directions, ordered
/// counter-clockwise starting from east.
///
/// These are the directions in which the LP optimizer scans for the nearest
/// blockage when generating interactive constraints, and the eight boundary
/// edge orientations of an [octagonal tile](crate::Octagon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir8 {
    /// +x
    E,
    /// +x, +y
    Ne,
    /// +y
    N,
    /// -x, +y
    Nw,
    /// -x
    W,
    /// -x, -y
    Sw,
    /// -y
    S,
    /// +x, -y
    Se,
}

/// One of the four X-architecture wire orientations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Orient4 {
    /// Horizontal: the line `y = c`.
    H,
    /// Vertical: the line `x = c`.
    V,
    /// 45° diagonal (slope +1): the line `x - y = c`.
    D45,
    /// 135° diagonal (slope -1): the line `x + y = c`.
    D135,
}

impl Dir8 {
    /// All eight directions in counter-clockwise order starting at east.
    pub const ALL: [Dir8; 8] = [
        Dir8::E,
        Dir8::Ne,
        Dir8::N,
        Dir8::Nw,
        Dir8::W,
        Dir8::Sw,
        Dir8::S,
        Dir8::Se,
    ];

    /// Index in counter-clockwise order (`E = 0` … `Se = 7`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dir8::E => 0,
            Dir8::Ne => 1,
            Dir8::N => 2,
            Dir8::Nw => 3,
            Dir8::W => 4,
            Dir8::Sw => 5,
            Dir8::S => 6,
            Dir8::Se => 7,
        }
    }

    /// Direction from a counter-clockwise index, reduced modulo 8.
    #[inline]
    pub fn from_index(i: usize) -> Dir8 {
        Self::ALL[i % 8]
    }

    /// The unit lattice step in this direction (diagonals step `(±1, ±1)`).
    #[inline]
    pub fn step(self) -> Vector {
        let (dx, dy): (Coord, Coord) = match self {
            Dir8::E => (1, 0),
            Dir8::Ne => (1, 1),
            Dir8::N => (0, 1),
            Dir8::Nw => (-1, 1),
            Dir8::W => (-1, 0),
            Dir8::Sw => (-1, -1),
            Dir8::S => (0, -1),
            Dir8::Se => (1, -1),
        };
        Vector::new(dx, dy)
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir8 {
        Dir8::from_index(self.index() + 4)
    }

    /// Whether this is one of the four diagonal directions.
    #[inline]
    pub fn is_diagonal(self) -> bool {
        matches!(self, Dir8::Ne | Dir8::Nw | Dir8::Sw | Dir8::Se)
    }

    /// The wire orientation a segment pointing in this direction lies on.
    #[inline]
    pub fn orient(self) -> Orient4 {
        match self {
            Dir8::E | Dir8::W => Orient4::H,
            Dir8::N | Dir8::S => Orient4::V,
            Dir8::Ne | Dir8::Sw => Orient4::D45,
            Dir8::Nw | Dir8::Se => Orient4::D135,
        }
    }

    /// Direction of a displacement if it is a nonzero X-architecture move.
    ///
    /// ```
    /// use info_geom::{Dir8, Vector};
    /// assert_eq!(Dir8::of_vector(Vector::new(0, -9)), Some(Dir8::S));
    /// assert_eq!(Dir8::of_vector(Vector::new(3, 3)), Some(Dir8::Ne));
    /// assert_eq!(Dir8::of_vector(Vector::new(2, 1)), None);
    /// ```
    pub fn of_vector(v: Vector) -> Option<Dir8> {
        let d = match (v.dx.signum(), v.dy.signum()) {
            (1, 0) => Dir8::E,
            (1, 1) if v.dx == v.dy => Dir8::Ne,
            (0, 1) => Dir8::N,
            (-1, 1) if -v.dx == v.dy => Dir8::Nw,
            (-1, 0) => Dir8::W,
            (-1, -1) if v.dx == v.dy => Dir8::Sw,
            (0, -1) => Dir8::S,
            (1, -1) if v.dx == -v.dy => Dir8::Se,
            _ => return None,
        };
        Some(d)
    }

    /// Minimal angular distance to `other`, in 45° steps (`0..=4`).
    ///
    /// A routing-angle-legal turn between consecutive wire segments deviates
    /// by at most two steps (0° straight, 45° = a 135° turn, 90° = a right
    /// angle); three steps is the forbidden 45° turn and four is a U-turn.
    #[inline]
    pub fn angular_distance(self, other: Dir8) -> usize {
        let d = (self.index() + 8 - other.index()) % 8;
        d.min(8 - d)
    }
}

impl Orient4 {
    /// All four orientations.
    pub const ALL: [Orient4; 4] = [Orient4::H, Orient4::V, Orient4::D45, Orient4::D135];

    /// The canonical line coefficients `(a, b)` of this orientation, so the
    /// line equation is `a·x + b·y = c` with `a, b ∈ {0, ±1}`.
    #[inline]
    pub fn coeffs(self) -> (Coord, Coord) {
        match self {
            Orient4::H => (0, 1),
            Orient4::V => (1, 0),
            Orient4::D45 => (1, -1),
            Orient4::D135 => (1, 1),
        }
    }

    /// Whether this is one of the two diagonal orientations.
    #[inline]
    pub fn is_diagonal(self) -> bool {
        matches!(self, Orient4::D45 | Orient4::D135)
    }

    /// Orientation of a displacement if it is a nonzero X-architecture move.
    #[inline]
    pub fn of_vector(v: Vector) -> Option<Orient4> {
        Dir8::of_vector(v).map(Dir8::orient)
    }
}

impl fmt::Display for Dir8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir8::E => "E",
            Dir8::Ne => "NE",
            Dir8::N => "N",
            Dir8::Nw => "NW",
            Dir8::W => "W",
            Dir8::Sw => "SW",
            Dir8::S => "S",
            Dir8::Se => "SE",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Orient4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orient4::H => "H",
            Orient4::V => "V",
            Orient4::D45 => "D45",
            Orient4::D135 => "D135",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for d in Dir8::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.angular_distance(d.opposite()), 4);
        }
    }

    #[test]
    fn step_matches_of_vector() {
        for d in Dir8::ALL {
            assert_eq!(Dir8::of_vector(d.step()), Some(d));
            assert_eq!(Dir8::of_vector(d.step() * 17), Some(d));
        }
        assert_eq!(Dir8::of_vector(Vector::zero()), None);
    }

    #[test]
    fn orientations_pair_up() {
        assert_eq!(Dir8::E.orient(), Dir8::W.orient());
        assert_eq!(Dir8::Ne.orient(), Dir8::Sw.orient());
        assert_eq!(Dir8::Nw.orient(), Dir8::Se.orient());
        assert_ne!(Dir8::Ne.orient(), Dir8::Nw.orient());
    }

    #[test]
    fn angular_distance_is_symmetric_and_bounded() {
        for a in Dir8::ALL {
            for b in Dir8::ALL {
                let d = a.angular_distance(b);
                assert_eq!(d, b.angular_distance(a));
                assert!(d <= 4);
            }
        }
        assert_eq!(Dir8::E.angular_distance(Dir8::Ne), 1);
        assert_eq!(Dir8::E.angular_distance(Dir8::N), 2);
        assert_eq!(Dir8::E.angular_distance(Dir8::Nw), 3);
    }

    #[test]
    fn coeffs_describe_lines_through_lattice() {
        // A point on a D45 line keeps x - y constant while moving NE.
        let (a, b) = Orient4::D45.coeffs();
        let p = crate::Point::new(10, 4);
        let q = p + Dir8::Ne.step() * 6;
        assert_eq!(a * p.x + b * p.y, a * q.x + b * q.y);
    }
}
