//! Integer computational geometry for X-architecture package layouts.
//!
//! All coordinates are integer **nanometers** (`i64`), so every incidence
//! test in the crate is exact. The X-architecture restricts wires to four
//! orientations — horizontal, vertical, and the two 45°/135° diagonals —
//! which means every wire lies on a line `a·x + b·y = c` with
//! `a, b ∈ {0, ±1}`. This keeps diagonal geometry on the integer lattice.
//!
//! The crate provides:
//!
//! - [`Point`], [`Vector`] — lattice points and displacements.
//! - [`Dir8`] — the eight routing directions, [`Orient4`] — the four wire
//!   orientations.
//! - [`XLine`] — an X-architecture line in canonical `a·x + b·y = c` form.
//! - [`Segment`] — closed segments with exact intersection and distance
//!   predicates.
//! - [`Rect`] — axis-aligned boxes.
//! - [`Octagon`] — the canonical eight-half-plane octagon used both for
//!   regular octagonal vias/bump pads and for the paper's *octagonal tile
//!   model* (any tile shape degradable from an octagon: rectangles,
//!   triangles, 45°-trapezoids, …).
//! - [`Polyline`] — X-architecture routes with turn-rule validation.
//!
//! # Example
//!
//! ```
//! use info_geom::{Point, Segment, x_arch_len};
//!
//! let a = Point::new(0, 0);
//! let b = Point::new(3_000, 1_000);
//! // Shortest X-architecture path: one 45° diagonal of 1000, then 2000 straight.
//! let len = x_arch_len(a, b);
//! assert!((len - (1_000.0 * 2f64.sqrt() + 2_000.0)).abs() < 1e-6);
//! assert_eq!(Segment::new(a, b).len_euclid().round() as i64, 3_162);
//! ```

mod dir;
mod dist;
mod grid_index;
mod line;
mod octagon;
mod point;
mod polyline;
mod rect;
mod segment;

pub use dir::{Dir8, Orient4};
pub use dist::{euclid, euclid_sq, manhattan, octagonal, x_arch_len};
pub use grid_index::{EntryId, GridIndex};
pub use line::XLine;
pub use octagon::Octagon;
pub use point::{Point, Vector};
pub use polyline::{Polyline, TurnRuleViolation};
pub use rect::Rect;
pub use segment::{SegIntersection, Segment};

/// Integer coordinate type used across the workspace (nanometers).
pub type Coord = i64;

/// Square root of two, used when converting diagonal lattice lengths to
/// Euclidean lengths at reporting boundaries.
pub const SQRT2: f64 = std::f64::consts::SQRT_2;
