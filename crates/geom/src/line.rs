//! X-architecture lines in canonical `a·x + b·y = c` form.

use crate::{Coord, Orient4, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An infinite X-architecture line.
///
/// The line is stored as its [`Orient4`] plus the offset `c` of the
/// canonical equation `a·x + b·y = c`, with `(a, b)` given by
/// [`Orient4::coeffs`]. This is exactly the representation the paper's
/// LP-based layout optimization assigns a `c` variable to: the optimizer
/// moves lines by changing `c` while the orientation stays frozen.
///
/// ```
/// use info_geom::{Orient4, Point, XLine};
/// let l = XLine::through(Point::new(3, 5), Orient4::D135);
/// assert_eq!(l.c(), 8); // x + y = 8
/// assert!(l.contains(Point::new(8, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XLine {
    orient: Orient4,
    c: Coord,
}

impl XLine {
    /// The line of the given orientation passing through `p`.
    #[inline]
    pub fn through(p: Point, orient: Orient4) -> Self {
        let (a, b) = orient.coeffs();
        XLine { orient, c: a * p.x + b * p.y }
    }

    /// Constructs a line from its orientation and offset.
    #[inline]
    pub const fn new(orient: Orient4, c: Coord) -> Self {
        XLine { orient, c }
    }

    /// The orientation of the line.
    #[inline]
    pub const fn orient(self) -> Orient4 {
        self.orient
    }

    /// The offset `c` of the canonical equation.
    #[inline]
    pub const fn c(self) -> Coord {
        self.c
    }

    /// Evaluates `a·x + b·y − c`; zero iff the point lies on the line, and
    /// the sign tells which side the point is on.
    #[inline]
    pub fn eval(self, p: Point) -> Coord {
        let (a, b) = self.orient.coeffs();
        a * p.x + b * p.y - self.c
    }

    /// Whether the point lies exactly on the line.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        self.eval(p) == 0
    }

    /// Intersection point with another line of a *different* orientation.
    ///
    /// Returns `None` for parallel lines, or when the intersection falls off
    /// the integer lattice (an H line meets a diagonal at half-integer
    /// coordinates when the parities of the offsets disagree); in that case
    /// the caller should use [`XLine::crossing_f64`].
    pub fn crossing(self, other: XLine) -> Option<Point> {
        if self.orient == other.orient {
            return None;
        }
        let (a1, b1, c1) = {
            let (a, b) = self.orient.coeffs();
            (a, b, self.c)
        };
        let (a2, b2, c2) = {
            let (a, b) = other.orient.coeffs();
            (a, b, other.c)
        };
        let det = a1 * b2 - a2 * b1;
        debug_assert_ne!(det, 0);
        let xn = c1 * b2 - c2 * b1;
        let yn = a1 * c2 - a2 * c1;
        if xn % det != 0 || yn % det != 0 {
            return None;
        }
        Some(Point::new(xn / det, yn / det))
    }

    /// Intersection with another non-parallel line, in exact rational form
    /// evaluated to `f64` (for crossing detection diagnostics).
    pub fn crossing_f64(self, other: XLine) -> Option<(f64, f64)> {
        if self.orient == other.orient {
            return None;
        }
        let (a1, b1) = self.orient.coeffs();
        let (a2, b2) = other.orient.coeffs();
        let det = (a1 * b2 - a2 * b1) as f64;
        let x = (self.c * b2 - other.c * b1) as f64 / det;
        let y = (a1 * other.c - a2 * self.c) as f64 / det;
        Some((x, y))
    }

    /// Perpendicular Euclidean distance from a point to this line.
    #[inline]
    pub fn distance_to(self, p: Point) -> f64 {
        let e = self.eval(p).abs() as f64;
        if self.orient.is_diagonal() {
            e / crate::SQRT2
        } else {
            e
        }
    }
}

impl fmt::Display for XLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.orient {
            Orient4::H => write!(f, "y = {}", self.c),
            Orient4::V => write!(f, "x = {}", self.c),
            Orient4::D45 => write!(f, "x - y = {}", self.c),
            Orient4::D135 => write!(f, "x + y = {}", self.c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_then_contains() {
        let p = Point::new(-7, 12);
        for o in Orient4::ALL {
            let l = XLine::through(p, o);
            assert!(l.contains(p), "line {l} should contain {p}");
        }
    }

    #[test]
    fn hv_crossing_is_lattice() {
        let h = XLine::new(Orient4::H, 4);
        let v = XLine::new(Orient4::V, -3);
        assert_eq!(h.crossing(v), Some(Point::new(-3, 4)));
        assert_eq!(v.crossing(h), Some(Point::new(-3, 4)));
    }

    #[test]
    fn diagonal_crossing_parity() {
        // x + y = 4 and x − y = 2 meet at (3, 1) — same parity, lattice.
        let a = XLine::new(Orient4::D135, 4);
        let b = XLine::new(Orient4::D45, 2);
        assert_eq!(a.crossing(b), Some(Point::new(3, 1)));
        // x + y = 4 and x − y = 1 meet at (2.5, 1.5) — off-lattice.
        let c = XLine::new(Orient4::D45, 1);
        assert_eq!(a.crossing(c), None);
        let (x, y) = a.crossing_f64(c).unwrap();
        assert!((x - 2.5).abs() < 1e-12 && (y - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_lines_never_cross() {
        let a = XLine::new(Orient4::D45, 0);
        let b = XLine::new(Orient4::D45, 10);
        assert_eq!(a.crossing(b), None);
        assert_eq!(a.crossing_f64(b), None);
    }

    #[test]
    fn distance_accounts_for_diagonal_scaling() {
        let h = XLine::new(Orient4::H, 0);
        assert_eq!(h.distance_to(Point::new(100, 7)), 7.0);
        let d = XLine::new(Orient4::D135, 0);
        let dist = d.distance_to(Point::new(2, 0));
        assert!((dist - crate::SQRT2).abs() < 1e-12);
    }

    #[test]
    fn eval_sign_separates_halfplanes() {
        let l = XLine::new(Orient4::D45, 0); // x - y = 0
        assert!(l.eval(Point::new(5, 0)) > 0);
        assert!(l.eval(Point::new(0, 5)) < 0);
    }
}
