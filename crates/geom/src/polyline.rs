//! X-architecture polylines (routes) with turn-rule validation.

use crate::{Dir8, Point, Segment};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A connected chain of X-architecture wire segments on a single layer.
///
/// Routes in the paper's model are polylines whose segments obey the four
/// wire orientations and whose turns are either right angles or 135° turns
/// (45° turns are forbidden for manufacturability, §II-B).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
}

/// A violation of the X-architecture wiring rules inside a polyline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnRuleViolation {
    /// Two consecutive points coincide.
    DegenerateSegment {
        /// Index of the first of the two coincident points.
        at: usize,
    },
    /// A segment is not horizontal, vertical, or 45°/135° diagonal.
    OffAxisSegment {
        /// Index of the segment's first point.
        at: usize,
    },
    /// Consecutive segments turn by 45° (deviation of 135°) or reverse.
    IllegalTurn {
        /// Index of the joint point.
        at: usize,
    },
}

impl Polyline {
    /// Creates a polyline from its points. At least one point is required
    /// for a meaningful polyline but this is not enforced here; validation
    /// happens in [`Polyline::validate`].
    pub fn new(points: Vec<Point>) -> Self {
        Polyline { points }
    }

    /// The points of the polyline.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Mutable access to the points (used by the LP optimizer to move
    /// joints while keeping the topology).
    #[inline]
    pub fn points_mut(&mut self) -> &mut [Point] {
        &mut self.points
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the polyline has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point, if any.
    #[inline]
    pub fn start(&self) -> Option<Point> {
        self.points.first().copied()
    }

    /// Last point, if any.
    #[inline]
    pub fn end(&self) -> Option<Point> {
        self.points.last().copied()
    }

    /// Iterator over the segments between consecutive points.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total Euclidean length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.len_euclid()).sum()
    }

    /// Appends a point.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Removes repeated points and merges collinear consecutive segments.
    ///
    /// ```
    /// use info_geom::{Point, Polyline};
    /// let mut p = Polyline::new(vec![
    ///     Point::new(0, 0), Point::new(5, 0), Point::new(5, 0), Point::new(9, 0),
    ///     Point::new(9, 4),
    /// ]);
    /// p.simplify();
    /// assert_eq!(p.points(), &[Point::new(0, 0), Point::new(9, 0), Point::new(9, 4)]);
    /// ```
    pub fn simplify(&mut self) {
        if self.points.len() < 2 {
            return;
        }
        let mut out: Vec<Point> = Vec::with_capacity(self.points.len());
        for &p in &self.points {
            if out.last() == Some(&p) {
                continue;
            }
            while out.len() >= 2 {
                let a = out[out.len() - 2];
                let b = out[out.len() - 1];
                let d1 = Dir8::of_vector(b - a);
                let d2 = Dir8::of_vector(p - b);
                if d1.is_some() && d1 == d2 {
                    out.pop();
                } else {
                    break;
                }
            }
            out.push(p);
        }
        self.points = out;
    }

    /// Checks the X-architecture wiring rules.
    ///
    /// # Errors
    ///
    /// Returns the first [`TurnRuleViolation`] encountered: a degenerate
    /// segment, an off-axis segment, or an illegal (45° or 180°) turn.
    pub fn validate(&self) -> Result<(), TurnRuleViolation> {
        let mut prev_dir: Option<Dir8> = None;
        for (i, w) in self.points.windows(2).enumerate() {
            let v = w[1] - w[0];
            if v == crate::Vector::zero() {
                return Err(TurnRuleViolation::DegenerateSegment { at: i });
            }
            let dir = Dir8::of_vector(v).ok_or(TurnRuleViolation::OffAxisSegment { at: i })?;
            if let Some(pd) = prev_dir {
                // Deviation of 0 (straight), 1 (135° turn) or 2 (right
                // angle) is legal; 3 is the forbidden 45° turn, 4 a U-turn.
                if pd.angular_distance(dir) > 2 {
                    return Err(TurnRuleViolation::IllegalTurn { at: i });
                }
            }
            prev_dir = Some(dir);
        }
        Ok(())
    }

    /// Whether any segment of `self` properly crosses any segment of
    /// `other` (shared joints excluded).
    pub fn crosses(&self, other: &Polyline) -> bool {
        self.segments().any(|a| other.segments().any(|b| a.crosses_properly(b)))
    }
}

impl FromIterator<Point> for Polyline {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

impl fmt::Display for TurnRuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurnRuleViolation::DegenerateSegment { at } => {
                write!(f, "degenerate segment at point {at}")
            }
            TurnRuleViolation::OffAxisSegment { at } => {
                write!(f, "off-axis segment at point {at}")
            }
            TurnRuleViolation::IllegalTurn { at } => {
                write!(f, "illegal 45° or 180° turn at point {at}")
            }
        }
    }
}

impl std::error::Error for TurnRuleViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(pts: &[(i64, i64)]) -> Polyline {
        pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn valid_route_with_right_angle_and_135_turn() {
        // East, then NE (135° turn), then N (another 135° turn).
        let p = pl(&[(0, 0), (10, 0), (15, 5), (15, 12)]);
        assert!(p.validate().is_ok());
        let expected = 10.0 + 5.0 * crate::SQRT2 + 7.0;
        assert!((p.length() - expected).abs() < 1e-9);
    }

    #[test]
    fn right_angle_is_legal() {
        let p = pl(&[(0, 0), (10, 0), (10, 10)]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn forty_five_degree_turn_rejected() {
        // East then NW: deviation of 3 steps = forbidden 45° turn.
        let p = pl(&[(0, 0), (10, 0), (5, 5)]);
        assert_eq!(p.validate(), Err(TurnRuleViolation::IllegalTurn { at: 1 }));
    }

    #[test]
    fn u_turn_rejected() {
        let p = pl(&[(0, 0), (10, 0), (3, 0)]);
        assert_eq!(p.validate(), Err(TurnRuleViolation::IllegalTurn { at: 1 }));
    }

    #[test]
    fn off_axis_rejected() {
        let p = pl(&[(0, 0), (10, 3)]);
        assert_eq!(p.validate(), Err(TurnRuleViolation::OffAxisSegment { at: 0 }));
    }

    #[test]
    fn degenerate_rejected() {
        let p = pl(&[(0, 0), (0, 0), (5, 0)]);
        assert_eq!(p.validate(), Err(TurnRuleViolation::DegenerateSegment { at: 0 }));
    }

    #[test]
    fn simplify_merges_collinear_runs() {
        let mut p = pl(&[(0, 0), (2, 2), (5, 5), (5, 5), (5, 9), (5, 12)]);
        p.simplify();
        assert_eq!(p.points(), &[Point::new(0, 0), Point::new(5, 5), Point::new(5, 12)]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn crossing_detection_between_routes() {
        let a = pl(&[(0, 0), (10, 0)]);
        let b = pl(&[(5, -5), (5, 5)]);
        assert!(a.crosses(&b));
        let c = pl(&[(0, 1), (10, 1)]);
        assert!(!a.crosses(&c));
        // Shared joint is not a proper crossing.
        let d = pl(&[(10, 0), (10, 10)]);
        assert!(!a.crosses(&d));
    }

    #[test]
    fn empty_and_single_point_validate() {
        assert!(pl(&[]).validate().is_ok());
        assert!(pl(&[(3, 3)]).validate().is_ok());
        assert_eq!(pl(&[]).length(), 0.0);
    }
}
