//! Closed line segments with exact intersection and distance predicates.

use crate::{Dir8, Orient4, Point, Vector, XLine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed segment between two lattice points.
///
/// Wire segments in an RDL are always X-architecture segments (see
/// [`Segment::orient`]), but the type itself supports arbitrary endpoints so
/// DRC can reason about malformed inputs too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// Classification of how two segments intersect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegIntersection {
    /// The segments do not touch.
    None,
    /// They meet in exactly one point (returned with exact `f64`
    /// coordinates; lattice intersections have integral values).
    Point(f64, f64),
    /// They overlap along a shared sub-segment of positive length.
    Overlap(Segment),
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Displacement from `a` to `b`.
    #[inline]
    pub fn delta(self) -> Vector {
        self.b - self.a
    }

    /// Whether the segment has zero length.
    #[inline]
    pub fn is_degenerate(self) -> bool {
        self.a == self.b
    }

    /// Euclidean length.
    #[inline]
    pub fn len_euclid(self) -> f64 {
        self.delta().norm()
    }

    /// The wire orientation, if this is a nonzero X-architecture segment.
    #[inline]
    pub fn orient(self) -> Option<Orient4> {
        Orient4::of_vector(self.delta())
    }

    /// The routing direction from `a` to `b`, if X-architecture.
    #[inline]
    pub fn dir(self) -> Option<Dir8> {
        Dir8::of_vector(self.delta())
    }

    /// The supporting [`XLine`], if this is a nonzero X-architecture segment.
    #[inline]
    pub fn supporting_line(self) -> Option<XLine> {
        self.orient().map(|o| XLine::through(self.a, o))
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Midpoint, rounded toward `a` on odd spans.
    #[inline]
    pub fn midpoint(self) -> Point {
        Point::new(self.a.x + (self.b.x - self.a.x) / 2, self.a.y + (self.b.y - self.a.y) / 2)
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    #[inline]
    pub fn bbox(self) -> (Point, Point) {
        (self.a.min(self.b), self.a.max(self.b))
    }

    /// Whether `p` lies on this closed segment (exact).
    pub fn contains(self, p: Point) -> bool {
        let d = self.delta();
        let ap = p - self.a;
        if d.cross(ap) != 0 {
            return false;
        }
        let t = d.dot(ap);
        t >= 0 && t <= d.norm_sq()
    }

    /// Exact intersection classification of two closed segments.
    ///
    /// Endpoint touches count as [`SegIntersection::Point`]; collinear
    /// overlaps of positive length are reported as
    /// [`SegIntersection::Overlap`]. Degenerate (zero-length) segments are
    /// treated as points.
    pub fn intersect(self, other: Segment) -> SegIntersection {
        // Degenerate cases first.
        match (self.is_degenerate(), other.is_degenerate()) {
            (true, true) => {
                return if self.a == other.a {
                    SegIntersection::Point(self.a.x as f64, self.a.y as f64)
                } else {
                    SegIntersection::None
                };
            }
            (true, false) => {
                return if other.contains(self.a) {
                    SegIntersection::Point(self.a.x as f64, self.a.y as f64)
                } else {
                    SegIntersection::None
                };
            }
            (false, true) => {
                return if self.contains(other.a) {
                    SegIntersection::Point(other.a.x as f64, other.a.y as f64)
                } else {
                    SegIntersection::None
                };
            }
            (false, false) => {}
        }

        let d1 = self.delta();
        let d2 = other.delta();
        let denom = d1.cross(d2);
        let ao = other.a - self.a;

        if denom == 0 {
            // Parallel. Collinear only if other.a lies on our supporting line.
            if d1.cross(ao) != 0 {
                return SegIntersection::None;
            }
            // Project onto d1 to find overlap interval.
            let len_sq = d1.norm_sq();
            let t0 = d1.dot(ao);
            let t1 = d1.dot(other.b - self.a);
            let (tmin, tmax) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let lo = tmin.max(0);
            let hi = tmax.min(len_sq);
            if lo > hi {
                return SegIntersection::None;
            }
            if lo == hi {
                // Touch at a single endpoint. Recover the lattice point.
                let p = if lo == 0 {
                    self.a
                } else if lo == len_sq {
                    self.b
                } else if other.contains(self.a) {
                    self.a
                } else {
                    self.b
                };
                return SegIntersection::Point(p.x as f64, p.y as f64);
            }
            // Endpoints of the overlap are endpoints of one of the inputs.
            let mut pts: Vec<Point> = Vec::with_capacity(2);
            for p in [self.a, self.b, other.a, other.b] {
                if self.contains(p) && other.contains(p) && !pts.contains(&p) {
                    pts.push(p);
                }
            }
            debug_assert!(pts.len() >= 2, "positive-length overlap must expose two endpoints");
            pts.sort();
            return SegIntersection::Overlap(Segment::new(pts[0], *pts.last().expect("nonempty")));
        }

        // General position: solve self.a + t·d1 = other.a + u·d2 for
        // t, u ∈ [0, 1] using exact integer arithmetic.
        let t_num = ao.cross(d2);
        let u_num = ao.cross(d1);
        let inside = |num: i128, den: i128| -> bool {
            if den > 0 {
                (0..=den).contains(&num)
            } else {
                (den..=0).contains(&num)
            }
        };
        if !inside(t_num, denom) || !inside(u_num, denom) {
            return SegIntersection::None;
        }
        let t = t_num as f64 / denom as f64;
        let x = self.a.x as f64 + t * d1.dx as f64;
        let y = self.a.y as f64 + t * d1.dy as f64;
        SegIntersection::Point(x, y)
    }

    /// Whether the two segments share any point (including endpoint touches
    /// and overlaps).
    #[inline]
    pub fn touches(self, other: Segment) -> bool {
        !matches!(self.intersect(other), SegIntersection::None)
    }

    /// Whether the segments *cross properly*: they intersect in a single
    /// point interior to both. This is the paper's wire-crossing test used
    /// by the LP legalizer — shared endpoints (route joints) do not count.
    pub fn crosses_properly(self, other: Segment) -> bool {
        if self.is_degenerate() || other.is_degenerate() {
            return false;
        }
        let d1 = self.delta();
        let d2 = other.delta();
        let denom = d1.cross(d2);
        if denom == 0 {
            return false;
        }
        let ao = other.a - self.a;
        let t_num = ao.cross(d2);
        let u_num = ao.cross(d1);
        let strictly_inside = |num: i128, den: i128| -> bool {
            if den > 0 {
                num > 0 && num < den
            } else {
                num < 0 && num > den
            }
        };
        strictly_inside(t_num, denom) && strictly_inside(u_num, denom)
    }

    /// Euclidean distance from a point to this closed segment.
    pub fn distance_to_point(self, p: Point) -> f64 {
        let d = self.delta();
        let len_sq = d.norm_sq();
        if len_sq == 0 {
            return (p - self.a).norm();
        }
        let t = d.dot(p - self.a);
        if t <= 0 {
            (p - self.a).norm()
        } else if t >= len_sq {
            (p - self.b).norm()
        } else {
            // Perpendicular distance: |cross| / |d|.
            let num = d.cross(p - self.a).unsigned_abs() as f64;
            num / (len_sq as f64).sqrt()
        }
    }

    /// Euclidean distance between two closed segments (zero if they touch).
    pub fn distance_to_segment(self, other: Segment) -> f64 {
        if self.touches(other) {
            return 0.0;
        }
        let d1 = self
            .distance_to_point(other.a)
            .min(self.distance_to_point(other.b));
        let d2 = other
            .distance_to_point(self.a)
            .min(other.distance_to_point(self.b));
        d1.min(d2)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn orientation_detection() {
        assert_eq!(seg(0, 0, 5, 0).orient(), Some(Orient4::H));
        assert_eq!(seg(0, 0, 0, 5).orient(), Some(Orient4::V));
        assert_eq!(seg(0, 0, 5, 5).orient(), Some(Orient4::D45));
        assert_eq!(seg(0, 0, 5, -5).orient(), Some(Orient4::D135));
        assert_eq!(seg(0, 0, 5, 3).orient(), None);
        assert_eq!(seg(2, 2, 2, 2).orient(), None);
    }

    #[test]
    fn proper_crossing_detected() {
        let h = seg(0, 0, 10, 0);
        let v = seg(5, -5, 5, 5);
        assert!(h.crosses_properly(v));
        assert!(v.crosses_properly(h));
        match h.intersect(v) {
            SegIntersection::Point(x, y) => {
                assert_eq!((x, y), (5.0, 0.0));
            }
            other => panic!("expected point intersection, got {other:?}"),
        }
    }

    #[test]
    fn endpoint_touch_is_not_proper() {
        let a = seg(0, 0, 10, 0);
        let b = seg(10, 0, 10, 10);
        assert!(!a.crosses_properly(b));
        assert!(a.touches(b));
    }

    #[test]
    fn t_touch_is_not_proper() {
        // b's endpoint lies interior to a: a "T" junction, not a crossing.
        let a = seg(0, 0, 10, 0);
        let b = seg(5, 0, 5, 10);
        assert!(!a.crosses_properly(b));
        assert!(a.touches(b));
    }

    #[test]
    fn diagonal_crossing_off_lattice() {
        let a = seg(0, 0, 3, 3);
        let b = seg(0, 1, 3, -2);
        // Lines x−y=0 and x+y=1 meet at (0.5, 0.5).
        match a.intersect(b) {
            SegIntersection::Point(x, y) => {
                assert!((x - 0.5).abs() < 1e-12 && (y - 0.5).abs() < 1e-12);
            }
            other => panic!("expected point, got {other:?}"),
        }
        assert!(a.crosses_properly(b));
    }

    #[test]
    fn collinear_overlap_reported() {
        let a = seg(0, 0, 10, 0);
        let b = seg(4, 0, 20, 0);
        match a.intersect(b) {
            SegIntersection::Overlap(s) => {
                assert_eq!(s, seg(4, 0, 10, 0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
        assert!(!a.crosses_properly(b));
    }

    #[test]
    fn collinear_endpoint_touch() {
        let a = seg(0, 0, 10, 0);
        let b = seg(10, 0, 20, 0);
        match a.intersect(b) {
            SegIntersection::Point(x, y) => assert_eq!((x, y), (10.0, 0.0)),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_parallel() {
        let a = seg(0, 0, 10, 0);
        let b = seg(0, 1, 10, 1);
        assert_eq!(a.intersect(b), SegIntersection::None);
        assert!((a.distance_to_segment(b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_distance_clamps_to_endpoints() {
        let s = seg(0, 0, 10, 0);
        assert_eq!(s.distance_to_point(Point::new(-3, 4)), 5.0);
        assert_eq!(s.distance_to_point(Point::new(13, 4)), 5.0);
        assert_eq!(s.distance_to_point(Point::new(5, 4)), 4.0);
        assert_eq!(s.distance_to_point(Point::new(7, 0)), 0.0);
    }

    #[test]
    fn degenerate_segments_behave_as_points() {
        let p = seg(3, 3, 3, 3);
        let s = seg(0, 0, 6, 6);
        assert!(matches!(p.intersect(s), SegIntersection::Point(..)));
        assert!(matches!(s.intersect(p), SegIntersection::Point(..)));
        assert!(!p.crosses_properly(s));
        assert_eq!(p.intersect(seg(4, 4, 4, 4)), SegIntersection::None);
    }

    #[test]
    fn contains_is_exact_on_diagonals() {
        let s = seg(0, 0, 8, 8);
        assert!(s.contains(Point::new(5, 5)));
        assert!(!s.contains(Point::new(5, 6)));
        assert!(!s.contains(Point::new(9, 9)));
    }

    #[test]
    fn segment_distance_zero_when_touching() {
        let a = seg(0, 0, 10, 10);
        let b = seg(10, 10, 20, 10);
        assert_eq!(a.distance_to_segment(b), 0.0);
    }
}
