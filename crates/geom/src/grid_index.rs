//! A uniform grid-bucket spatial index over axis-aligned bounding boxes.
//!
//! The routing flow's hot paths — design-rule spacing sweeps, routing-space
//! rebuilds, clearance trials — all reduce to the same primitive: *find
//! every item whose bounding box intersects this rectangle*. The naive
//! all-pairs scan is O(n²) over the layout; [`GridIndex`] makes each query
//! proportional to the geometry actually near the probe.
//!
//! Design points:
//!
//! - **Uniform buckets.** The indexed region is cut into a fixed grid of
//!   rectangular buckets; an item is registered in every bucket its
//!   bounding box overlaps. Package geometry (pads, vias, wire segments)
//!   is small and near-uniformly scattered, which is the regime where a
//!   uniform grid beats tree structures — O(1) insertion/removal and no
//!   rebalancing.
//! - **Deterministic queries.** [`GridIndex::query`] returns entry ids in
//!   ascending insertion order, deduplicated, regardless of how many
//!   buckets an item straddles. Callers that iterate query results and
//!   push findings therefore produce byte-identical output to the naive
//!   ordered scan — the property the golden-layout suite pins.
//! - **Stable handles.** [`EntryId`]s survive unrelated insertions and
//!   removals (slot reuse is explicit via a free list), so incremental
//!   rip-up/re-insert keeps ids of untouched geometry valid.
//! - **Unbounded outliers are fine.** Items and probes outside the indexed
//!   bounds are clamped to the boundary buckets; correctness never depends
//!   on the bounds, only the query speed does.

use crate::point::Point;
use crate::rect::Rect;
use crate::Coord;

/// Stable handle of one indexed item (valid until [`GridIndex::remove`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(u32);

impl EntryId {
    /// The raw slot index (stable for the lifetime of the entry).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    bbox: Rect,
    value: T,
}

/// A uniform grid-bucket index of `(bbox, value)` items.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bounds: Rect,
    cols: usize,
    rows: usize,
    /// `rows × cols` buckets of entry slots, row-major.
    buckets: Vec<Vec<u32>>,
    entries: Vec<Option<Entry<T>>>,
    free: Vec<u32>,
    len: usize,
    /// Monotonic stamp per query pass, used to dedup without sorting.
    stamp: u64,
    seen: Vec<u64>,
}

impl<T> GridIndex<T> {
    /// An index over `bounds` with an explicit `cols × rows` bucket grid.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn with_grid(bounds: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one bucket");
        GridIndex {
            bounds,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
            stamp: 0,
            seen: Vec::new(),
        }
    }

    /// An index over `bounds` sized for roughly `expected_items` items:
    /// about four items per bucket, clamped to a `4..=96` grid per axis.
    ///
    /// The cell-sizing rationale (see DESIGN.md §4c): buckets much smaller
    /// than the typical item duplicate every item into many buckets;
    /// buckets much larger than the query reach degrade to the naive scan.
    /// √(n/4) per axis keeps the expected bucket occupancy constant as the
    /// instance grows.
    pub fn with_capacity_hint(bounds: Rect, expected_items: usize) -> Self {
        let per_axis = ((expected_items as f64 / 4.0).sqrt().ceil() as usize).clamp(4, 96);
        Self::with_grid(bounds, per_axis, per_axis)
    }

    /// An index over `bounds` with buckets no smaller than `min_cell` on
    /// either axis (use the dominant clearance reach so a typical probe
    /// touches O(1) buckets).
    pub fn with_min_cell(bounds: Rect, min_cell: Coord, expected_items: usize) -> Self {
        let min_cell = min_cell.max(1);
        let cols_fit = (bounds.width() / min_cell).max(1) as usize;
        let rows_fit = (bounds.height() / min_cell).max(1) as usize;
        let per_axis = ((expected_items as f64 / 4.0).sqrt().ceil() as usize).clamp(4, 96);
        Self::with_grid(bounds, per_axis.min(cols_fit), per_axis.min(rows_fit))
    }

    /// The indexed bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The bucket grid dimensions `(cols, rows)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket column range `[lo, hi]` covered by `[x0, x1]`, clamped.
    fn col_span(&self, x0: Coord, x1: Coord) -> (usize, usize) {
        (self.axis_bucket(x0, true), self.axis_bucket(x1, true))
    }

    fn row_span(&self, y0: Coord, y1: Coord) -> (usize, usize) {
        (self.axis_bucket(y0, false), self.axis_bucket(y1, false))
    }

    fn axis_bucket(&self, v: Coord, horizontal: bool) -> usize {
        let (lo, extent, n) = if horizontal {
            (self.bounds.lo.x, self.bounds.width().max(1) as i128, self.cols)
        } else {
            (self.bounds.lo.y, self.bounds.height().max(1) as i128, self.rows)
        };
        let off = (v as i128 - lo as i128).max(0);
        (((off * n as i128) / extent) as usize).min(n - 1)
    }

    fn buckets_of(&self, bbox: Rect) -> impl Iterator<Item = usize> + '_ {
        let (c0, c1) = self.col_span(bbox.lo.x, bbox.hi.x);
        let (r0, r1) = self.row_span(bbox.lo.y, bbox.hi.y);
        let cols = self.cols;
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| r * cols + c))
    }

    /// Inserts an item under its bounding box, returning its stable id.
    pub fn insert(&mut self, bbox: Rect, value: T) -> EntryId {
        let slot = match self.free.pop() {
            Some(s) => {
                self.entries[s as usize] = Some(Entry { bbox, value });
                s
            }
            None => {
                self.entries.push(Some(Entry { bbox, value }));
                self.seen.push(0);
                (self.entries.len() - 1) as u32
            }
        };
        for b in self.buckets_of(bbox).collect::<Vec<_>>() {
            self.buckets[b].push(slot);
        }
        self.len += 1;
        EntryId(slot)
    }

    /// Removes an item, returning its value (`None` if already removed).
    pub fn remove(&mut self, id: EntryId) -> Option<T> {
        let entry = self.entries.get_mut(id.index())?.take()?;
        for b in self.buckets_of(entry.bbox).collect::<Vec<_>>() {
            self.buckets[b].retain(|&s| s != id.0);
        }
        self.free.push(id.0);
        self.len -= 1;
        Some(entry.value)
    }

    /// The `(bbox, value)` of a live entry.
    pub fn get(&self, id: EntryId) -> Option<(Rect, &T)> {
        self.entries
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|e| (e.bbox, &e.value))
    }

    /// Ids of all items whose bounding box intersects `area`, in ascending
    /// insertion (slot) order, deduplicated.
    pub fn query(&mut self, area: Rect) -> Vec<EntryId> {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut out: Vec<EntryId> = Vec::new();
        let (c0, c1) = self.col_span(area.lo.x, area.hi.x);
        let (r0, r1) = self.row_span(area.lo.y, area.hi.y);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &slot in &self.buckets[r * self.cols + c] {
                    let s = slot as usize;
                    if self.seen[s] == stamp {
                        continue;
                    }
                    self.seen[s] = stamp;
                    if let Some(e) = &self.entries[s] {
                        if e.bbox.intersects(area) {
                            out.push(EntryId(slot));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Like [`query`](Self::query) but immutable: ids are deduplicated via
    /// sort, without the stamp optimization. Prefer `query` on hot paths.
    pub fn query_ref(&self, area: Rect) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = Vec::new();
        let (c0, c1) = self.col_span(area.lo.x, area.hi.x);
        let (r0, r1) = self.row_span(area.lo.y, area.hi.y);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &slot in &self.buckets[r * self.cols + c] {
                    if let Some(e) = &self.entries[slot as usize] {
                        if e.bbox.intersects(area) {
                            out.push(EntryId(slot));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Calls `f` for every item intersecting `area`, in ascending insertion
    /// order.
    pub fn for_each_in<F: FnMut(EntryId, Rect, &T)>(&self, area: Rect, mut f: F) {
        for id in self.query_ref(area) {
            let e = self.entries[id.index()].as_ref().expect("live entry");
            f(id, e.bbox, &e.value);
        }
    }

    /// Iterates all live entries in slot order (diagnostics / tests).
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Rect, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (EntryId(i as u32), e.bbox, &e.value)))
    }

    /// Point containment query: items whose bbox contains `p`.
    pub fn query_point(&mut self, p: Point) -> Vec<EntryId> {
        self.query(Rect::new(p, p))
    }
}

/// Builds an index from an ordered item list (id `k` ↔ the `k`-th item).
impl<T> FromIterator<(Rect, T)> for GridIndex<T> {
    fn from_iter<I: IntoIterator<Item = (Rect, T)>>(iter: I) -> Self {
        let items: Vec<(Rect, T)> = iter.into_iter().collect();
        let bounds = items
            .iter()
            .map(|(b, _)| *b)
            .reduce(|a, b| a.union(b))
            .unwrap_or_else(|| Rect::new(Point::new(0, 0), Point::new(1, 1)));
        let mut idx = GridIndex::with_capacity_hint(bounds, items.len());
        for (bbox, value) in items {
            idx.insert(bbox, value);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut idx = GridIndex::with_grid(r(0, 0, 1_000, 1_000), 8, 8);
        let a = idx.insert(r(10, 10, 100, 100), "a");
        let b = idx.insert(r(500, 500, 600, 600), "b");
        let c = idx.insert(r(90, 90, 510, 510), "c"); // straddles both
        assert_eq!(idx.len(), 3);

        assert_eq!(idx.query(r(0, 0, 50, 50)), vec![a]);
        assert_eq!(idx.query(r(95, 95, 99, 99)), vec![a, c]);
        assert_eq!(idx.query(r(505, 505, 700, 700)), vec![b, c]);
        assert_eq!(idx.query(r(0, 0, 1_000, 1_000)), vec![a, b, c]);

        assert_eq!(idx.remove(c), Some("c"));
        assert_eq!(idx.remove(c), None);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.query(r(95, 95, 99, 99)), vec![a]);
    }

    #[test]
    fn queries_are_sorted_and_deduped() {
        let mut idx = GridIndex::with_grid(r(0, 0, 100, 100), 10, 10);
        // An item spanning many buckets appears once.
        let big = idx.insert(r(0, 0, 100, 100), ());
        let small = idx.insert(r(5, 5, 6, 6), ());
        let hits = idx.query(r(0, 0, 100, 100));
        assert_eq!(hits, vec![big, small]);
        assert_eq!(idx.query_ref(r(0, 0, 100, 100)), hits);
    }

    #[test]
    fn out_of_bounds_items_clamp_to_border_buckets() {
        let mut idx = GridIndex::with_grid(r(0, 0, 100, 100), 4, 4);
        let out = idx.insert(r(-500, -500, -400, -400), "out");
        // An intersecting probe outside the bounds still finds it.
        assert_eq!(idx.query(r(-1_000, -1_000, -450, -450)), vec![out]);
        // A probe on the opposite corner does not.
        assert!(idx.query(r(200, 200, 300, 300)).is_empty());
    }

    #[test]
    fn slot_reuse_keeps_other_ids_stable() {
        let mut idx = GridIndex::with_grid(r(0, 0, 100, 100), 4, 4);
        let a = idx.insert(r(0, 0, 10, 10), 1);
        let b = idx.insert(r(20, 20, 30, 30), 2);
        idx.remove(a);
        let c = idx.insert(r(40, 40, 50, 50), 3);
        // Freed slot is reused, so c takes a's slot; b is untouched.
        assert_eq!(c.index(), a.index());
        assert_eq!(idx.get(b).map(|(_, v)| *v), Some(2));
        assert_eq!(idx.query(r(0, 0, 100, 100)).len(), 2);
    }

    #[test]
    fn from_iterator_preserves_order() {
        let items = vec![(r(0, 0, 10, 10), 0usize), (r(50, 50, 60, 60), 1), (r(5, 5, 55, 55), 2)];
        let mut idx: GridIndex<usize> = items.into_iter().collect();
        let ids = idx.query(r(0, 0, 100, 100));
        let vals: Vec<usize> = ids.iter().map(|&i| *idx.get(i).unwrap().1).collect();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn degenerate_bounds_do_not_panic() {
        let mut idx = GridIndex::with_grid(r(0, 0, 0, 0), 1, 1);
        let a = idx.insert(r(0, 0, 0, 0), ());
        assert_eq!(idx.query(r(-10, -10, 10, 10)), vec![a]);
        let idx2 = GridIndex::<()>::with_capacity_hint(r(0, 0, 0, 0), 0);
        assert_eq!(idx2.grid(), (4, 4));
    }
}
