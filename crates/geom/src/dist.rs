//! Distance functions used for heuristics and wirelength accounting.

use crate::Point;

/// Squared Euclidean distance, exact in `i128`.
///
/// ```
/// use info_geom::{euclid_sq, Point};
/// assert_eq!(euclid_sq(Point::new(0, 0), Point::new(3, 4)), 25);
/// ```
#[inline]
pub fn euclid_sq(a: Point, b: Point) -> i128 {
    (a - b).norm_sq()
}

/// Euclidean distance as `f64`.
#[inline]
pub fn euclid(a: Point, b: Point) -> f64 {
    (a - b).norm()
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: Point, b: Point) -> i64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

/// Chebyshev (L∞) distance — the number of unit king moves between lattice
/// points, useful as an integer lower bound on X-architecture hop counts.
#[inline]
pub fn octagonal(a: Point, b: Point) -> i64 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Length of a shortest X-architecture path between two points.
///
/// With `dx = |Δx|`, `dy = |Δy|` and `m = min(dx, dy)`, the optimum walks the
/// diagonal for `m` steps (length `m·√2`) then straight for `|dx − dy|`.
/// This is the exact minimum wirelength of any route obeying the four
/// orientations, hence an admissible (and tight) A* heuristic and the
/// denominator of the paper's *detour rate* `r_d(n)`.
///
/// ```
/// use info_geom::{x_arch_len, Point};
/// let l = x_arch_len(Point::new(0, 0), Point::new(5, 2));
/// assert!((l - (2.0 * std::f64::consts::SQRT_2 + 3.0)).abs() < 1e-9);
/// ```
#[inline]
pub fn x_arch_len(a: Point, b: Point) -> f64 {
    let dx = (a.x - b.x).abs();
    let dy = (a.y - b.y).abs();
    let m = dx.min(dy);
    m as f64 * crate::SQRT2 + (dx - dy).abs() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_arch_len_never_exceeds_manhattan_nor_undershoots_euclid() {
        let pts = [
            (Point::new(0, 0), Point::new(10, 0)),
            (Point::new(0, 0), Point::new(10, 10)),
            (Point::new(-3, 7), Point::new(12, -5)),
            (Point::new(5, 5), Point::new(5, 5)),
        ];
        for (a, b) in pts {
            let x = x_arch_len(a, b);
            assert!(x <= manhattan(a, b) as f64 + 1e-9);
            assert!(x >= euclid(a, b) - 1e-9);
        }
    }

    #[test]
    fn pure_diagonal_is_sqrt2_per_step() {
        let l = x_arch_len(Point::new(0, 0), Point::new(7, -7));
        assert!((l - 7.0 * crate::SQRT2).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = Point::new(-4, 9);
        let b = Point::new(13, 2);
        assert_eq!(manhattan(a, b), manhattan(b, a));
        assert_eq!(octagonal(a, b), octagonal(b, a));
        assert_eq!(euclid_sq(a, b), euclid_sq(b, a));
        assert_eq!(x_arch_len(a, b), x_arch_len(b, a));
    }

    #[test]
    fn zero_distance_at_identity() {
        let p = Point::new(42, -17);
        assert_eq!(manhattan(p, p), 0);
        assert_eq!(octagonal(p, p), 0);
        assert_eq!(x_arch_len(p, p), 0.0);
    }
}
