//! Property-based tests for the geometry kernel.

use info_geom::{
    euclid, x_arch_len, manhattan, Dir8, Octagon, Orient4, Point, Polyline, Rect, SegIntersection,
    Segment, XLine,
};
use proptest::prelude::*;

const R: i64 = 10_000;

fn arb_point() -> impl Strategy<Value = Point> {
    (-R..R, -R..R).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn arb_octagon() -> impl Strategy<Value = Octagon> {
    prop_oneof![
        arb_rect().prop_map(Octagon::from_rect),
        (arb_point(), 2i64..2_000).prop_map(|(c, w)| Octagon::regular(c, w)),
        (arb_rect(), -R..R, any::<bool>(), any::<bool>()).prop_map(|(r, c, d45, le)| {
            let o = Octagon::from_rect(r);
            let orient = if d45 { Orient4::D45 } else { Orient4::D135 };
            o.clip_halfplane(XLine::new(orient, c), le)
        }),
    ]
}

proptest! {
    #[test]
    fn segment_intersection_is_symmetric(a in arb_segment(), b in arb_segment()) {
        let ab = a.intersect(b);
        let ba = b.intersect(a);
        match (ab, ba) {
            (SegIntersection::None, SegIntersection::None) => {}
            (SegIntersection::Point(x1, y1), SegIntersection::Point(x2, y2)) => {
                prop_assert!((x1 - x2).abs() < 1e-6 && (y1 - y2).abs() < 1e-6);
            }
            (SegIntersection::Overlap(s1), SegIntersection::Overlap(s2)) => {
                prop_assert_eq!(s1, s2);
            }
            other => prop_assert!(false, "asymmetric intersection: {:?}", other),
        }
    }

    #[test]
    fn proper_crossing_implies_point_intersection(a in arb_segment(), b in arb_segment()) {
        if a.crosses_properly(b) {
            prop_assert!(matches!(a.intersect(b), SegIntersection::Point(..)));
            prop_assert!(b.crosses_properly(a));
        }
    }

    #[test]
    fn segment_distance_zero_iff_touching(a in arb_segment(), b in arb_segment()) {
        let d = a.distance_to_segment(b);
        prop_assert_eq!(d == 0.0, a.touches(b));
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn segment_contains_endpoint(s in arb_segment()) {
        prop_assert!(s.contains(s.a));
        prop_assert!(s.contains(s.b));
        // midpoint of an even-span x-arch segment is on the segment
        if s.delta().dx % 2 == 0 && s.delta().dy % 2 == 0 {
            prop_assert!(s.contains(s.midpoint()));
        }
    }

    #[test]
    fn x_arch_len_sandwiched(a in arb_point(), b in arb_point()) {
        let x = x_arch_len(a, b);
        prop_assert!(x <= manhattan(a, b) as f64 + 1e-6);
        prop_assert!(x >= euclid(a, b) - 1e-6);
    }

    #[test]
    fn x_arch_len_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(x_arch_len(a, c) <= x_arch_len(a, b) + x_arch_len(b, c) + 1e-6);
    }

    #[test]
    fn rect_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
        }
    }

    #[test]
    fn octagon_canonical_bounds_supported(o in arb_octagon()) {
        if !o.is_empty() {
            // Every vertex must satisfy all eight constraints.
            for v in o.vertices() {
                prop_assert!(o.contains(v), "vertex {} escapes {}", v, o);
            }
            prop_assert!(o.contains(o.interior_point()));
            prop_assert!(o.area() >= 0);
        }
    }

    #[test]
    fn octagon_intersection_sound(a in arb_octagon(), b in arb_octagon(), p in arb_point()) {
        let i = a.intersection(&b);
        // Soundness: p in both => p in intersection; p in intersection => in both.
        if a.contains(p) && b.contains(p) {
            prop_assert!(i.contains(p));
        }
        if !i.is_empty() && i.contains(p) {
            prop_assert!(a.contains(p) && b.contains(p));
        }
    }

    #[test]
    fn octagon_inflate_covers_neighborhood(o in arb_octagon(), p in arb_point(), m in 1i64..100) {
        if !o.is_empty() {
            let big = o.inflate(m);
            if o.distance_to_point(p) <= m as f64 {
                prop_assert!(big.contains(p));
            }
        }
    }

    #[test]
    fn octagon_point_distance_consistent_with_contains(o in arb_octagon(), p in arb_point()) {
        if !o.is_empty() {
            let d = o.distance_to_point(p);
            prop_assert_eq!(d == 0.0, o.contains(p), "d = {} for {} in {}", d, p, o);
        }
    }

    #[test]
    fn clip_halfplane_partition(o in arb_octagon(), c in -R..R, p in arb_point()) {
        if !o.is_empty() {
            let l = XLine::new(Orient4::D45, c);
            let le = o.clip_halfplane(l, true);
            let ge = o.clip_halfplane(l, false);
            if o.contains(p) {
                // Every point of o lands in at least one half (both on the line).
                let in_le = !le.is_empty() && le.contains(p);
                let in_ge = !ge.is_empty() && ge.contains(p);
                prop_assert!(in_le || in_ge);
                if in_le && in_ge {
                    prop_assert_eq!(l.eval(p), 0);
                }
            }
        }
    }

    #[test]
    fn xline_crossing_on_both_lines(p in arb_point(), q in arb_point()) {
        for o1 in Orient4::ALL {
            for o2 in Orient4::ALL {
                let l1 = XLine::through(p, o1);
                let l2 = XLine::through(q, o2);
                if let Some(x) = l1.crossing(l2) {
                    prop_assert!(l1.contains(x) && l2.contains(x));
                }
            }
        }
    }

    #[test]
    fn polyline_simplify_preserves_endpoints_and_length(
        pts in proptest::collection::vec((0i64..50, 0i64..50), 2..12)
    ) {
        // Build an x-arch staircase from arbitrary points: walk L-shaped.
        let mut walk = vec![Point::new(pts[0].0, pts[0].1)];
        for &(x, y) in &pts[1..] {
            let last = *walk.last().unwrap();
            let corner = Point::new(x, last.y);
            if corner != last { walk.push(corner); }
            let dest = Point::new(x, y);
            if dest != *walk.last().unwrap() { walk.push(dest); }
        }
        let mut p = Polyline::new(walk.clone());
        let len_before = p.length();
        p.simplify();
        let len_after = p.length();
        prop_assert!((len_before - len_after).abs() < 1e-6);
        prop_assert_eq!(p.start(), Some(walk[0]));
        prop_assert_eq!(p.end(), Some(*walk.last().unwrap()));
    }

    #[test]
    fn dir8_of_vector_consistent(d in 0usize..8, k in 1i64..1000) {
        let dir = Dir8::from_index(d);
        prop_assert_eq!(Dir8::of_vector(dir.step() * k), Some(dir));
    }
}
