//! Differential property tests: every [`GridIndex`] query must return
//! exactly what the naive O(n²) scan over the same items returns, in the
//! same (insertion) order — on random soups of segment bboxes, via/pad
//! boxes, and degenerate rectangles, under interleaved insertions and
//! removals.

use info_geom::{GridIndex, Point, Rect, Segment};
use proptest::prelude::*;

const R: i64 = 500_000;

fn arb_point() -> impl Strategy<Value = Point> {
    (-R..R, -R..R).prop_map(|(x, y)| Point::new(x, y))
}

/// Mix of shapes that occur in real layouts: wire-segment bboxes (often
/// degenerate: zero height/width for axis-parallel wires), small squares
/// (vias, pads), and arbitrary boxes (obstacles).
fn arb_item_bbox() -> impl Strategy<Value = Rect> {
    prop_oneof![
        // Wire segment hull (possibly degenerate).
        (arb_point(), arb_point()).prop_map(|(a, b)| {
            let (lo, hi) = Segment::new(a, b).bbox();
            Rect::new(lo, hi)
        }),
        // Via / pad: small square around a center.
        (arb_point(), 1i64..30_000).prop_map(|(c, half)| Rect::centered_square(c, half)),
        // Obstacle: any box.
        (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b)),
    ]
}

fn arb_probe() -> impl Strategy<Value = Rect> {
    (arb_point(), 0i64..200_000, 0i64..200_000)
        .prop_map(|(p, w, h)| Rect::new(p, Point::new(p.x + w, p.y + h)))
}

fn naive_hits(items: &[(Rect, bool)], probe: Rect) -> Vec<usize> {
    items
        .iter()
        .enumerate()
        .filter(|(_, (b, alive))| *alive && b.intersects(probe))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_matches_naive_scan(
        items in proptest::collection::vec(arb_item_bbox(), 0..120),
        probes in proptest::collection::vec(arb_probe(), 1..12),
    ) {
        let bounds = Rect::new(Point::new(-R, -R), Point::new(R, R));
        let mut idx = GridIndex::with_grid(bounds, 16, 16);
        let ids: Vec<_> = items.iter().map(|&b| idx.insert(b, ())).collect();
        let tagged: Vec<(Rect, bool)> = items.iter().map(|&b| (b, true)).collect();
        for probe in probes {
            let got: Vec<usize> = idx.query(probe).iter().map(|id| id.index()).collect();
            let want = naive_hits(&tagged, probe);
            prop_assert_eq!(&got, &want, "probe {:?}", probe);
            // The immutable query path agrees with the stamped one.
            let got_ref: Vec<usize> = idx.query_ref(probe).iter().map(|id| id.index()).collect();
            prop_assert_eq!(&got_ref, &want);
        }
        prop_assert_eq!(ids.len(), idx.len());
    }

    #[test]
    fn removals_track_naive_scan(
        items in proptest::collection::vec(arb_item_bbox(), 1..80),
        kill_mask in proptest::collection::vec(any::<bool>(), 1..80),
        probe in arb_probe(),
    ) {
        let bounds = Rect::new(Point::new(-R, -R), Point::new(R, R));
        let mut idx = GridIndex::with_grid(bounds, 8, 8);
        let ids: Vec<_> = items.iter().map(|&b| idx.insert(b, ())).collect();
        let mut tagged: Vec<(Rect, bool)> = items.iter().map(|&b| (b, true)).collect();
        for (i, &kill) in kill_mask.iter().enumerate().take(items.len()) {
            if kill {
                idx.remove(ids[i]);
                tagged[i].1 = false;
            }
        }
        let got: Vec<usize> = idx.query(probe).iter().map(|id| id.index()).collect();
        prop_assert_eq!(got, naive_hits(&tagged, probe));
    }

    #[test]
    fn tiny_grid_equals_big_grid(
        items in proptest::collection::vec(arb_item_bbox(), 0..60),
        probe in arb_probe(),
    ) {
        // Bucket geometry must never change results, only speed.
        let bounds = Rect::new(Point::new(-R, -R), Point::new(R, R));
        let mut coarse = GridIndex::with_grid(bounds, 1, 1);
        let mut fine = GridIndex::with_grid(bounds, 96, 96);
        for &b in &items {
            coarse.insert(b, ());
            fine.insert(b, ());
        }
        prop_assert_eq!(coarse.query(probe), fine.query(probe));
    }
}
