//! Bounded-variable two-phase revised simplex.

use crate::basis::BasisEngine;
use crate::error::LpError;
use crate::sparse::{ColMatrix, SparseVec};

/// Solver status of a completed solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic solution was found.
    Optimal,
}

/// Tuning knobs for the simplex driver.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Hard iteration cap (`0` = automatic: `10_000 + 50·(rows + cols)`).
    pub max_iterations: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Dual (reduced-cost) tolerance.
    pub opt_tol: f64,
    /// Refactorize after this many eta updates.
    pub refactor_every: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 0,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            refactor_every: 64,
        }
    }
}

/// A linear program in computational form:
/// `min objᵀx  s.t.  cols·x = rhs,  lb ≤ x ≤ ub`
/// (bounds may be ±∞; equality rows are expected to have been given slack
/// columns by the modeling layer, though the solver survives without them
/// by introducing artificials).
#[derive(Debug, Clone)]
pub struct CoreLp {
    /// Constraint matrix, one [`SparseVec`] per column.
    pub cols: ColMatrix,
    /// Objective coefficients per column.
    pub obj: Vec<f64>,
    /// Lower bounds per column (`-inf` allowed).
    pub lb: Vec<f64>,
    /// Upper bounds per column (`+inf` allowed).
    pub ub: Vec<f64>,
    /// Right-hand side per row.
    pub rhs: Vec<f64>,
}

/// Optimal solution of a [`CoreLp`].
#[derive(Debug, Clone)]
pub struct CoreSolution {
    /// Value per column (same indexing as the input).
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Total simplex iterations across both phases.
    pub iterations: usize,
}

/// A reusable basis snapshot from a completed solve.
///
/// Produced by [`CoreLp::solve_warm_with`] and accepted back by it to
/// warm-start a later solve of a *same-shaped* problem (equal row and
/// column counts). Reuse is strictly an accelerator, never a correctness
/// dependency: the solver re-validates the snapshot against the new
/// problem — dimensions, duplicate columns, factorizability, and primal
/// feasibility of the implied basic values — and silently falls back to
/// the cold crash basis when any check fails. A snapshot whose final
/// basis still contained an artificial column is recorded as unusable
/// ([`WarmBasis::is_usable`] is `false`) and behaves like `None`.
#[derive(Debug, Clone, Default)]
pub struct WarmBasis {
    /// Structural column count of the producing problem.
    ncols: usize,
    /// Row count of the producing problem.
    nrows: usize,
    /// Basic column per basis position (all `< ncols`).
    basis: Vec<usize>,
    /// Per structural column: was it nonbasic at its *upper* bound?
    /// (Lower/free placement is re-derived from the new bounds.)
    at_upper: Vec<bool>,
}

impl WarmBasis {
    /// Whether the snapshot captured a reusable all-structural basis.
    pub fn is_usable(&self) -> bool {
        self.basis.len() == self.nrows && self.ncols > 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently nonbasic at value zero.
    FreeZero,
}

struct Solver<'a, E: BasisEngine> {
    nrows: usize,
    /// Extended columns: the problem's columns followed by artificials.
    cols: ColMatrix,
    lb: Vec<f64>,
    ub: Vec<f64>,
    rhs: &'a [f64],
    n_orig: usize,
    state: Vec<VarState>,
    /// Basis position -> column.
    basis: Vec<usize>,
    /// Basic values by position.
    xb: Vec<f64>,
    /// Current value of every column (authoritative for nonbasic columns;
    /// refreshed from `xb` for basic ones where needed).
    xval: Vec<f64>,
    engine: E,
    opts: SimplexOptions,
    iterations: usize,
    pivots_since_refactor: usize,
}

impl CoreLp {
    /// Number of structural columns.
    pub fn ncols(&self) -> usize {
        self.cols.ncols()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.cols.nrows()
    }

    /// Solves the program with the given basis engine.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`],
    /// [`LpError::IterationLimit`] or [`LpError::SingularBasis`].
    pub fn solve_with<E: BasisEngine>(
        &self,
        engine: E,
        opts: SimplexOptions,
    ) -> Result<CoreSolution, LpError> {
        self.solve_warm_with(engine, opts, None).map(|(sol, _)| sol)
    }

    /// Solves the program, optionally warm-starting from a [`WarmBasis`]
    /// captured on an earlier solve, and returns the solution together
    /// with a snapshot of the final basis for reuse.
    ///
    /// A warm basis that no longer fits (shape mismatch, singular after
    /// bound/rhs drift, or primal-infeasible basic values) is discarded
    /// and the solve proceeds from the cold crash basis, so passing a
    /// stale snapshot is always safe.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CoreLp::solve_with`].
    pub fn solve_warm_with<E: BasisEngine>(
        &self,
        engine: E,
        opts: SimplexOptions,
        warm: Option<&WarmBasis>,
    ) -> Result<(CoreSolution, WarmBasis), LpError> {
        self.validate()?;
        let mut solver = Solver::new(self, engine, opts);
        let warmed = warm.is_some_and(|w| solver.try_warm_basis(w));
        if !warmed {
            solver.crash_basis();
            solver.refactorize_and_recompute()?;
        }

        // Phase 1: minimize the sum of artificial variables, if any carry
        // a nonzero value. (A warm basis has no artificial columns and
        // arrives primal-feasible, so it skips straight to phase 2.)
        let needs_phase1 =
            solver.basis.iter().enumerate().any(|(p, &j)| j >= solver.n_orig && solver.xb[p] > opts.feas_tol);
        if needs_phase1 {
            let mut c1 = vec![0.0; solver.cols.ncols()];
            for c in c1.iter_mut().skip(solver.n_orig) {
                *c = 1.0;
            }
            solver.optimize(&c1)?;
            let infeas: f64 = solver
                .basis
                .iter()
                .enumerate()
                .filter(|&(_, &j)| j >= solver.n_orig)
                .map(|(p, _)| solver.xb[p].max(0.0))
                .sum();
            if infeas > opts.feas_tol * 10.0 {
                return Err(LpError::Infeasible);
            }
        }
        // Fix artificials at zero for phase 2.
        for j in solver.n_orig..solver.cols.ncols() {
            solver.ub[j] = 0.0;
            if !matches!(solver.state[j], VarState::Basic(_)) {
                solver.state[j] = VarState::AtLower;
                solver.xval[j] = 0.0;
            }
        }

        // Phase 2: the real objective (zero on artificials).
        let mut c2 = vec![0.0; solver.cols.ncols()];
        c2[..self.ncols()].copy_from_slice(&self.obj);
        solver.optimize(&c2)?;

        let mut x = solver.xval.clone();
        for (p, &j) in solver.basis.iter().enumerate() {
            x[j] = solver.xb[p];
        }
        x.truncate(self.ncols());
        let objective = x.iter().zip(self.obj.iter()).map(|(a, b)| a * b).sum();
        let warm_out = solver.capture_warm();
        Ok((CoreSolution { x, objective, iterations: solver.iterations }, warm_out))
    }

    fn validate(&self) -> Result<(), LpError> {
        let n = self.ncols();
        if self.obj.len() != n || self.lb.len() != n || self.ub.len() != n {
            return Err(LpError::InvalidModel("mismatched column array lengths".into()));
        }
        if self.rhs.len() != self.nrows() {
            return Err(LpError::InvalidModel("mismatched rhs length".into()));
        }
        for j in 0..n {
            if self.lb[j] > self.ub[j] {
                return Err(LpError::InvalidModel(format!(
                    "column {j} has lb {} > ub {}",
                    self.lb[j], self.ub[j]
                )));
            }
            if self.obj[j].is_nan() || self.lb[j].is_nan() || self.ub[j].is_nan() {
                return Err(LpError::InvalidModel(format!("column {j} has NaN data")));
            }
        }
        if self.rhs.iter().any(|v| !v.is_finite()) {
            return Err(LpError::InvalidModel("rhs must be finite".into()));
        }
        Ok(())
    }
}

impl<'a, E: BasisEngine> Solver<'a, E> {
    fn new(lp: &'a CoreLp, engine: E, opts: SimplexOptions) -> Self {
        Solver {
            nrows: lp.nrows(),
            cols: lp.cols.clone(),
            lb: lp.lb.clone(),
            ub: lp.ub.clone(),
            rhs: &lp.rhs,
            n_orig: lp.ncols(),
            state: Vec::new(),
            basis: Vec::new(),
            xb: Vec::new(),
            xval: Vec::new(),
            engine,
            opts,
            iterations: 0,
            pivots_since_refactor: 0,
        }
    }

    fn max_iterations(&self) -> usize {
        if self.opts.max_iterations > 0 {
            self.opts.max_iterations
        } else {
            10_000 + 50 * (self.nrows + self.n_orig)
        }
    }

    /// Builds the initial basis: default nonbasic values, then per row a
    /// singleton column whose implied value fits its bounds (a slack,
    /// typically), else an artificial column.
    fn crash_basis(&mut self) {
        let n = self.n_orig;
        self.state = Vec::with_capacity(n);
        self.xval = Vec::with_capacity(n);
        for j in 0..n {
            let (st, v) = if self.lb[j].is_finite() {
                (VarState::AtLower, self.lb[j])
            } else if self.ub[j].is_finite() {
                (VarState::AtUpper, self.ub[j])
            } else {
                (VarState::FreeZero, 0.0)
            };
            self.state.push(st);
            self.xval.push(v);
        }

        // Row activities with everything nonbasic.
        let mut acc = vec![0.0f64; self.nrows];
        for j in 0..n {
            if self.xval[j] != 0.0 {
                self.cols.axpy_col(j, self.xval[j], &mut acc);
            }
        }

        // Index singleton columns by row for the crash.
        let mut singleton: Vec<Vec<usize>> = vec![Vec::new(); self.nrows];
        for j in 0..n {
            let col = self.cols.col(j);
            if col.nnz() == 1 {
                let (i, _) = col.iter().next().expect("nnz == 1");
                singleton[i].push(j);
            }
        }

        self.basis = Vec::with_capacity(self.nrows);
        let mut used = vec![false; n];
        for i in 0..self.nrows {
            let resid = self.rhs[i] - acc[i];
            let mut chosen: Option<(usize, f64)> = None;
            for &j in &singleton[i] {
                if used[j] {
                    continue;
                }
                let a = self.cols.col(j).iter().next().expect("singleton").1;
                if a.abs() < 1e-12 {
                    continue;
                }
                let v = self.xval[j] + resid / a;
                if v >= self.lb[j] - self.opts.feas_tol && v <= self.ub[j] + self.opts.feas_tol {
                    chosen = Some((j, v));
                    break;
                }
            }
            match chosen {
                Some((j, v)) => {
                    used[j] = true;
                    // Remove the old nonbasic contribution; the column is
                    // now basic with value v satisfying the row exactly.
                    self.state[j] = VarState::Basic(self.basis.len());
                    self.basis.push(j);
                    self.xb.push(v);
                    let _ = v;
                }
                None => {
                    // Artificial with sign matching the residual.
                    let sign = if resid >= 0.0 { 1.0 } else { -1.0 };
                    let j = self.cols.push_col(SparseVec::from_entries([(i, sign)]));
                    self.lb.push(0.0);
                    self.ub.push(f64::INFINITY);
                    self.state.push(VarState::Basic(self.basis.len()));
                    self.xval.push(0.0);
                    self.basis.push(j);
                    self.xb.push(resid.abs());
                }
            }
        }
    }

    /// Attempts to install a previously captured basis. Returns `false`
    /// (leaving the solver ready for a cold [`Solver::crash_basis`]) when
    /// the snapshot does not fit the current problem: wrong shape, a
    /// repeated/out-of-range basic column, a singular factorization, or
    /// basic values pushed outside their bounds by rhs/bound drift — the
    /// primal method needs a feasible start, so those must cold-start.
    fn try_warm_basis(&mut self, warm: &WarmBasis) -> bool {
        if !warm.is_usable() || warm.ncols != self.n_orig || warm.nrows != self.nrows {
            return false;
        }
        let n = self.n_orig;
        self.state.clear();
        self.xval.clear();
        for j in 0..n {
            let (st, v) = if warm.at_upper[j] && self.ub[j].is_finite() {
                (VarState::AtUpper, self.ub[j])
            } else if self.lb[j].is_finite() {
                (VarState::AtLower, self.lb[j])
            } else if self.ub[j].is_finite() {
                (VarState::AtUpper, self.ub[j])
            } else {
                (VarState::FreeZero, 0.0)
            };
            self.state.push(st);
            self.xval.push(v);
        }
        self.basis.clear();
        self.basis.extend_from_slice(&warm.basis);
        self.xb.clear();
        self.xb.resize(self.nrows, 0.0);
        let mut seen = vec![false; n];
        for (p, &j) in warm.basis.iter().enumerate() {
            if j >= n || seen[j] {
                return self.warm_failed();
            }
            seen[j] = true;
            self.state[j] = VarState::Basic(p);
            self.xval[j] = 0.0;
        }
        if self.refactorize_and_recompute().is_err() {
            return self.warm_failed();
        }
        let tol = self.opts.feas_tol * 10.0;
        for (p, &j) in self.basis.iter().enumerate() {
            if self.xb[p] < self.lb[j] - tol || self.xb[p] > self.ub[j] + tol {
                return self.warm_failed();
            }
        }
        true
    }

    /// Resets the incremental state a failed warm attempt left behind so
    /// [`Solver::crash_basis`] starts from a clean slate.
    fn warm_failed(&mut self) -> bool {
        self.state.clear();
        self.xval.clear();
        self.basis.clear();
        self.xb.clear();
        false
    }

    /// Snapshots the final basis for reuse. A basis that still holds an
    /// artificial column (degenerate at zero after phase 1) is not
    /// representable structurally; the snapshot comes back unusable.
    fn capture_warm(&self) -> WarmBasis {
        if self.basis.iter().any(|&j| j >= self.n_orig) {
            return WarmBasis::default();
        }
        WarmBasis {
            ncols: self.n_orig,
            nrows: self.nrows,
            basis: self.basis.clone(),
            at_upper: (0..self.n_orig)
                .map(|j| matches!(self.state[j], VarState::AtUpper))
                .collect(),
        }
    }

    fn refactorize_and_recompute(&mut self) -> Result<(), LpError> {
        let cols: Vec<&SparseVec> = self.basis.iter().map(|&j| self.cols.col(j)).collect();
        self.engine.refactorize(self.nrows, &cols)?;
        self.pivots_since_refactor = 0;
        // xb = B⁻¹ (rhs − A_N x_N).
        let mut b: Vec<f64> = self.rhs.to_vec();
        for j in 0..self.cols.ncols() {
            if !matches!(self.state[j], VarState::Basic(_)) && self.xval[j] != 0.0 {
                self.cols.axpy_col(j, -self.xval[j], &mut b);
            }
        }
        self.engine.ftran(&mut b);
        self.xb.copy_from_slice(&b);
        Ok(())
    }

    /// Runs primal simplex iterations for the cost vector `costs` until
    /// optimality (no eligible entering column).
    fn optimize(&mut self, costs: &[f64]) -> Result<(), LpError> {
        let max_iters = self.max_iterations();
        let mut degenerate_streak = 0usize;
        loop {
            if self.iterations >= max_iters {
                return Err(LpError::IterationLimit { iterations: self.iterations });
            }
            if self.engine.wants_refactorize()
                || self.pivots_since_refactor >= self.opts.refactor_every
            {
                self.refactorize_and_recompute()?;
            }
            let bland = degenerate_streak > 200;

            // Duals y = Bᵀ⁻¹ c_B.
            let mut y = vec![0.0f64; self.nrows];
            for (p, &j) in self.basis.iter().enumerate() {
                y[p] = costs[j];
            }
            self.engine.btran(&mut y);

            // Pricing.
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |viol|, sigma)
            for (j, &cost) in costs.iter().enumerate().take(self.cols.ncols()) {
                match self.state[j] {
                    VarState::Basic(_) => continue,
                    _ if self.lb[j] == self.ub[j] => continue, // fixed
                    st => {
                        let d = cost - self.cols.col(j).dot_dense(&y);
                        let (viol, sigma) = match st {
                            VarState::AtLower => (-d, 1.0),
                            VarState::AtUpper => (d, -1.0),
                            VarState::FreeZero => (d.abs(), if d < 0.0 { 1.0 } else { -1.0 }),
                            VarState::Basic(_) => unreachable!(),
                        };
                        if viol > self.opts.opt_tol {
                            if bland {
                                entering = Some((j, viol, sigma));
                                break;
                            }
                            if entering.is_none_or(|(_, best, _)| viol > best) {
                                entering = Some((j, viol, sigma));
                            }
                        }
                    }
                }
            }
            let Some((q, _, sigma)) = entering else {
                return Ok(()); // optimal for this cost vector
            };

            // Direction w = B⁻¹ a_q.
            let mut w = vec![0.0f64; self.nrows];
            self.cols.col(q).scatter_into(&mut w);
            self.engine.ftran(&mut w);

            // Ratio test over the basic variables.
            let mut t = f64::INFINITY;
            let mut leaving: Option<(usize, bool)> = None; // (position, hits_upper)
            for (p, &wp) in w.iter().enumerate() {
                if wp.abs() < 1e-9 {
                    continue;
                }
                let jb = self.basis[p];
                let delta = sigma * wp;
                let (bound, hits_upper) = if delta > 0.0 {
                    (self.lb[jb], false)
                } else {
                    (self.ub[jb], true)
                };
                if !bound.is_finite() {
                    continue;
                }
                let tp = ((self.xb[p] - bound) / delta).max(0.0);
                let replace = match leaving {
                    None => tp < t,
                    Some((cur, _)) => {
                        let tie = (tp - t).abs() <= 1e-12;
                        if tie {
                            // Anti-cycling tie-break: Bland prefers the
                            // lowest column index; otherwise prefer the
                            // largest pivot magnitude for stability.
                            if bland {
                                jb < self.basis[cur]
                            } else {
                                wp.abs() > w[cur].abs()
                            }
                        } else {
                            tp < t
                        }
                    }
                };
                if replace {
                    t = tp;
                    leaving = Some((p, hits_upper));
                }
            }
            // The entering variable's own opposite bound may bind first,
            // in which case the step is a bound flip with no basis change.
            let flip_limit = if matches!(self.state[q], VarState::FreeZero) {
                f64::INFINITY
            } else {
                self.ub[q] - self.lb[q]
            };
            if flip_limit < t {
                leaving = None;
                t = flip_limit;
            }
            if !t.is_finite() {
                return Err(LpError::Unbounded);
            }

            // Apply the step.
            self.iterations += 1;
            degenerate_streak = if t <= 1e-10 { degenerate_streak + 1 } else { 0 };
            for (p, &wp) in w.iter().enumerate() {
                if wp != 0.0 {
                    self.xb[p] -= t * sigma * wp;
                }
            }
            match leaving {
                None => {
                    // Bound flip: q stays nonbasic at its other bound.
                    self.state[q] = match self.state[q] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        other => other,
                    };
                    self.xval[q] += sigma * t;
                }
                Some((r, hits_upper)) => {
                    let leaving_col = self.basis[r];
                    let leave_bound =
                        if hits_upper { self.ub[leaving_col] } else { self.lb[leaving_col] };
                    self.state[leaving_col] =
                        if hits_upper { VarState::AtUpper } else { VarState::AtLower };
                    self.xval[leaving_col] = leave_bound;

                    let new_val = self.xval[q] + sigma * t;
                    self.state[q] = VarState::Basic(r);
                    self.basis[r] = q;
                    self.xb[r] = new_val;
                    self.engine.update(r, &SparseVec::from_dense(&w));
                    self.pivots_since_refactor += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{DenseBasis, LuBasis};
    use crate::sparse::{ColMatrix, SparseVec};

    /// min cᵀx s.t. Ax = b (rows dense), bounds.
    #[allow(clippy::needless_range_loop)]
    fn lp(a_rows: &[&[f64]], rhs: &[f64], obj: &[f64], lb: &[f64], ub: &[f64]) -> CoreLp {
        let m = a_rows.len();
        let n = obj.len();
        let mut cols = ColMatrix::new(m);
        for j in 0..n {
            cols.push_col(SparseVec::from_entries((0..m).map(|i| (i, a_rows[i][j]))));
        }
        CoreLp {
            cols,
            obj: obj.to_vec(),
            lb: lb.to_vec(),
            ub: ub.to_vec(),
            rhs: rhs.to_vec(),
        }
    }

    fn solve(lp: &CoreLp) -> Result<CoreSolution, LpError> {
        let s1 = lp.solve_with(LuBasis::new(32), SimplexOptions::default())?;
        let s2 = lp.solve_with(DenseBasis::new(), SimplexOptions::default())?;
        assert!(
            (s1.objective - s2.objective).abs() < 1e-6 * (1.0 + s1.objective.abs()),
            "LU ({}) vs dense ({}) objective mismatch",
            s1.objective,
            s2.objective
        );
        Ok(s1)
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn trivial_box() {
        // min x + y over [1, 4] x [2, 5], no constraints beyond a vacuous row.
        let p = lp(&[&[1.0, 0.0]], &[4.0], &[1.0, 1.0], &[1.0, 2.0], &[4.0, 5.0]);
        // Row forces x = 4 exactly? No: row is x = 4 (equality form). So min = 4 + 2.
        let s = solve(&p).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-7);
        assert!((s.x[0] - 4.0).abs() < 1e-7);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_2d() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (Dantzig's example);
        // as min with slacks explicit.
        let p = lp(
            &[
                &[1.0, 0.0, 1.0, 0.0, 0.0],
                &[0.0, 2.0, 0.0, 1.0, 0.0],
                &[3.0, 2.0, 0.0, 0.0, 1.0],
            ],
            &[4.0, 12.0, 18.0],
            &[-3.0, -5.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0],
            &[INF, INF, INF, INF, INF],
        );
        let s = solve(&p).unwrap();
        assert!((s.objective + 36.0).abs() < 1e-7, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y s.t. x + y = 10, x − y = 2  → x = 6, y = 4.
        let p = lp(
            &[&[1.0, 1.0], &[1.0, -1.0]],
            &[10.0, 2.0],
            &[1.0, 1.0],
            &[0.0, 0.0],
            &[INF, INF],
        );
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 6.0).abs() < 1e-7);
        assert!((s.x[1] - 4.0).abs() < 1e-7);
        assert!((s.objective - 10.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x ≥ 0, x = -5.
        let p = lp(&[&[1.0]], &[-5.0], &[1.0], &[0.0], &[INF]);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_conflicting_rows() {
        // x + y = 1 and x + y = 3 with slacks absent.
        let p = lp(
            &[&[1.0, 1.0], &[1.0, 1.0]],
            &[1.0, 3.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[INF, INF],
        );
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x − y = 0, x, y ≥ 0 → x can grow forever.
        let p = lp(&[&[1.0, -1.0]], &[0.0], &[-1.0, 0.0], &[0.0, 0.0], &[INF, INF]);
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |style| objective via free vars: min x s.t. x − y = 3, y free in
        // [-10, 10], x free → x = y + 3, min at y = -10 → x = -7.
        let p = lp(&[&[1.0, -1.0]], &[3.0], &[1.0, 0.0], &[-INF, -10.0], &[INF, 10.0]);
        let s = solve(&p).unwrap();
        assert!((s.x[0] + 7.0).abs() < 1e-7, "x = {}", s.x[0]);
        assert!((s.objective + 7.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounded_variables_flip() {
        // max x + y s.t. x + y ≤ 1.5 with x, y ∈ [0, 1]: optimum on a
        // bound-flip-rich path.
        let p = lp(
            &[&[1.0, 1.0, 1.0]],
            &[1.5],
            &[-1.0, -1.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, INF],
        );
        let s = solve(&p).unwrap();
        assert!((s.objective + 1.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant rows through the same vertex.
        let p = lp(
            &[
                &[1.0, 0.0, 1.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0, 1.0, 0.0],
                &[1.0, 1.0, 0.0, 0.0, 1.0],
            ],
            &[1.0, 1.0, 2.0],
            &[-1.0, -1.0, 0.0, 0.0, 0.0],
            &[0.0; 5],
            &[INF; 5],
        );
        let s = solve(&p).unwrap();
        assert!((s.objective + 2.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x ≤ -3 (i.e. x ≥ 3) with slack.
        let p = lp(
            &[&[-1.0, 1.0]],
            &[-3.0],
            &[1.0, 0.0],
            &[0.0, 0.0],
            &[INF, INF],
        );
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn warm_restart_matches_cold_and_prices_out() {
        // Re-solving the same program from its own final basis must do no
        // simplex work (phase 2 finds no entering column) and reproduce
        // the solution exactly.
        let p = lp(
            &[
                &[1.0, 0.0, 1.0, 0.0, 0.0],
                &[0.0, 2.0, 0.0, 1.0, 0.0],
                &[3.0, 2.0, 0.0, 0.0, 1.0],
            ],
            &[4.0, 12.0, 18.0],
            &[-3.0, -5.0, 0.0, 0.0, 0.0],
            &[0.0; 5],
            &[INF; 5],
        );
        let opts = SimplexOptions::default();
        let (cold, basis) = p.solve_warm_with(LuBasis::new(32), opts, None).unwrap();
        assert!(basis.is_usable());
        let (warm, _) = p.solve_warm_with(LuBasis::new(32), opts, Some(&basis)).unwrap();
        assert_eq!(warm.iterations, 0, "optimal basis must price out immediately");
        for (a, b) in cold.x.iter().zip(warm.x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((cold.objective - warm.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_restart_after_rhs_drift() {
        // Perturb the rhs: the old basis stays primal feasible here, and
        // the warm solve must land on the same optimum a cold solve finds.
        let p = lp(
            &[&[1.0, 1.0, 1.0, 0.0], &[1.0, -1.0, 0.0, 1.0]],
            &[10.0, 2.0],
            &[-1.0, -2.0, 0.0, 0.0],
            &[0.0; 4],
            &[INF; 4],
        );
        let opts = SimplexOptions::default();
        let (_, basis) = p.solve_warm_with(LuBasis::new(32), opts, None).unwrap();
        let mut drifted = p.clone();
        drifted.rhs = vec![11.0, 3.0];
        let (warm, _) =
            drifted.solve_warm_with(LuBasis::new(32), opts, Some(&basis)).unwrap();
        let cold = drifted.solve_with(LuBasis::new(32), opts).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-7,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn warm_restart_shape_mismatch_falls_back() {
        // A snapshot from a different-shaped program is silently ignored.
        let small = lp(&[&[1.0, 1.0]], &[4.0], &[1.0, 1.0], &[0.0, 0.0], &[INF, INF]);
        let (_, basis) = small
            .solve_warm_with(LuBasis::new(32), SimplexOptions::default(), None)
            .unwrap();
        let big = lp(
            &[&[1.0, 1.0, 1.0], &[1.0, -1.0, 0.0]],
            &[6.0, 1.0],
            &[1.0, 1.0, 0.0],
            &[0.0; 3],
            &[INF; 3],
        );
        let (warm, _) = big
            .solve_warm_with(LuBasis::new(32), SimplexOptions::default(), Some(&basis))
            .unwrap();
        let cold = big.solve_with(LuBasis::new(32), SimplexOptions::default()).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-7);
    }

    #[test]
    fn warm_restart_infeasible_basis_falls_back() {
        // Drift the rhs far enough that the captured basis turns primal
        // infeasible; the solver must detect it and cold-start rather than
        // run phase 2 from an infeasible point.
        let p = lp(
            &[&[1.0, 1.0, 1.0]],
            &[1.5],
            &[-1.0, -1.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, INF],
        );
        let opts = SimplexOptions::default();
        let (_, basis) = p.solve_warm_with(LuBasis::new(32), opts, None).unwrap();
        let mut drifted = p.clone();
        drifted.rhs = vec![-0.5]; // slack would need to go negative
        let warm = drifted.solve_warm_with(LuBasis::new(32), opts, Some(&basis));
        let cold = drifted.solve_with(LuBasis::new(32), opts);
        match (warm, cold) {
            (Ok((w, _)), Ok(c)) => assert!((w.objective - c.objective).abs() < 1e-7),
            (Err(we), Err(ce)) => assert_eq!(we, ce),
            (w, c) => panic!("warm/cold outcome mismatch: {w:?} vs {c:?}"),
        }
    }

    #[test]
    fn fixed_variables_respected() {
        // y fixed at 2: min x s.t. x + y = 5 → x = 3.
        let p = lp(&[&[1.0, 1.0]], &[5.0], &[1.0, 0.0], &[0.0, 2.0], &[INF, 2.0]);
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 3.0).abs() < 1e-7);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }
}
