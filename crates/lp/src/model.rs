//! User-facing LP model builder.

use crate::basis::LuBasis;
use crate::error::LpError;
use crate::simplex::{CoreLp, SimplexOptions, SolveStatus, WarmBasis};
use crate::sparse::{ColMatrix, SparseVec};
use std::ops::Index;

/// Handle to a variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

/// Handle to a constraint row in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

/// Comparison operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

#[derive(Debug, Clone)]
struct RowData {
    entries: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// An LP model under construction: variables with bounds and objective
/// coefficients, plus `≤ / ≥ / =` constraint rows. Minimization only (negate
/// the objective to maximize).
///
/// # Example
///
/// ```
/// use info_lp::{Model, Cmp};
/// # fn main() -> Result<(), info_lp::LpError> {
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 10.0, -1.0); // maximize x
/// m.add_row([(x, 2.0)], Cmp::Le, 8.0);
/// let sol = m.solve()?;
/// assert!((sol[x] - 4.0).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    lb: Vec<f64>,
    ub: Vec<f64>,
    obj: Vec<f64>,
    rows: Vec<RowData>,
    options: SimplexOptions,
}

/// Optimal solution of a [`Model`]. Index it by [`VarId`] for values.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Always [`SolveStatus::Optimal`]; non-optimal outcomes are reported
    /// as [`LpError`]s instead.
    pub status: SolveStatus,
    /// Optimal objective value.
    pub objective: f64,
    /// Variable values, indexed by [`VarId`] position.
    pub values: Vec<f64>,
    /// Simplex iterations used.
    pub iterations: usize,
}

impl Index<VarId> for Solution {
    type Output = f64;
    fn index(&self, v: VarId) -> &f64 {
        &self.values[v.0]
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Overrides the default simplex options.
    pub fn set_options(&mut self, options: SimplexOptions) {
        self.options = options;
    }

    /// Adds a variable with bounds `[lb, ub]` (either may be infinite) and
    /// objective coefficient `obj`.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.lb.push(lb);
        self.ub.push(ub);
        self.obj.push(obj);
        VarId(self.lb.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.lb.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `Σ coefᵢ·varᵢ  cmp  rhs`.
    pub fn add_row<I>(&mut self, terms: I, cmp: Cmp, rhs: f64) -> RowId
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let entries = terms.into_iter().map(|(v, c)| (v.0, c)).collect();
        self.rows.push(RowData { entries, cmp, rhs });
        RowId(self.rows.len() - 1)
    }

    /// Changes a variable's objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        self.obj[v.0] = obj;
    }

    /// Changes a variable's bounds.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        self.lb[v.0] = lb;
        self.ub[v.0] = ub;
    }

    /// Lowers the model into computational form: every row gets a slack
    /// column (`≤` → slack in `[0, ∞)`, `≥` → `(-∞, 0]`, `=` → fixed 0),
    /// turning all rows into equalities.
    pub fn to_core(&self) -> CoreLp {
        let n = self.num_vars();
        let m = self.rows.len();
        let mut cols = ColMatrix::new(m);
        // Structural columns: gather entries row-by-row into columns.
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, c) in &row.entries {
                per_col[j].push((i, c));
            }
        }
        for entries in per_col {
            cols.push_col(SparseVec::from_entries(entries));
        }
        let mut lb = self.lb.clone();
        let mut ub = self.ub.clone();
        let mut obj = self.obj.clone();
        let mut rhs = Vec::with_capacity(m);
        for (i, row) in self.rows.iter().enumerate() {
            cols.push_col(SparseVec::from_entries([(i, 1.0)]));
            let (slb, sub) = match row.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(slb);
            ub.push(sub);
            obj.push(0.0);
            rhs.push(row.rhs);
        }
        CoreLp { cols, obj, lb, ub, rhs }
    }

    /// Solves the model to optimality with the sparse LU engine.
    ///
    /// A light presolve runs first: variables fixed by their bounds
    /// (`lb == ub`) are substituted into the rows, and rows left without
    /// variables are checked for consistency (inconsistent constants make
    /// the model [`LpError::Infeasible`] without a simplex run).
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or a numerical
    /// failure ([`LpError::SingularBasis`], [`LpError::IterationLimit`]).
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_warm(&mut None)
    }

    /// Solves the model like [`Model::solve`], additionally reading a
    /// warm-start basis hint from `warm` and writing the final basis back
    /// into it for the next call.
    ///
    /// The snapshot corresponds to the *presolved* core problem, so it
    /// transfers between calls only when the model keeps its shape
    /// (same variables, same fixed-variable pattern, same rows) — exactly
    /// the repeated re-solve pattern of the layout optimizer's sweeps.
    /// A hint that does not fit is ignored (cold start), never an error,
    /// so callers may cache snapshots without tracking shape themselves.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::solve`].
    pub fn solve_warm(&self, warm: &mut Option<WarmBasis>) -> Result<Solution, LpError> {
        for (j, (&l, &u)) in self.lb.iter().zip(self.ub.iter()).enumerate() {
            if l > u {
                return Err(LpError::InvalidModel(format!("variable {j}: lb {l} > ub {u}")));
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            if !row.rhs.is_finite() {
                return Err(LpError::InvalidModel(format!("row {i}: non-finite rhs")));
            }
            for &(j, c) in &row.entries {
                if j >= self.num_vars() {
                    return Err(LpError::InvalidModel(format!("row {i}: unknown variable {j}")));
                }
                if !c.is_finite() {
                    return Err(LpError::InvalidModel(format!("row {i}: non-finite coefficient")));
                }
            }
        }

        // --- Presolve: substitute fixed variables, drop empty rows.
        let n = self.num_vars();
        let fixed: Vec<bool> = (0..n).map(|j| self.lb[j] == self.ub[j]).collect();
        let n_free = fixed.iter().filter(|f| !*f).count();
        if n_free == n {
            // Nothing to presolve: solve directly.
            let core = self.to_core();
            let (sol, next) = core.solve_warm_with(
                LuBasis::new(self.options.refactor_every),
                self.options,
                warm.as_ref(),
            )?;
            *warm = Some(next);
            let mut values = sol.x;
            values.truncate(n);
            return Ok(Solution {
                status: SolveStatus::Optimal,
                objective: sol.objective,
                values,
                iterations: sol.iterations,
            });
        }
        // Map old variable index → reduced index.
        let mut reduced = Model::new();
        reduced.set_options(self.options);
        let mut map = vec![usize::MAX; n];
        let mut fixed_obj = 0.0;
        for j in 0..n {
            if fixed[j] {
                fixed_obj += self.obj[j] * self.lb[j];
            } else {
                map[j] = reduced.add_var(self.lb[j], self.ub[j], self.obj[j]).0;
            }
        }
        const FEAS_EPS: f64 = 1e-7;
        for (i, row) in self.rows.iter().enumerate() {
            let mut rhs = row.rhs;
            let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(row.entries.len());
            for &(j, c) in &row.entries {
                if fixed[j] {
                    rhs -= c * self.lb[j];
                } else {
                    terms.push((VarId(map[j]), c));
                }
            }
            if terms.is_empty() {
                // Constant row: verify it holds.
                let ok = match row.cmp {
                    Cmp::Le => 0.0 <= rhs + FEAS_EPS,
                    Cmp::Ge => 0.0 >= rhs - FEAS_EPS,
                    Cmp::Eq => rhs.abs() <= FEAS_EPS,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                let _ = i;
                continue;
            }
            reduced.add_row(terms, row.cmp, rhs);
        }
        let core = reduced.to_core();
        let (sol, next) = core.solve_warm_with(
            LuBasis::new(self.options.refactor_every),
            self.options,
            warm.as_ref(),
        )?;
        *warm = Some(next);
        // Scatter back to the full variable space.
        let mut values = vec![0.0; n];
        for j in 0..n {
            values[j] = if fixed[j] { self.lb[j] } else { sol.x[map[j]] };
        }
        let objective: f64 = sol
            .x
            .iter()
            .take(reduced.num_vars())
            .zip(reduced.obj.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + fixed_obj;
        Ok(Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
            iterations: sol.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_ge_eq_rows() {
        // min 2x + 3y  s.t. x + y ≥ 4, x − y ≤ 2, x + 2y = 6, x, y ≥ 0.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 2.0);
        let y = m.add_var(0.0, f64::INFINITY, 3.0);
        m.add_row([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_row([(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
        m.add_row([(x, 1.0), (y, 2.0)], Cmp::Eq, 6.0);
        let s = m.solve().unwrap();
        // Feasible points satisfy x + 2y = 6; objective 2x + 3y.
        // From x = 6 − 2y: obj = 12 − y, so maximize y subject to
        // x + y ≥ 4 → 6 − y ≥ 4 → y ≤ 2, and x − y ≤ 2 → 6 − 3y ≤ 2 → y ≥ 4/3.
        // Optimum at y = 2, x = 2, obj = 10.
        assert!((s.objective - 10.0).abs() < 1e-6, "objective {}", s.objective);
        assert!((s[x] - 2.0).abs() < 1e-6);
        assert!((s[y] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut m = Model::new();
        m.add_var(2.0, 1.0, 0.0);
        assert!(matches!(m.solve(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn empty_model_solves() {
        let m = Model::new();
        let s = m.solve().unwrap();
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn wirelength_style_lp() {
        // A miniature of the layout LP: points p1, p2 on a horizontal wire
        // y = c, length = x2 − x1 (x2 ≥ x1 frozen by the initial layout);
        // spacing: c ≤ 10 − 2; endpoints pinned at x1 = 0, x2 ≥ 5.
        let mut m = Model::new();
        let x1 = m.add_var(0.0, 0.0, 0.0); // fixed pin
        let x2 = m.add_var(5.0, f64::INFINITY, 1.0); // minimize x2 (length)
        let c = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        m.add_row([(c, 1.0)], Cmp::Le, 8.0);
        m.add_row([(c, 1.0)], Cmp::Ge, 1.0);
        m.add_row([(x2, 1.0), (x1, -1.0)], Cmp::Ge, 5.0);
        let s = m.solve().unwrap();
        assert!((s[x2] - 5.0).abs() < 1e-7);
        assert!(s[c] >= 1.0 - 1e-7 && s[c] <= 8.0 + 1e-7);
    }

    #[test]
    fn presolve_substitutes_fixed_variables() {
        // y fixed at 4; row x + y ≤ 10 becomes x ≤ 6.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, -1.0); // maximize x
        let y = m.add_var(4.0, 4.0, 3.0);
        m.add_row([(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let s = m.solve().unwrap();
        assert!((s[x] - 6.0).abs() < 1e-7);
        assert_eq!(s[y], 4.0);
        // Objective includes the fixed contribution 3·4.
        assert!((s.objective - (-6.0 + 12.0)).abs() < 1e-7);
    }

    #[test]
    fn presolve_detects_constant_row_infeasibility() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 2.0, 1.0);
        let y = m.add_var(3.0, 3.0, 1.0);
        m.add_row([(x, 1.0), (y, 1.0)], Cmp::Eq, 6.0); // 5 ≠ 6
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
        // And a consistent constant row is fine.
        let mut m2 = Model::new();
        let x2 = m2.add_var(2.0, 2.0, 1.0);
        m2.add_row([(x2, 1.0)], Cmp::Le, 2.0);
        assert!(m2.solve().is_ok());
    }

    #[test]
    fn presolve_all_fixed_model() {
        let mut m = Model::new();
        let x = m.add_var(1.5, 1.5, 2.0);
        let y = m.add_var(-0.5, -0.5, 4.0);
        m.add_row([(x, 1.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s[x], 1.5);
        assert_eq!(s[y], -0.5);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_warm_round_trips_through_presolve() {
        // The lpopt sweep pattern: rebuild an identically-shaped model
        // (with a fixed variable, so presolve runs) whose rhs drifted,
        // reusing the snapshot from the previous solve. Results must match
        // a cold solve exactly in objective.
        let build = |rhs: f64| {
            let mut m = Model::new();
            let pin = m.add_var(1.0, 1.0, 0.0); // fixed: exercises presolve
            let x = m.add_var(0.0, f64::INFINITY, 1.0);
            let y = m.add_var(0.0, f64::INFINITY, 3.0);
            m.add_row([(pin, 1.0), (x, 1.0), (y, 1.0)], Cmp::Ge, rhs);
            m.add_row([(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
            (m, x, y)
        };
        let mut warm = None;
        let (m1, _, _) = build(6.0);
        let cold1 = m1.solve().unwrap();
        let warm1 = m1.solve_warm(&mut warm).unwrap();
        assert!((cold1.objective - warm1.objective).abs() < 1e-9);
        assert!(warm.is_some(), "snapshot must be captured");
        // Second solve, same shape, drifted rhs: warm hint applies.
        let (m2, x, y) = build(8.0);
        let warm2 = m2.solve_warm(&mut warm).unwrap();
        let cold2 = m2.solve().unwrap();
        assert!(
            (warm2.objective - cold2.objective).abs() < 1e-7,
            "warm {} vs cold {}",
            warm2.objective,
            cold2.objective
        );
        assert!((warm2[x] - cold2[x]).abs() < 1e-7);
        assert!((warm2[y] - cold2[y]).abs() < 1e-7);
        assert!(
            warm2.iterations <= cold2.iterations,
            "warm start must not do more work ({} > {})",
            warm2.iterations,
            cold2.iterations
        );
    }

    #[test]
    fn maximize_by_negation() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 3.0, -1.0);
        let y = m.add_var(0.0, 3.0, -2.0);
        m.add_row([(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = m.solve().unwrap();
        // max x + 2y: y = 3, x = 1 → value 7, objective −7.
        assert!((s.objective + 7.0).abs() < 1e-7);
        assert!((s[y] - 3.0).abs() < 1e-7);
        assert!((s[x] - 1.0).abs() < 1e-7);
    }
}
