//! Basis factorization engines for the revised simplex method.
//!
//! The simplex driver is generic over a [`BasisEngine`]: the production
//! engine is [`LuBasis`] (sparse LU plus product-form eta updates); the
//! [`DenseBasis`] engine maintains an explicit inverse and exists to
//! cross-check the sparse machinery in tests and to solve tiny problems.

use crate::lu::{LuFactors, SingularMatrix};
use crate::sparse::SparseVec;

/// Abstraction over "solve with the current basis matrix".
///
/// Row/column conventions match [`LuFactors::ftran`]/[`LuFactors::btran`]:
/// `ftran` maps a right-hand side in row space to a solution indexed by
/// basis position; `btran` maps a cost vector indexed by basis position to
/// duals in row space.
pub trait BasisEngine {
    /// Replaces the factorization with one of the given basis columns.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] when the columns do not form a basis.
    fn refactorize(&mut self, m: usize, cols: &[&SparseVec]) -> Result<(), SingularMatrix>;

    /// Solves `B·x = b` in place (`b` row-indexed in, basis-position-indexed out).
    fn ftran(&self, b: &mut [f64]);

    /// Solves `Bᵀ·x = c` in place (`c` basis-position-indexed in, row-indexed out).
    fn btran(&self, c: &mut [f64]);

    /// Records the pivot that replaces the basic variable at position `r`,
    /// where `w = B⁻¹·a_q` is the FTRAN'd entering column.
    fn update(&mut self, r: usize, w: &SparseVec);

    /// Whether enough updates have accumulated that the caller should
    /// refactorize for speed/stability.
    fn wants_refactorize(&self) -> bool;
}

/// Production engine: sparse LU with product-form (eta) updates.
#[derive(Debug, Default)]
pub struct LuBasis {
    lu: Option<LuFactors>,
    /// Eta file: each entry `(r, w)` records a pivot at basis position `r`
    /// with FTRAN'd entering column `w` (which includes the pivot element
    /// at index `r`).
    etas: Vec<(usize, SparseVec)>,
    max_etas: usize,
}

impl LuBasis {
    /// Creates an engine that asks for refactorization after `max_etas`
    /// accumulated pivots.
    pub fn new(max_etas: usize) -> Self {
        LuBasis { lu: None, etas: Vec::new(), max_etas }
    }
}

impl BasisEngine for LuBasis {
    fn refactorize(&mut self, m: usize, cols: &[&SparseVec]) -> Result<(), SingularMatrix> {
        self.lu = Some(LuFactors::factorize(m, cols)?);
        self.etas.clear();
        Ok(())
    }

    fn ftran(&self, b: &mut [f64]) {
        self.lu.as_ref().expect("refactorize before ftran").ftran(b);
        for (r, w) in &self.etas {
            let pivot = w.get(*r);
            debug_assert!(pivot.abs() > 0.0);
            let vr = b[*r] / pivot;
            for (i, wi) in w.iter() {
                if i != *r {
                    b[i] -= wi * vr;
                }
            }
            b[*r] = vr;
        }
    }

    fn btran(&self, c: &mut [f64]) {
        for (r, w) in self.etas.iter().rev() {
            let pivot = w.get(*r);
            let mut acc = c[*r];
            for (i, wi) in w.iter() {
                if i != *r {
                    acc -= wi * c[i];
                }
            }
            c[*r] = acc / pivot;
        }
        self.lu.as_ref().expect("refactorize before btran").btran(c);
    }

    fn update(&mut self, r: usize, w: &SparseVec) {
        self.etas.push((r, w.clone()));
    }

    fn wants_refactorize(&self) -> bool {
        self.etas.len() >= self.max_etas
    }
}

/// Test/oracle engine: explicit dense inverse updated by elementary row
/// operations. Quadratic memory — use only for small problems.
#[derive(Debug, Default)]
pub struct DenseBasis {
    m: usize,
    /// Row-major `B⁻¹`.
    inv: Vec<Vec<f64>>,
}

impl DenseBasis {
    /// Creates an empty dense engine.
    pub fn new() -> Self {
        DenseBasis::default()
    }
}

impl BasisEngine for DenseBasis {
    fn refactorize(&mut self, m: usize, cols: &[&SparseVec]) -> Result<(), SingularMatrix> {
        // Gauss–Jordan inversion with partial pivoting on [B | I].
        let mut a: Vec<Vec<f64>> = vec![vec![0.0; m]; m];
        for (j, col) in cols.iter().enumerate() {
            for (i, v) in col.iter() {
                a[i][j] = v;
            }
        }
        let mut inv: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..m).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        for k in 0..m {
            let (piv_row, piv_val) = (k..m)
                .map(|i| (i, a[i][k]))
                .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
                .expect("nonempty");
            if piv_val.abs() < 1e-10 {
                return Err(SingularMatrix { step: k });
            }
            a.swap(k, piv_row);
            inv.swap(k, piv_row);
            let scale = 1.0 / a[k][k];
            for j in 0..m {
                a[k][j] *= scale;
                inv[k][j] *= scale;
            }
            for i in 0..m {
                if i != k && a[i][k] != 0.0 {
                    let f = a[i][k];
                    for j in 0..m {
                        a[i][j] -= f * a[k][j];
                        inv[i][j] -= f * inv[k][j];
                    }
                }
            }
        }
        self.m = m;
        self.inv = inv;
        Ok(())
    }

    fn ftran(&self, b: &mut [f64]) {
        let mut out = vec![0.0; self.m];
        for (i, row) in self.inv.iter().enumerate() {
            out[i] = row.iter().zip(b.iter()).map(|(a, x)| a * x).sum();
        }
        b.copy_from_slice(&out);
    }

    fn btran(&self, c: &mut [f64]) {
        let mut out = vec![0.0; self.m];
        for (i, row) in self.inv.iter().enumerate() {
            let ci = c[i];
            if ci != 0.0 {
                for (j, a) in row.iter().enumerate() {
                    out[j] += a * ci;
                }
            }
        }
        c.copy_from_slice(&out);
    }

    fn update(&mut self, r: usize, w: &SparseVec) {
        // B_new = B·E with E's column r equal to w, so
        // B_new⁻¹ = E⁻¹·B⁻¹: scale row r by 1/w_r, then subtract w_i times
        // the new row r from every other row i with w_i ≠ 0.
        let pivot = w.get(r);
        debug_assert!(pivot.abs() > 0.0);
        let scale = 1.0 / pivot;
        for j in 0..self.m {
            self.inv[r][j] *= scale;
        }
        let row_r = self.inv[r].clone();
        for (i, wi) in w.iter() {
            if i != r {
                for (cell, rj) in self.inv[i].iter_mut().zip(&row_r) {
                    *cell -= wi * rj;
                }
            }
        }
    }

    fn wants_refactorize(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols_3() -> Vec<SparseVec> {
        vec![
            SparseVec::from_entries([(0, 2.0), (1, 1.0)]),
            SparseVec::from_entries([(1, 3.0), (2, -1.0)]),
            SparseVec::from_entries([(0, 1.0), (2, 4.0)]),
        ]
    }

    fn engines_agree(engine_a: &dyn BasisEngine, engine_b: &dyn BasisEngine, m: usize) {
        let b: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
        let mut fa = b.clone();
        let mut fb = b.clone();
        engine_a.ftran(&mut fa);
        engine_b.ftran(&mut fb);
        for i in 0..m {
            assert!((fa[i] - fb[i]).abs() < 1e-8, "ftran mismatch at {i}: {} vs {}", fa[i], fb[i]);
        }
        let mut ba = b.clone();
        let mut bb = b;
        engine_a.btran(&mut ba);
        engine_b.btran(&mut bb);
        for i in 0..m {
            assert!((ba[i] - bb[i]).abs() < 1e-8, "btran mismatch at {i}: {} vs {}", ba[i], bb[i]);
        }
    }

    #[test]
    fn lu_and_dense_agree_after_refactorize() {
        let cols = cols_3();
        let refs: Vec<&SparseVec> = cols.iter().collect();
        let mut lu = LuBasis::new(8);
        let mut de = DenseBasis::new();
        lu.refactorize(3, &refs).unwrap();
        de.refactorize(3, &refs).unwrap();
        engines_agree(&lu, &de, 3);
    }

    #[test]
    fn lu_and_dense_agree_after_updates() {
        let cols = cols_3();
        let refs: Vec<&SparseVec> = cols.iter().collect();
        let mut lu = LuBasis::new(8);
        let mut de = DenseBasis::new();
        lu.refactorize(3, &refs).unwrap();
        de.refactorize(3, &refs).unwrap();

        // Replace basis position 1 with a new column a = (1, 1, 1).
        let a = SparseVec::from_entries([(0, 1.0), (1, 1.0), (2, 1.0)]);
        let mut w_lu: Vec<f64> = vec![0.0; 3];
        a.scatter_into(&mut w_lu);
        lu.ftran(&mut w_lu);
        let w = SparseVec::from_dense(&w_lu);
        lu.update(1, &w);
        de.update(1, &w);
        engines_agree(&lu, &de, 3);

        // And a second pivot at position 0 with column (0, 2, 0).
        let a2 = SparseVec::from_entries([(1, 2.0)]);
        let mut w2: Vec<f64> = vec![0.0; 3];
        a2.scatter_into(&mut w2);
        lu.ftran(&mut w2);
        let w2 = SparseVec::from_dense(&w2);
        lu.update(0, &w2);
        de.update(0, &w2);
        engines_agree(&lu, &de, 3);
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // After replacing a column, the eta-updated engine must solve the
        // *new* basis exactly like a fresh factorization of it.
        let cols = cols_3();
        let refs: Vec<&SparseVec> = cols.iter().collect();
        let mut lu = LuBasis::new(8);
        lu.refactorize(3, &refs).unwrap();

        let a = SparseVec::from_entries([(0, 1.0), (2, 2.0)]);
        let mut w: Vec<f64> = vec![0.0; 3];
        a.scatter_into(&mut w);
        lu.ftran(&mut w);
        lu.update(2, &SparseVec::from_dense(&w));

        let new_cols = [cols[0].clone(), cols[1].clone(), a];
        let new_refs: Vec<&SparseVec> = new_cols.iter().collect();
        let mut fresh = LuBasis::new(8);
        fresh.refactorize(3, &new_refs).unwrap();
        engines_agree(&lu, &fresh, 3);
    }

    #[test]
    fn wants_refactorize_after_max_etas() {
        let cols = cols_3();
        let refs: Vec<&SparseVec> = cols.iter().collect();
        let mut lu = LuBasis::new(2);
        lu.refactorize(3, &refs).unwrap();
        assert!(!lu.wants_refactorize());
        let w = SparseVec::from_entries([(0, 1.0)]);
        lu.update(0, &w);
        lu.update(0, &w);
        assert!(lu.wants_refactorize());
    }

    #[test]
    fn dense_detects_singular() {
        let cols = [
            SparseVec::from_entries([(0, 1.0), (1, 2.0)]),
            SparseVec::from_entries([(0, 2.0), (1, 4.0)]),
        ];
        let refs: Vec<&SparseVec> = cols.iter().collect();
        assert!(DenseBasis::new().refactorize(2, &refs).is_err());
    }
}
