//! Left-looking sparse LU factorization (Gilbert–Peierls) with partial
//! pivoting and sparsity-ordered columns.
//!
//! The simplex basis matrix `B` (square, one column per basic variable) is
//! factorized as `P·B·Q = L·U` where `P` permutes rows (chosen greedily by
//! partial pivoting) and `Q` orders columns by ascending nonzero count — a
//! light-weight stand-in for full Markowitz ordering that works well on the
//! extremely sparse (≤3 nonzeros/column) geometric LPs this workspace
//! produces.

use crate::sparse::SparseVec;
use std::fmt;

/// Error returned when the matrix is numerically singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Elimination step at which no acceptable pivot remained.
    pub step: usize,
}

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at elimination step {}", self.step)
    }
}

impl std::error::Error for SingularMatrix {}

/// An LU factorization of a square sparse matrix given by columns.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// `lcols[k]`: the sub-diagonal entries of L's k-th column, stored with
    /// *original* row indices, already divided by the pivot. The unit
    /// diagonal is implicit.
    lcols: Vec<SparseVec>,
    /// `ucols[k]`: the k-th column of U in *pivot-position* row space,
    /// entries at positions `< k`; the diagonal is stored separately.
    ucols: Vec<SparseVec>,
    /// `udiag[k]`: pivot value of elimination step k.
    udiag: Vec<f64>,
    /// `rowof[k]`: original row chosen as pivot at step k.
    rowof: Vec<usize>,
    /// `pinv[i]`: elimination step at which original row `i` became pivotal.
    pinv: Vec<usize>,
    /// `colorder[k]`: index (into the caller's column list) eliminated at
    /// step k.
    colorder: Vec<usize>,
}

/// Pivot magnitude below which a column is considered to have no usable
/// pivot.
const PIVOT_TOL: f64 = 1e-10;

impl LuFactors {
    /// Factorizes the square matrix whose columns are `cols` (all of
    /// dimension `m`).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] if no pivot of magnitude above `1e-10`
    /// can be found at some elimination step.
    pub fn factorize(m: usize, cols: &[&SparseVec]) -> Result<LuFactors, SingularMatrix> {
        assert_eq!(cols.len(), m, "basis must be square");
        // Column order: ascending nonzero count (stable for determinism).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&j| (cols[j].nnz(), j));

        let unpivoted = usize::MAX;
        let mut lu = LuFactors {
            m,
            lcols: Vec::with_capacity(m),
            ucols: Vec::with_capacity(m),
            udiag: Vec::with_capacity(m),
            rowof: Vec::with_capacity(m),
            pinv: vec![unpivoted; m],
            colorder: Vec::with_capacity(m),
        };

        // Dense work vector + stamp array for sparse accumulation.
        let mut work = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::new();
        // Reach set for the symbolic phase. In Gilbert–Peierls every
        // dependency of L column k points to a *later* pivot step (entries
        // of column k sit in rows that were still unpivoted at step k), so
        // ascending pivot order is a valid topological order and a plain
        // DFS reach set suffices.
        let mut stack: Vec<usize> = Vec::new();
        let mut topo: Vec<usize> = Vec::new();
        let mut visited = vec![false; m];
        let mut deferred: Vec<usize> = Vec::new();

        let mut queue: std::collections::VecDeque<usize> = order.into();
        let mut step = 0usize;
        while let Some(j) = queue.pop_front() {
            let col = cols[j];
            // --- Symbolic phase: reach of col's pivotal rows through L.
            topo.clear();
            for (i, _) in col.iter() {
                let k0 = lu.pinv[i];
                if k0 != unpivoted && !visited[k0] {
                    visited[k0] = true;
                    stack.push(k0);
                    while let Some(k) = stack.pop() {
                        topo.push(k);
                        for (row, _) in lu.lcols[k].iter() {
                            let knext = lu.pinv[row];
                            if knext != unpivoted && !visited[knext] {
                                visited[knext] = true;
                                stack.push(knext);
                            }
                        }
                    }
                }
            }
            topo.sort_unstable();

            // --- Numeric phase: x = L^{-1} (scattered column).
            for (i, v) in col.iter() {
                if work[i] == 0.0 {
                    touched.push(i);
                }
                work[i] += v;
            }
            for &k in &topo {
                let xk = work[lu.rowof[k]];
                visited[k] = false; // reset stamp for next column
                if xk == 0.0 {
                    continue;
                }
                for (i, l) in lu.lcols[k].iter() {
                    if work[i] == 0.0 {
                        touched.push(i);
                    }
                    work[i] -= l * xk;
                }
            }

            // --- Pivot selection among unpivoted rows.
            let mut piv_row = usize::MAX;
            let mut piv_val = 0.0f64;
            for &i in &touched {
                if lu.pinv[i] == unpivoted && work[i].abs() > piv_val.abs() {
                    piv_val = work[i];
                    piv_row = i;
                }
            }
            if piv_row == usize::MAX || piv_val.abs() < PIVOT_TOL {
                // No usable pivot now. If other columns remain, retrying this
                // column later cannot help (L only grows), so report singular.
                for &i in &touched {
                    work[i] = 0.0;
                }
                touched.clear();
                deferred.push(j);
                if queue.is_empty() {
                    return Err(SingularMatrix { step });
                }
                continue;
            }

            // --- Emit U column (pivotal rows) and L column (the rest).
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &i in &touched {
                let x = work[i];
                work[i] = 0.0;
                if x.abs() <= SparseVec::DROP_TOL {
                    continue;
                }
                let k0 = lu.pinv[i];
                if k0 != unpivoted {
                    ucol.push((k0, x));
                } else if i != piv_row {
                    lcol.push((i, x / piv_val));
                }
            }
            touched.clear();
            lu.ucols.push(SparseVec::from_entries(ucol));
            lu.udiag.push(piv_val);
            lu.lcols.push(SparseVec::from_entries(lcol));
            lu.rowof.push(piv_row);
            lu.pinv[piv_row] = step;
            lu.colorder.push(j);
            step += 1;

            // Deferred columns may become factorable once L has grown.
            if !deferred.is_empty() {
                for d in deferred.drain(..) {
                    queue.push_back(d);
                }
            }
        }

        if step != m {
            return Err(SingularMatrix { step });
        }
        Ok(lu)
    }

    /// Dimension of the factorized matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Solves `B·x = b` in place. On entry `b` is indexed by original row;
    /// on exit it holds `x` indexed by *basis column* (the caller's column
    /// indexing).
    pub fn ftran(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        // y = L^{-1} P b, in pivot-position space.
        let mut y = vec![0.0f64; self.m];
        for k in 0..self.m {
            let yk = b[self.rowof[k]];
            y[k] = yk;
            if yk != 0.0 {
                for (i, l) in self.lcols[k].iter() {
                    b[i] -= l * yk;
                }
            }
        }
        // z = U^{-1} y (back substitution), then scatter to column order.
        for k in (0..self.m).rev() {
            let zk = y[k] / self.udiag[k];
            y[k] = zk;
            if zk != 0.0 {
                for (pos, u) in self.ucols[k].iter() {
                    y[pos] -= u * zk;
                }
            }
        }
        for k in 0..self.m {
            b[self.colorder[k]] = 0.0;
        }
        for k in 0..self.m {
            b[self.colorder[k]] = y[k];
        }
    }

    /// Solves `Bᵀ·x = c` in place. On entry `c` is indexed by basis column;
    /// on exit it holds `x` indexed by original row.
    pub fn btran(&self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // b'[k] = c[colorder[k]]; forward solve Uᵀ y = b'.
        let mut y = vec![0.0f64; self.m];
        for k in 0..self.m {
            y[k] = c[self.colorder[k]];
        }
        for k in 0..self.m {
            let mut acc = y[k];
            for (pos, u) in self.ucols[k].iter() {
                acc -= u * y[pos];
            }
            y[k] = acc / self.udiag[k];
        }
        // Backward solve Lᵀ w = y (L unit diagonal).
        for k in (0..self.m).rev() {
            let mut acc = y[k];
            for (i, l) in self.lcols[k].iter() {
                acc -= l * y[self.pinv[i]];
            }
            y[k] = acc;
        }
        for c_item in c.iter_mut() {
            *c_item = 0.0;
        }
        for k in 0..self.m {
            c[self.rowof[k]] = y[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseVec;

    fn dense_cols(a: &[&[f64]]) -> Vec<SparseVec> {
        // a is given row-major; build columns.
        let m = a.len();
        (0..m)
            .map(|j| SparseVec::from_entries((0..m).map(|i| (i, a[i][j]))))
            .collect()
    }

    fn check_solves(a: &[&[f64]]) {
        let m = a.len();
        let cols = dense_cols(a);
        let refs: Vec<&SparseVec> = cols.iter().collect();
        let lu = LuFactors::factorize(m, &refs).expect("nonsingular");
        // FTRAN: pick x0, compute b = A x0, solve, compare.
        let x0: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let mut b = vec![0.0; m];
        for (j, x) in x0.iter().enumerate() {
            for (i, v) in cols[j].iter() {
                b[i] += v * x;
            }
        }
        lu.ftran(&mut b);
        for j in 0..m {
            assert!((b[j] - x0[j]).abs() < 1e-9, "ftran col {j}: {} vs {}", b[j], x0[j]);
        }
        // BTRAN: pick y0, compute c = Aᵀ y0, solve, compare.
        let y0: Vec<f64> = (0..m).map(|i| 0.5 + (i as f64) * 0.25).collect();
        let mut c = vec![0.0; m];
        for j in 0..m {
            for (i, v) in cols[j].iter() {
                c[j] += v * y0[i];
            }
        }
        lu.btran(&mut c);
        for i in 0..m {
            assert!((c[i] - y0[i]).abs() < 1e-9, "btran row {i}: {} vs {}", c[i], y0[i]);
        }
    }

    #[test]
    fn identity() {
        check_solves(&[&[1.0, 0.0], &[0.0, 1.0]]);
    }

    #[test]
    fn permutation_matrix() {
        check_solves(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]);
    }

    #[test]
    fn dense_3x3() {
        check_solves(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
    }

    #[test]
    fn needs_row_pivoting() {
        // Zero on the natural diagonal forces a row exchange.
        check_solves(&[&[0.0, 2.0], &[3.0, 1.0]]);
    }

    #[test]
    fn sparse_arrowhead() {
        check_solves(&[
            &[4.0, 0.0, 0.0, 1.0],
            &[0.0, 3.0, 0.0, 1.0],
            &[0.0, 0.0, 2.0, 1.0],
            &[1.0, 1.0, 1.0, 5.0],
        ]);
    }

    #[test]
    fn singular_detected() {
        let cols = dense_cols(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let refs: Vec<&SparseVec> = cols.iter().collect();
        assert!(LuFactors::factorize(2, &refs).is_err());
    }

    #[test]
    fn deferred_column_recovers() {
        // Column order by nnz would try the dependent-looking column first;
        // deferral must still find the factorization of this nonsingular
        // matrix. (Column 0 = e1, column 1 = e1 + e2 works either way, so
        // craft one where the sparser column has a zero pivot candidate
        // only until L grows.)
        check_solves(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 0.0]]);
    }

    #[test]
    fn random_dense_matrices() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 10, 25] {
            let rows: Vec<Vec<f64>> =
                (0..n).map(|_| (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect()).collect();
            // Diagonal boost to keep them comfortably nonsingular.
            let rows: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    r.iter().enumerate().map(|(j, &v)| if i == j { v + 6.0 } else { v }).collect()
                })
                .collect();
            let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            check_solves(&slices);
        }
    }
}
