//! Error type for LP solving.

use std::fmt;

/// Errors reported by the LP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit {
        /// Number of simplex iterations performed.
        iterations: usize,
    },
    /// The basis matrix became numerically singular and could not be
    /// repaired by refactorization.
    SingularBasis {
        /// Elimination step at which the failure occurred.
        step: usize,
    },
    /// The model itself is malformed (bad bounds, NaN coefficients, …).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "iteration limit reached after {iterations} iterations")
            }
            LpError::SingularBasis { step } => {
                write!(f, "basis matrix singular at elimination step {step}")
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

impl From<crate::lu::SingularMatrix> for LpError {
    fn from(e: crate::lu::SingularMatrix) -> Self {
        LpError::SingularBasis { step: e.step }
    }
}
